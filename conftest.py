"""Repo-root pytest plumbing shared by ``tests/`` and ``benchmarks/``.

Registers the project markers and implements the single shared
``requires_milp`` auto-skip: every test marked ``@pytest.mark.milp``
exercises the optional MILP engine (:mod:`repro.algorithms.milp`) and is
skipped — not errored — when neither of its backends (PuLP/CBC or SciPy's
HiGHS) is installed, so the dependency-free tier-1 job stays green while
the dedicated CI job (which installs ``pulp``) runs the full suite.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "milp: needs an MILP backend (PuLP/CBC or scipy); auto-skipped "
        "when neither is installed (see repro.algorithms.milp)",
    )
    config.addinivalue_line(
        "markers", "slow: long-running; excluded from quick loops"
    )


def pytest_collection_modifyitems(config, items):
    try:
        from repro.algorithms import milp

        available = milp.milp_available()
        reason = milp.INSTALL_HINT
    except Exception as exc:  # pragma: no cover — repro not importable
        available, reason = False, str(exc)
    if available:
        return
    requires_milp = pytest.mark.skip(reason=f"requires_milp: {reason}")
    for item in items:
        if "milp" in item.keywords:
            item.add_marker(requires_milp)
