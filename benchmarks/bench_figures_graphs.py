"""Experiment F12 — Figures 1 and 2: the application graphs.

The paper's two figures are the pipeline and fork schematics.  We
regenerate them structurally (stage chain with work/size annotations; root
fan-out), assert the graph invariants they depict, and render ASCII
versions as the report.
"""

import repro
from repro.analysis import format_table


def _render_pipeline(app) -> str:
    cells = []
    for stage in app.stages:
        cells.append(f"[{stage.label} w={stage.work:g}]")
    chain = " -> ".join(cells)
    sizes = ", ".join(
        f"d{stage.index - 1}={stage.input_size:g}" for stage in app.stages
    )
    return f"{chain}\n(input sizes: {sizes}, output d{app.n}="\
           f"{app.stages[-1].output_size:g})"


def _render_fork(app) -> str:
    lines = [f"        [S0 w={app.root.work:g}]"]
    lines.append("       /" + " | " * (app.n - 2) + "\\" if app.n > 1 else "        |")
    branches = "  ".join(
        f"[{s.label} w={s.work:g}]" for s in app.branches
    )
    lines.append(branches)
    return "\n".join(lines)


def test_figure1_pipeline_structure(benchmark, report):
    app = repro.PipelineApplication.from_works(
        [3, 5, 2, 8, 1], data_sizes=[4, 3, 3, 2, 2, 1]
    )

    def build_and_check():
        # Figure 1 invariants: a single dependence chain; stage k consumes
        # delta_{k-1} and produces delta_k; consecutive sizes agree.
        assert app.n == 5
        for left, right in zip(app.stages, app.stages[1:]):
            assert left.output_size == right.input_size
            assert right.index == left.index + 1
        return _render_pipeline(app)

    text = benchmark(build_and_check)
    report("figure1_pipeline", "Figure 1 (application pipeline), regenerated:\n"
           + text)


def test_figure2_fork_structure(benchmark, report):
    app = repro.ForkApplication.from_works(
        2.0, [3, 5, 2, 8], root_output_size=4.0
    )

    def build_and_check():
        # Figure 2 invariants: S0 feeds every branch the same delta_0; the
        # branches are pairwise independent (no inter-branch data).
        assert app.root.index == 0
        for branch in app.branches:
            assert branch.input_size == app.root.output_size
        assert len({s.index for s in app.all_stages}) == app.n + 1
        return _render_fork(app)

    text = benchmark(build_and_check)
    report("figure2_fork", "Figure 2 (application fork), regenerated:\n" + text)


def test_forkjoin_structure(benchmark, report):
    """Section 6.3's extension, rendered the same way."""
    app = repro.ForkJoinApplication.from_works(2.0, [3, 5, 2], 4.0)

    def build_and_check():
        assert app.join.index == app.n + 1
        assert app.total_work == 2 + 10 + 4
        return _render_fork(app) + f"\n        [S{app.join.index} " \
               f"w={app.join.work:g}]  (join)"

    text = benchmark(build_and_check)
    report("figure_forkjoin", "Fork-join graph (Section 6.3), regenerated:\n"
           + text)


def test_graph_family_inventory(benchmark, report):
    """Summary table of the graph classes the paper studies."""

    def build():
        rows = []
        pipe = repro.PipelineApplication.homogeneous(4, 2.0)
        fork = repro.ForkApplication.homogeneous(4, 1.0, 2.0)
        fj = repro.ForkJoinApplication.homogeneous(4, 1.0, 2.0, 3.0)
        rows.append(["pipeline", pipe.n, pipe.total_work, pipe.is_homogeneous])
        rows.append(["fork", fork.n + 1, fork.total_work, fork.is_homogeneous])
        rows.append(["fork-join", fj.n + 2, fj.total_work, fj.is_homogeneous])
        return rows

    rows = benchmark(build)
    report(
        "figure_graphs_inventory",
        format_table(["graph", "stages", "total work", "homogeneous"], rows,
                     title="application graph classes (Figures 1-2 + Section 6.3)"),
    )
