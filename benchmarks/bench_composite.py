"""Experiment A10 (extension) — composite workflows of kernels.

The paper's conclusion: "we could build heuristics based on some of our
polynomial algorithms to solve more complex instances of the problem, with
general application graphs structured as combinations of pipeline and fork
kernels".  This benchmark exercises that mapper and measures:

* the value of the refinement loop (proportional-only vs refined
  allocation);
* the gap to the aggregate-capacity lower bound
  ``max_k W_k / S  <=  period`` (unreachable in general since kernels hold
  disjoint processors).
"""

import random

import pytest

import repro
from repro.analysis import format_table
from repro.composite import CompositeWorkflow, map_composite


def _workflow(rng):
    kernels = []
    for _ in range(rng.randint(2, 4)):
        kind = rng.choice(["pipeline", "fork", "forkjoin"])
        n = rng.randint(2, 6)
        if kind == "pipeline":
            kernels.append(
                repro.PipelineApplication.homogeneous(n, rng.randint(1, 6))
            )
        elif kind == "fork":
            kernels.append(
                repro.ForkApplication.homogeneous(
                    n, rng.randint(1, 4), rng.randint(1, 6)
                )
            )
        else:
            kernels.append(
                repro.ForkJoinApplication.homogeneous(
                    n, rng.randint(1, 4), rng.randint(1, 6), rng.randint(1, 4)
                )
            )
    return CompositeWorkflow(kernels=tuple(kernels))


def test_composite_mapper_quality(benchmark, report):
    rng = random.Random(77)

    def run():
        rows = []
        for trial in range(6):
            wf = _workflow(rng)
            p = rng.randint(wf.num_kernels + 2, 12)
            platform = repro.Platform.heterogeneous(
                [rng.randint(1, 4) for _ in range(p)]
            )
            refined = map_composite(wf, platform, rng=random.Random(trial))
            unrefined = map_composite(
                wf, platform, rng=random.Random(trial), max_refinements=0
            )
            # the whole-platform bound for the heaviest kernel
            bound = max(wf.kernel_works) / platform.total_speed
            assert refined.period <= unrefined.period + 1e-9
            assert refined.period >= bound - 1e-9
            rows.append([
                trial, wf.describe(), p,
                f"{unrefined.period:.3f}", f"{refined.period:.3f}",
                f"{refined.period / bound:.2f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "composite_mapper",
        format_table(
            ["trial", "workflow", "p", "proportional", "refined",
             "refined/bound"],
            rows,
            title="composite-kernel mapper (paper's future-work heuristic): "
                  "refinement value and distance to the capacity bound",
        ),
    )


@pytest.mark.parametrize("kernels", [2, 4, 6])
def test_composite_mapper_scaling(benchmark, kernels):
    rng = random.Random(78 + kernels)
    wf = CompositeWorkflow(
        kernels=tuple(
            repro.PipelineApplication.homogeneous(4, rng.randint(1, 6))
            for _ in range(kernels)
        )
    )
    platform = repro.Platform.heterogeneous(
        [rng.randint(1, 4) for _ in range(2 * kernels + 2)]
    )
    sol = benchmark(lambda: map_composite(wf, platform))
    assert len(sol.plans) == kernels
