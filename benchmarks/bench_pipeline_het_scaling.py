"""Experiment A1 — the starred pipeline entries (Theorems 7-8).

Shape claims reproduced:

* the Theorem 7/8 algorithms return the brute-force optimum (checked on
  small instances inline);
* their runtime grows polynomially with the instance size, while the
  exhaustive reference grows explosively — the empirical counterpart of the
  ``Poly (*)`` vs ``NP-hard`` distinction of Table 1.
"""

import random
import time

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms import pipeline_het_platform as het
from repro.algorithms.problem import Objective, ProblemSpec
from repro.analysis import format_table

RNG_SEED = 71


def _instance(rng, n, p):
    app = repro.PipelineApplication.homogeneous(n, float(rng.randint(1, 5)))
    plat = repro.Platform.heterogeneous([rng.randint(1, 6) for _ in range(p)])
    return app, plat


@pytest.mark.parametrize("size", [4, 8, 16, 32])
def test_thm7_period_scaling(benchmark, size):
    rng = random.Random(RNG_SEED + size)
    app, plat = _instance(rng, size, size)
    sol = benchmark(lambda: het.min_period_homogeneous(app, plat))
    # sanity: capacity lower bound and single-processor upper bound
    assert sol.period >= app.total_work / plat.total_speed - 1e-9
    assert sol.period <= app.total_work / max(plat.speeds) + 1e-9
    benchmark.extra_info["n"] = benchmark.extra_info["p"] = size


@pytest.mark.parametrize("size", [4, 8, 16])
def test_thm8_bicriteria_scaling(benchmark, size):
    rng = random.Random(RNG_SEED + size)
    app, plat = _instance(rng, size, size)
    base = het.min_period_homogeneous(app, plat).period
    sol = benchmark(
        lambda: het.min_latency_given_period_homogeneous(app, plat, base * 1.5)
    )
    assert sol.period <= base * 1.5 * (1 + 1e-9)


def test_polynomial_vs_exhaustive_gap(benchmark, report, exact_engine):
    """Measure both solvers over growing sizes; the report shows the gap."""
    rng = random.Random(RNG_SEED)

    def measure():
        rows = []
        for size in (2, 3, 4, 5):
            app, plat = _instance(rng, size, size)
            spec = ProblemSpec(app, plat, False)
            t0 = time.perf_counter()
            fast = het.min_period_homogeneous(app, plat).period
            t_fast = time.perf_counter() - t0
            t0 = time.perf_counter()
            slow = bf.optimal(spec, Objective.PERIOD, engine=exact_engine).period
            t_slow = time.perf_counter() - t0
            assert fast == pytest.approx(slow)
            rows.append(
                [size, f"{fast:.4g}", f"{t_fast * 1e3:.2f}",
                 f"{t_slow * 1e3:.2f}", f"{t_slow / max(t_fast, 1e-9):.1f}x"]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "pipeline_het_scaling",
        format_table(
            ["n=p", "optimum", "Thm 7 (ms)", "brute force (ms)", "ratio"],
            rows,
            title="Theorem 7 vs exhaustive search (same optimum, diverging cost)",
        ),
    )
