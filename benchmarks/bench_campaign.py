"""Campaign-runner benchmark — sharded fan-out and the result cache.

Run standalone to (re)generate the machine-readable trajectory file::

    PYTHONPATH=src python benchmarks/bench_campaign.py            # full
    PYTHONPATH=src python benchmarks/bench_campaign.py --smoke    # CI smoke

The full run drives a 100-instance x 2-objective grid (200 tasks: the
NP-hard heterogeneous-pipeline period cell solved exactly through the bnb
engine, plus the polynomial Theorem 6 latency cell) three ways:

1. serial reference (``workers=0``, cold cache),
2. process-pool fan-out (cold cache) — rows must be identical to serial
   up to the volatile timing fields,
3. the same fan-out again on the now-warm cache — the hit fraction must
   be >= 95% (it is 100% by construction).

Wall-clock for all three plus the measured speedup land in
``BENCH_campaign.json`` at the repository root.  NOTE: the speedup column
is only meaningful on multi-core hosts; the reference container exposes a
single CPU, where fan-out adds fork overhead instead of parallelism — the
file records whatever the hardware gives, honestly.

``--smoke`` (used by CI) runs a 12-instance grid with 2 workers and the
same three assertions against **both cache backends** (jsonl and
sqlite), writing no trajectory file.
"""

from __future__ import annotations

import json
import os
import platform as _platform_mod
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    run_campaign,
    strip_volatile,
    summarize,
)

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_campaign.json"
SEED = 2007
FULL_INSTANCES = 100
SMOKE_INSTANCES = 12


def build_spec(num_instances: int, seed: int = SEED) -> CampaignSpec:
    """Heterogeneous pipelines: NP-hard period cell + poly latency cell."""
    return CampaignSpec(
        name=f"campaign-bench-{num_instances}",
        instances=(
            {
                "type": "random",
                "graph": "pipeline",
                "count": num_instances,
                "seed": seed,
                "n": [6, 7],
                "p": [5, 6],
                "work_high": 9,
                "speed_high": 6,
            },
        ),
        objectives=("period", "latency"),
        solvers=(
            {"name": "exact", "mode": "auto",
             "exact_fallback": True, "engine": "bnb"},
        ),
    )


def run_harness(num_instances: int, workers: int, seed: int = SEED,
                backend: str = "jsonl") -> dict:
    """Serial vs parallel vs warm-cache; asserts the subsystem contracts."""
    spec = build_spec(num_instances, seed)
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
        serial_cache = ResultCache(Path(tmp) / "serial", backend=backend)
        parallel_cache = ResultCache(Path(tmp) / "parallel", backend=backend)

        t0 = time.perf_counter()
        serial = run_campaign(spec, cache=serial_cache, workers=0)
        t_serial = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = run_campaign(spec, cache=parallel_cache, workers=workers)
        t_parallel = time.perf_counter() - t0

        serial_rows = [strip_volatile(r) for r in serial.rows]
        parallel_rows = [strip_volatile(r) for r in parallel.rows]
        assert serial_rows == parallel_rows, (
            "serial and parallel campaign rows diverged"
        )
        assert serial.stats["errors"] == 0, serial.rows

        t0 = time.perf_counter()
        warm = run_campaign(spec, cache=parallel_cache, workers=workers)
        t_warm = time.perf_counter() - t0
        hit_fraction = warm.stats["cache_hits"] / warm.stats["tasks"]
        assert hit_fraction >= 0.95, (
            f"warm-cache hit fraction {hit_fraction:.2%} below 95%"
        )
        assert [strip_volatile(r) for r in warm.rows] == serial_rows

        # an open sqlite connection would break the tempdir cleanup on
        # platforms that refuse to delete open files
        serial_cache.close()
        parallel_cache.close()

    return {
        "instances": num_instances,
        "tasks": serial.stats["tasks"],
        "workers": workers,
        "cache_backend": backend,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(t_serial / max(t_parallel, 1e-9), 3),
        "warm_cache_seconds": round(t_warm, 6),
        "cache_hit_fraction": round(hit_fraction, 4),
        "rows_identical": True,
        "summary": summarize(serial, title=f"campaign {spec.name!r}"),
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    workers = max(2, min(4, os.cpu_count() or 1))
    if smoke:
        # CI: exercise the full contract against every cache backend
        for backend in ("jsonl", "sqlite"):
            measured = run_harness(SMOKE_INSTANCES, workers, backend=backend)
            measured.pop("summary")
            print(
                f"[{backend}] serial {measured['serial_seconds']:.3f}s vs "
                f"{workers} workers {measured['parallel_seconds']:.3f}s "
                f"(speedup {measured['speedup']:.2f}x); warm cache "
                f"{measured['warm_cache_seconds']:.3f}s at "
                f"{measured['cache_hit_fraction']:.0%} hits"
            )
        print("campaign smoke ok (jsonl + sqlite)")
        return 0
    measured = run_harness(FULL_INSTANCES, workers)
    print(measured.pop("summary"))
    print(
        f"serial {measured['serial_seconds']:.3f}s vs "
        f"{workers} workers {measured['parallel_seconds']:.3f}s "
        f"(speedup {measured['speedup']:.2f}x); warm cache "
        f"{measured['warm_cache_seconds']:.3f}s at "
        f"{measured['cache_hit_fraction']:.0%} hits"
    )
    payload = {
        "benchmark": "campaign runner (het pipelines, exact bnb, "
                     "period + latency)",
        "seed": SEED,
        "python": sys.version.split()[0],
        "machine": _platform_mod.machine(),
        "cpus": os.cpu_count(),
        **measured,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[results -> {RESULT_PATH}]")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (smoke size only)
# ----------------------------------------------------------------------
def test_campaign_runner_quick(benchmark, report):
    measured = benchmark.pedantic(
        lambda: run_harness(SMOKE_INSTANCES, workers=2),
        rounds=1, iterations=1,
    )
    assert measured["rows_identical"]
    assert measured["cache_hit_fraction"] >= 0.95
    report(
        "campaign_runner",
        measured["summary"] + "\n" + json.dumps(
            {k: v for k, v in measured.items() if k != "summary"}, indent=2
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
