"""Perf regression harness — flat enumeration vs branch-and-bound.

Run standalone to (re)generate the machine-readable trajectory file::

    PYTHONPATH=src python benchmarks/bench_exact_engines.py

This measures both exact engines on matched heterogeneous pipeline
instances at ``(n, p) in {(5, 5), (6, 6), (7, 7)}`` (asserting they return
the same optimum), adds a bnb-only showcase at ``n = 9, p = 8`` (far beyond
the enumerator's reach), measures the **bi-criteria threshold sweep** —
cold per-point solves vs one shared
:class:`~repro.algorithms.solve_context.SolveContext` (the
``analysis.pareto_front`` / ``campaign pareto`` hot path) — asserting
bit-identical rows, measures the **anytime budget curve** (incumbent
quality vs ``max_nodes`` on n=12..16 pipelines the unbudgeted guard
refuses), measures the **MILP frontier** (instances at and past ``n = 14``
closed *exactly* — gap 0 — by :mod:`repro.algorithms.milp`, plus a
budgeted anytime entry and the LP-vs-combinatorial bound comparison),
and writes ``BENCH_exact.json`` at the repository root so future PRs can
track the speedup trajectory.

The MILP section needs an installed backend (PuLP/CBC or SciPy);
``--milp-only`` regenerates just that section into an existing
``BENCH_exact.json`` (the CI milp job's refresh path)::

    PYTHONPATH=src python benchmarks/bench_exact_engines.py --milp-only

The pytest entry point runs the same harness on the cheap ``(5, 5)`` /
``(6, 6)`` sizes only (flat enumeration at ``(7, 7)`` takes >60 s — fine
for the occasional standalone run, hostile in a CI loop) plus a small
sweep, and writes its result under ``benchmarks/reports/``.
"""

from __future__ import annotations

import gc
import json
import platform as _platform_mod
import random
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec
from repro.algorithms.solve_context import ContextCache
from repro.analysis import format_table
from repro.analysis.pareto import non_dominated, threshold_grid
from repro.campaign.runner import solve_task
from repro.campaign.spec import Task
from repro.core.costs import FLOAT_TOL
from repro.serialization import spec_to_dict

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_exact.json"
SEED = 2007
FULL_SIZES = ((5, 5), (6, 6), (7, 7))
QUICK_SIZES = ((5, 5), (6, 6))
SHOWCASE = (9, 8)
#: Sweep benchmark shapes: (n, p, grid points, engine).
SWEEP_FULL = ((7, 6, 16, "bnb"), (8, 7, 16, "bnb"), (5, 5, 12, "enumerate"))
SWEEP_QUICK = ((6, 5, 8, "bnb"),)
#: Anytime-budget shapes — instances past the unbudgeted size guard.
BUDGET_FULL = ((12, 8), (14, 8), (16, 8))
BUDGET_QUICK = ((12, 8),)
#: Node-budget grid for the anytime quality curve.
BUDGET_GRID = (512, 2048, 8192)
#: MILP frontier shapes — closed exactly (gap 0), past the bnb guard.
MILP_FULL = ((12, 8), (14, 8))
MILP_QUICK = ((11, 6),)
#: Budgeted MILP showcase: (n, p, max_seconds) — far past exact reach.
MILP_BUDGETED = (20, 8, 2.0)


def _instance(rng: random.Random, n: int, p: int):
    app = repro.PipelineApplication.from_works(
        [rng.randint(1, 9) for _ in range(n)]
    )
    plat = repro.Platform.heterogeneous([rng.randint(1, 6) for _ in range(p)])
    return ProblemSpec(app, plat, False)


def _timed(spec, objective, engine):
    t0 = time.perf_counter()
    solution = bf.optimal(spec, objective, engine=engine)
    return time.perf_counter() - t0, solution


def run_matrix(sizes=FULL_SIZES, seed=SEED) -> dict:
    """Measure both engines at each size; returns the JSON-ready payload."""
    rng = random.Random(seed)
    entries = []
    for n, p in sizes:
        spec = _instance(rng, n, p)
        t_bnb, sol_bnb = _timed(spec, Objective.PERIOD, "bnb")
        t_enum, sol_enum = _timed(spec, Objective.PERIOD, "enumerate")
        gap = abs(sol_bnb.period - sol_enum.period)
        assert gap <= 1e-9 * max(1.0, sol_enum.period), (
            f"engine disagreement at n={n}, p={p}: "
            f"{sol_bnb.period} vs {sol_enum.period}"
        )
        entries.append({
            "n": n,
            "p": p,
            "objective": "period",
            "optimum": sol_enum.period,
            "enumerate_seconds": round(t_enum, 6),
            "bnb_seconds": round(t_bnb, 6),
            "speedup": round(t_enum / max(t_bnb, 1e-9), 1),
            "bnb_nodes": sol_bnb.meta["nodes"],
            "bnb_pruned": sol_bnb.meta["pruned"],
        })
    return {
        "benchmark": "exact-engine comparison (heterogeneous pipeline, period)",
        "seed": seed,
        "python": sys.version.split()[0],
        "machine": _platform_mod.machine(),
        "entries": entries,
    }


def run_showcase(seed=SEED) -> dict:
    """bnb-only solve far beyond the enumerator's practical reach."""
    n, p = SHOWCASE
    rng = random.Random(seed + 1)
    spec = _instance(rng, n, p)
    results = {}
    for objective in (Objective.PERIOD, Objective.LATENCY):
        t, sol = _timed(spec, objective, "bnb")
        results[objective.value] = {
            "seconds": round(t, 6),
            "optimum": sol.objective_value(objective),
            "nodes": sol.meta["nodes"],
            "pruned": sol.meta["pruned"],
            "memo_hits": sol.meta.get("memo_hits", 0),
        }
    return {"n": n, "p": p, "engine": "bnb", "objectives": results}


def _strip_timing(rows: list[dict]) -> list[dict]:
    """Rows without their volatile ``timing`` blocks (wall seconds and
    context-dependent memo hits legitimately differ between repeats)."""
    return [{k: v for k, v in row.items() if k != "timing"} for row in rows]


def _best_of(passes: dict, repeats: int) -> tuple[dict, dict]:
    """Interleaved best-of-N wall clock over named thunks.

    The minimum over repeats is the ``timeit`` convention (least
    noise-contaminated estimate on a shared machine); *interleaving* the
    passes means drifting background load contaminates every pass
    equally instead of biasing whichever block ran during the spike.
    Returns ``(seconds, rows)`` keyed like ``passes`` and asserts every
    repeat of a pass produced the same rows (up to the volatile
    ``timing`` block; the kept rows are the first repeat's, timing
    included, so callers can still aggregate search effort).
    """
    seconds = {name: float("inf") for name in passes}
    rows: dict = {}
    for _ in range(repeats):
        for name, fn in passes.items():
            gc.collect()                   # level the allocator between reps
            t0 = time.perf_counter()
            got = fn()
            seconds[name] = min(seconds[name], time.perf_counter() - t0)
            first = rows.setdefault(name, got)
            assert _strip_timing(first) == _strip_timing(got), (
                f"timing repeat changed a {name} row"
            )
    return seconds, rows


def run_sweep(n: int, p: int, points: int, engine: str, seed=SEED,
              repeats: int = 5) -> dict:
    """Threshold sweep of one het pipeline: cold vs context-reuse.

    Mirrors the ``pareto_front`` hot path through ``runner.solve_task``:
    "min latency s.t. period <= K" for a geometric K-grid between the two
    extremes.  The cold pass solves every point from scratch; the context
    pass shares one :class:`ContextCache` across the sweep (a fresh cache
    per timing repeat, so no repeat rides the previous one's warmth).
    Rows must be bit-identical — the context is a pure amortization.
    """
    rng = random.Random(seed + 2)
    spec = _instance(rng, n, p)
    instance = spec_to_dict(spec)
    solver = {
        "name": "sweep", "mode": "auto",
        "exact_fallback": True, "engine": engine,
    }

    def _task(i: int, objective: str, bound: float | None = None) -> Task:
        return Task(
            index=i, instance_id=f"sweep-{n}x{p}", instance=instance,
            objective=objective, period_bound=bound, latency_bound=None,
            solver=solver,
        )

    lo, _ = solve_task(_task(0, "period"))
    hi, _ = solve_task(_task(1, "latency"))
    assert lo["status"] == "ok" and hi["status"] == "ok", (lo, hi)
    thresholds = threshold_grid(
        lo["period"], max(hi["period"], lo["period"]), points
    )
    tasks = [
        _task(i, "latency", bound * (1 + FLOAT_TOL))
        for i, bound in enumerate(thresholds)
    ]

    def _context_pass():
        contexts = ContextCache()          # fresh per repeat, shared within
        return [solve_task(task, contexts)[0] for task in tasks]

    seconds, rows = _best_of(
        {"cold": lambda: [solve_task(task)[0] for task in tasks],
         "context": _context_pass},
        repeats,
    )
    cold_seconds, context_seconds = seconds["cold"], seconds["context"]
    cold, warm = rows["cold"], rows["context"]

    assert _strip_timing(cold) == _strip_timing(warm), (
        "context-reuse changed a sweep row"
    )

    def _effort(sweep_rows: list[dict]) -> dict:
        timings = [r.get("timing") or {} for r in sweep_rows]
        return {
            "nodes": sum(t.get("nodes") or 0 for t in timings),
            "pruned": sum(t.get("pruned") or 0 for t in timings),
            "memo_hits": sum(t.get("memo_hits") or 0 for t in timings),
        }

    front = non_dominated(
        SimpleNamespace(period=r["period"], latency=r["latency"])
        for r in (lo, hi, *cold) if r["status"] == "ok"
    )
    return {
        "n": n,
        "p": p,
        "engine": engine,
        "points": points,
        "objective": "latency under period threshold",
        "cold_seconds": round(cold_seconds, 6),
        "context_seconds": round(context_seconds, 6),
        "speedup": round(cold_seconds / max(context_seconds, 1e-9), 2),
        "rows_identical": True,
        # search-effort totals from the rows' timing blocks: the context
        # pass should replay enumeration work as memo hits, not re-search
        "cold_effort": _effort(cold),
        "context_effort": _effort(warm),
        "front": [[pt.period, pt.latency] for pt in front],
    }


def run_sweeps(shapes=SWEEP_FULL, seed=SEED) -> list[dict]:
    """The sweep benchmark matrix (see :data:`SWEEP_FULL`)."""
    return [run_sweep(n, p, points, engine, seed=seed)
            for n, p, points, engine in shapes]


def run_budget_curve(shapes=BUDGET_FULL, grid=BUDGET_GRID,
                     seed=SEED) -> list[dict]:
    """Incumbent quality vs node budget on guard-lifted instances.

    Solves each (n, p) het pipeline under every ``max_nodes`` in the
    grid and records the anytime curve: incumbent value, proven lower
    bound and gap.  Asserts the anytime contract while measuring —
    the incumbent never regresses as the budget grows (the visit order
    is fixed, so a larger budget sees a superset of incumbents) and
    every incumbent stays above its lower bound.
    """
    from repro.algorithms.budget import Budget

    rng = random.Random(seed + 3)
    entries = []
    for n, p in shapes:
        spec = _instance(rng, n, p)
        points = []
        previous = float("inf")
        for max_nodes in grid:
            t0 = time.perf_counter()
            sol = bf.optimal(spec, Objective.PERIOD,
                             budget=Budget(max_nodes=max_nodes))
            seconds = time.perf_counter() - t0
            meta = sol.meta
            value = sol.period
            lower = meta.get("lower_bound", value)
            gap = meta.get("gap", 0.0)
            assert value <= previous + FLOAT_TOL, (
                f"anytime regression at n={n}: {value} after {previous}"
            )
            assert value >= lower - FLOAT_TOL, (
                f"incumbent below its lower bound at n={n}"
            )
            previous = value
            points.append({
                "max_nodes": max_nodes,
                "status": meta["status"],
                "nodes": meta["nodes"],
                "value": value,
                "lower_bound": lower,
                "gap": round(gap, 6),
                "seconds": round(seconds, 6),
            })
        entries.append({
            "n": n,
            "p": p,
            "objective": "period",
            "anytime_monotone": True,
            "sound": True,
            "points": points,
        })
    return entries


def run_milp(shapes=MILP_FULL, budgeted=MILP_BUDGETED,
             seed=SEED) -> dict | None:
    """The MILP frontier: instances closed *exactly* past the bnb guard.

    Solves each (n, p) het pipeline to a proven optimum (gap 0) with the
    MILP engine, recording wall time, the LP-relaxation bound and the
    combinatorial root bound (the LP one must be at least as tight to be
    worth its solve), plus one budgeted anytime entry far past exact
    reach.  Returns ``None`` when no backend is installed — the committed
    ``BENCH_exact.json`` must carry the section, so regenerating without
    a backend fails the regression gate rather than silently dropping it.
    """
    from repro.algorithms import bnb, milp
    from repro.algorithms.budget import Budget

    if not milp.milp_available():
        return None
    rng = random.Random(seed + 4)
    entries = []
    for n, p in shapes:
        spec = _instance(rng, n, p)
        t0 = time.perf_counter()
        sol = bf.optimal(spec, Objective.PERIOD, engine="milp")
        seconds = time.perf_counter() - t0
        assert sol.meta["status"] == "optimal", sol.meta
        lp_bound = milp.lp_lower_bound(spec, Objective.PERIOD)
        root_bound = bnb.root_lower_bound(spec, Objective.PERIOD)
        assert lp_bound <= sol.period * (1 + FLOAT_TOL), (
            f"unsound LP bound at n={n}: {lp_bound} > {sol.period}"
        )
        entries.append({
            "n": n,
            "p": p,
            "objective": "period",
            "status": "optimal",
            "optimum": sol.period,
            "gap": 0.0,
            "seconds": round(seconds, 6),
            "nodes": sol.meta["nodes"],
            "lp_bound": lp_bound,
            "combinatorial_bound": root_bound,
        })
    n, p, max_seconds = budgeted
    spec = _instance(rng, n, p)
    t0 = time.perf_counter()
    sol = bf.optimal(spec, Objective.PERIOD, engine="milp",
                     budget=Budget(max_seconds=max_seconds))
    seconds = time.perf_counter() - t0
    meta = sol.meta
    value = sol.period
    lower = meta.get("lower_bound", value)
    gap = meta.get("gap", 0.0)
    assert 0.0 <= gap < float("inf"), f"unsound budgeted gap {gap}"
    assert value >= lower - FLOAT_TOL * max(1.0, lower), (
        f"budgeted incumbent {value} below its bound {lower}"
    )
    return {
        "backend": milp.backend_name(),
        "frontier_n": max(e["n"] for e in entries),
        "entries": entries,
        "budgeted": {
            "n": n,
            "p": p,
            "objective": "period",
            "max_seconds": max_seconds,
            "status": meta["status"],
            "value": value,
            "lower_bound": lower,
            "gap": round(gap, 6),
            "seconds": round(seconds, 6),
        },
    }


def _rows(payload: dict) -> list[list[str]]:
    return [
        [
            f"{e['n']}x{e['p']}",
            f"{e['optimum']:.4g}",
            f"{e['enumerate_seconds'] * 1e3:.1f}",
            f"{e['bnb_seconds'] * 1e3:.1f}",
            f"{e['speedup']:.0f}x",
        ]
        for e in payload["entries"]
    ]


def _render(payload: dict) -> str:
    return format_table(
        ["n=p", "optimum", "enumerate (ms)", "bnb (ms)", "speedup"],
        _rows(payload),
        title="exact engines on matched heterogeneous pipelines",
    )


def _render_sweeps(entries: list[dict]) -> str:
    return format_table(
        ["n x p", "engine", "points", "cold (ms)", "context (ms)", "speedup"],
        [
            [
                f"{e['n']}x{e['p']}",
                e["engine"],
                str(e["points"]),
                f"{e['cold_seconds'] * 1e3:.1f}",
                f"{e['context_seconds'] * 1e3:.1f}",
                f"{e['speedup']:.2f}x",
            ]
            for e in entries
        ],
        title="threshold sweeps: cold per-point vs shared SolveContext",
    )


def _render_budget(entries: list[dict]) -> str:
    rows = []
    for e in entries:
        for pt in e["points"]:
            rows.append([
                f"{e['n']}x{e['p']}",
                str(pt["max_nodes"]),
                pt["status"],
                f"{pt['value']:.4g}",
                f"{pt['lower_bound']:.4g}",
                f"{pt['gap'] * 100:.1f}%",
                f"{pt['seconds'] * 1e3:.1f}",
            ])
    return format_table(
        ["n x p", "budget", "status", "incumbent", "lower bnd", "gap",
         "ms"],
        rows,
        title="anytime incumbents vs node budget (guard-lifted pipelines)",
    )


def _render_milp(section: dict) -> str:
    rows = [
        [
            f"{e['n']}x{e['p']}",
            e["status"],
            f"{e['optimum']:.4g}",
            f"{e['gap'] * 100:.1f}%",
            f"{e['lp_bound']:.4g}",
            f"{e['combinatorial_bound']:.4g}",
            f"{e['seconds']:.2f}",
        ]
        for e in section["entries"]
    ]
    b = section["budgeted"]
    rows.append([
        f"{b['n']}x{b['p']}",
        f"{b['status']} ({b['max_seconds']}s)",
        f"{b['value']:.4g}",
        f"{b['gap'] * 100:.1f}%",
        f"{b['lower_bound']:.4g}",
        "-",
        f"{b['seconds']:.2f}",
    ])
    return format_table(
        ["n x p", "status", "value", "gap", "lp bnd", "comb bnd", "s"],
        rows,
        title=f"milp frontier ({section['backend']} backend)",
    )


def main(milp_only: bool = False) -> int:
    if milp_only:
        # refresh just the milp section of an existing trajectory file
        # (the CI milp job's path: no 100 s+ enumerate matrix)
        milp_section = run_milp(MILP_FULL)
        if milp_section is None:
            print("no MILP backend installed; cannot regenerate the milp "
                  "section", file=sys.stderr)
            return 1
        payload = json.loads(RESULT_PATH.read_text())
        payload["milp"] = milp_section
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(_render_milp(milp_section))
        print(f"[milp section -> {RESULT_PATH}]")
        return 0
    # the sweep ratio is the gated number — measure it before the 100 s+
    # enumerate matrix heats the process (allocator state after that run
    # inflates the ~30 ms context pass disproportionately)
    sweeps = run_sweeps(SWEEP_FULL)
    budget = run_budget_curve(BUDGET_FULL)
    milp_section = run_milp(MILP_FULL)
    payload = run_matrix(FULL_SIZES)
    payload["showcase"] = run_showcase()
    payload["sweep"] = {"entries": sweeps}
    payload["budget"] = {"grid": list(BUDGET_GRID), "entries": budget}
    if milp_section is not None:
        payload["milp"] = milp_section
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(_render(payload))
    sc = payload["showcase"]
    for obj, r in sc["objectives"].items():
        print(
            f"showcase n={sc['n']} p={sc['p']} {obj}: "
            f"{r['seconds'] * 1e3:.0f} ms, optimum {r['optimum']:.4g}, "
            f"{r['nodes']} nodes"
        )
    print(_render_sweeps(payload["sweep"]["entries"]))
    print(_render_budget(payload["budget"]["entries"]))
    if milp_section is not None:
        print(_render_milp(milp_section))
    else:
        print("[milp section skipped: no backend installed — the "
              "regression gate will fail on a file regenerated this way]")
    print(f"[results -> {RESULT_PATH}]")
    return 0


# ----------------------------------------------------------------------
# pytest entry points (quick sizes only)
# ----------------------------------------------------------------------
def test_exact_engines_quick(benchmark, report):
    payload = benchmark.pedantic(
        lambda: run_matrix(QUICK_SIZES), rounds=1, iterations=1
    )
    for entry in payload["entries"]:
        assert entry["speedup"] >= 10.0, (
            f"bnb speedup regressed below 10x at n={entry['n']}: {entry}"
        )
    report("exact_engines", _render(payload))


def test_budget_anytime_quick(report):
    # run_budget_curve asserts the anytime contract (monotone incumbents,
    # sound lower bounds) while measuring; a finite gap means the lower
    # bound is positive and the incumbent real
    entries = run_budget_curve(BUDGET_QUICK)
    for entry in entries:
        assert entry["anytime_monotone"] and entry["sound"]
        for pt in entry["points"]:
            assert pt["gap"] >= 0.0 and pt["gap"] < float("inf")
    report("exact_budget", _render_budget(entries))


def test_sweep_context_quick(report):
    entries = run_sweeps(SWEEP_QUICK)
    for entry in entries:
        # correctness is the hard gate: run_sweep asserts cold == context
        # rows bit-identically.  No wall-clock assertion here — ms-scale
        # sweeps on shared CI runners make timing ratios nondeterministic;
        # the committed BENCH_exact.json records the honest full-size
        # >= 2x measurement and check_bench_regressions.py gates *that*
        assert entry["rows_identical"]
    report("exact_sweep", _render_sweeps(entries))


@pytest.mark.milp
def test_milp_frontier_quick(report):
    # one live proof past the bnb guard (n=11 > 10) closed at gap 0; the
    # committed BENCH_exact.json records the full n>=14 frontier and
    # check_bench_regressions.py gates *that*
    section = run_milp(MILP_QUICK, budgeted=(14, 8, 0.2))
    assert section is not None  # marker guarantees a backend
    entry = section["entries"][0]
    assert entry["status"] == "optimal" and entry["gap"] == 0.0
    assert section["frontier_n"] > 10
    report("exact_milp", _render_milp(section))


if __name__ == "__main__":
    sys.exit(main(milp_only="--milp-only" in sys.argv[1:]))
