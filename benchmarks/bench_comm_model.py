"""Experiment A8 (extension) — when is the simplified model safe?

The paper neglects all communication and argues this is "realistic only for
large-grain applications".  This experiment quantifies that caveat, in the
direction the conclusion proposes as future work:

for a pipeline with data sizes, sweep the network bandwidth and compare

* the **communication-aware optimum** (this library's Eq. 1-2 interval DP),
  against
* the **simplified-model optimum mapping** (chains-to-chains on the works,
  ignoring data) *re-priced under the communication model*.

As bandwidth grows the two converge (the simplification becomes safe); as
it shrinks the simplified mapping's real period degrades unboundedly.
"""

import pytest

import repro
from repro.algorithms.comm_aware import min_period_comm
from repro.analysis import format_table
from repro.chains import chains_to_chains_dp
from repro.core import OnePortInterval, pipeline_period_with_comm

WORKS = [6.0, 2.0, 8.0, 3.0, 5.0]
SIZES = [4.0, 12.0, 1.0, 9.0, 2.0, 3.0]
P = 3


def _simplified_intervals(app, p):
    """The mapping the simplified model would pick (zero-size chains)."""
    cut = chains_to_chains_dp(list(app.works), p)
    intervals, start = [], 1
    for t, end in enumerate(cut.boundaries):
        intervals.append(OnePortInterval(start=start, end=end, processor=t))
        start = end + 1
    return intervals


def test_bandwidth_sweep(benchmark, report):
    app = repro.PipelineApplication.from_works(WORKS, data_sizes=SIZES)

    def run():
        rows = []
        for bandwidth in (0.25, 0.5, 1.0, 2.0, 8.0, 64.0):
            plat = repro.Platform.homogeneous(P, 1.0, bandwidth=bandwidth)
            aware = min_period_comm(app, plat)
            naive = pipeline_period_with_comm(
                app, plat, _simplified_intervals(app, P)
            )
            rows.append([
                f"{bandwidth:g}",
                f"{aware.period:.3f}",
                f"{naive:.3f}",
                f"{naive / aware.period:.3f}",
                len(aware.intervals),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # the simplified mapping can never beat the aware optimum
    assert all(float(r[3]) >= 1.0 - 1e-9 for r in rows)
    # at high bandwidth the simplification must become safe (ratio -> 1)
    assert float(rows[-1][3]) == pytest.approx(1.0, abs=1e-6)
    # at the lowest bandwidth it must hurt measurably on this instance
    assert float(rows[0][3]) > 1.05
    report(
        "comm_model_error",
        format_table(
            ["bandwidth", "comm-aware optimum", "simplified mapping repriced",
             "penalty ratio", "aware #intervals"],
            rows,
            title="cost of ignoring communication (pipeline works "
                  f"{WORKS}, sizes {SIZES}, p={P}, one-port strict)",
        ),
    )


def test_comm_aware_dp_speed(benchmark):
    app = repro.PipelineApplication.from_works(
        [float(3 + (7 * i) % 11) for i in range(40)],
        data_sizes=[float(1 + (5 * i) % 7) for i in range(41)],
    )
    plat = repro.Platform.homogeneous(10, 1.0, bandwidth=2.0)
    sol = benchmark(lambda: min_period_comm(app, plat))
    assert sol.period > 0


def test_strict_vs_overlap_models(benchmark, report):
    """The overlap model can only improve every interval's cycle time."""
    from repro.core import CommunicationModel

    app = repro.PipelineApplication.from_works(WORKS, data_sizes=SIZES)

    def run():
        rows = []
        for bandwidth in (0.5, 2.0, 8.0):
            plat = repro.Platform.homogeneous(P, 1.0, bandwidth=bandwidth)
            strict = min_period_comm(
                app, plat, CommunicationModel.ONE_PORT_STRICT
            )
            overlap = min_period_comm(
                app, plat, CommunicationModel.MULTI_PORT_OVERLAP
            )
            assert overlap.period <= strict.period + 1e-9
            rows.append([
                f"{bandwidth:g}", f"{strict.period:.3f}",
                f"{overlap.period:.3f}",
                f"{strict.period / overlap.period:.3f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "comm_strict_vs_overlap",
        format_table(
            ["bandwidth", "one-port strict", "multi-port overlap",
             "strict/overlap"],
            rows,
            title="communication model choice (Section 3.2): serialized vs "
                  "overlapped transfers",
        ),
    )
