"""Experiment A9 (extension) — Amdahl overheads on data-parallel stages.

Section 3.3: "we may assume that a fraction of the computations is
inherently sequential ... introduce a fixed overhead f_i".  The simplified
model (and all theorems) set f_i = 0; this experiment sweeps the overhead
and shows where data-parallelism stops beating replication — the crossover
the paper's modelling discussion predicts.

Setup: the Section 2 pipeline (14, 4, 2, 4) on three unit processors,
latency objective, Theorem 3 DP extended with overheads (exact; validated
against brute force in the test-suite).
"""

import pytest

import repro
from repro.algorithms import pipeline_hom_platform as hom
from repro.analysis import format_table
from repro.core import AssignmentKind


def _count_dp_groups(solution) -> int:
    return sum(
        1 for g in solution.mapping.groups
        if g.kind is AssignmentKind.DATA_PARALLEL
    )


def test_overhead_crossover(benchmark, report):
    plat = repro.Platform.homogeneous(3, 1.0)

    def run():
        rows = []
        for f in (0.0, 0.5, 1.0, 2.0, 4.0, 8.0):
            app = repro.PipelineApplication.from_works(
                [14, 4, 2, 4], dp_overheads=[f] * 4
            )
            sol = hom.min_latency_with_dp(app, plat)
            rows.append([
                f"{f:g}", f"{sol.latency:.3f}", _count_dp_groups(sol),
                sol.mapping.describe(),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # f = 0 recovers the paper's 17; a huge overhead recovers 24 (no dp)
    assert float(rows[0][1]) == pytest.approx(17.0)
    assert float(rows[-1][1]) == pytest.approx(24.0)
    assert rows[0][2] >= 1 and rows[-1][2] == 0
    # latency is monotone in the overhead
    latencies = [float(r[1]) for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(latencies, latencies[1:]))
    report(
        "amdahl_crossover",
        format_table(
            ["overhead f", "optimal latency", "#dp groups", "mapping"],
            rows,
            title="Amdahl overhead sweep (Section 3.3 extension): "
                  "data-parallelism stops paying as f grows "
                  "(Section 2 pipeline, p=3)",
        ),
    )


def test_overhead_dp_matches_brute_force(benchmark):
    """Timed exactness check on one overhead instance."""
    from repro.algorithms import brute_force as bf
    from repro.algorithms.problem import Objective, ProblemSpec

    app = repro.PipelineApplication.from_works(
        [9, 3, 6], dp_overheads=[1.0, 0.5, 2.0]
    )
    plat = repro.Platform.homogeneous(4, 1.0)
    sol = benchmark(lambda: hom.min_latency_with_dp(app, plat))
    want = bf.optimal(ProblemSpec(app, plat, True), Objective.LATENCY).latency
    assert sol.latency == pytest.approx(want)
