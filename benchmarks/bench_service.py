"""Solver-service benchmark — request latency and single-flight dedup.

Run standalone to (re)generate the machine-readable trajectory file::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI smoke

The harness starts an in-process solver service (ephemeral port, jsonl
cache in a tempdir) and measures three request regimes over a grid of
heterogeneous-pipeline instances (the NP-hard period cell, solved
exactly through the bnb engine):

1. **cold** — sequential ``POST /v1/solve`` per instance, every request
   a cache miss that runs the solver;
2. **warm** — the same requests again: every one must be served from
   the content-addressed cache (hit fraction asserted = 100%), so the
   cold/warm latency ratio is the solver time the cache removes;
3. **coalesced** — N concurrent identical requests for a *fresh,
   larger* instance: single-flight must run the underlying solver
   exactly once (asserted through ``/v1/stats``), so the fleet pays one
   solve instead of N.

Results land in ``BENCH_service.json`` at the repository root.  NOTE:
the reference container is single-core — request latencies include HTTP
round-trips on loopback, and the coalesced wall-clock mostly measures
the one shared solve.  The file records whatever the hardware gives,
honestly.

``--smoke`` (used by CI) shrinks the grid and writes no file.
"""

from __future__ import annotations

import json
import os
import platform as _platform_mod
import statistics
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.campaign import ResultCache
from repro.generators import random_pipeline, random_platform
from repro.serialization import application_to_dict, platform_to_dict
from repro.service import ServiceClient
from repro.service.server import make_server

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_service.json"
SEED = 2007
FULL_INSTANCES = 40
SMOKE_INSTANCES = 8
CONCURRENT_CLIENTS = 8


def build_requests(num_instances: int, seed: int = SEED) -> list[dict]:
    """Seeded heterogeneous-pipeline solve requests (NP-hard period)."""
    import random

    rng = random.Random(seed)
    requests = []
    for _ in range(num_instances):
        app = random_pipeline(rng, rng.randint(6, 7), high=9)
        plat = random_platform(rng, rng.randint(5, 6), high=6)
        requests.append({
            "instance": {
                "kind": "instance",
                "application": application_to_dict(app),
                "platform": platform_to_dict(plat),
                "allow_data_parallel": False,
            },
            "objective": "period",
            "solver": {"name": "bench", "mode": "auto",
                       "exact_fallback": True, "engine": "bnb"},
        })
    return requests


def coalesce_request(seed: int = SEED) -> dict:
    """One larger instance whose solve is slow enough to pile up on."""
    import random

    rng = random.Random(seed + 1)
    app = random_pipeline(rng, 9, high=9)
    plat = random_platform(rng, 8, high=6)
    return {
        "instance": {
            "kind": "instance",
            "application": application_to_dict(app),
            "platform": platform_to_dict(plat),
            "allow_data_parallel": False,
        },
        "objective": "period",
        "solver": {"name": "bench", "mode": "auto",
                   "exact_fallback": True, "engine": "bnb"},
    }


def _latencies_ms(client: ServiceClient, requests: list[dict]) -> list[float]:
    out = []
    for request in requests:
        t0 = time.perf_counter()
        response = client.solve(request)
        out.append((time.perf_counter() - t0) * 1000.0)
        assert response["row"]["status"] == "ok", response["row"]
    return out


def run_harness(num_instances: int) -> dict:
    """Cold / warm / coalesced regimes; asserts the service contracts."""
    requests = build_requests(num_instances)
    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        server = make_server(
            port=0, cache=ResultCache(Path(tmp) / "cache"), solve_workers=4
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=300.0)
            client.wait_ready(timeout=30)

            cold = _latencies_ms(client, requests)
            warm = _latencies_ms(client, requests)
            stats = client.stats()
            served = stats["service"]["served_from_cache"]
            assert served == len(requests), (
                f"warm pass expected {len(requests)} cache-served "
                f"responses, saw {served}"
            )

            before = stats["service"]
            request = coalesce_request()
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CONCURRENT_CLIENTS) as pool:
                responses = list(pool.map(
                    lambda _: client.solve(request),
                    range(CONCURRENT_CLIENTS),
                ))
            coalesced_wall = time.perf_counter() - t0
            after = client.stats()["service"]
            assert after["solves"] - before["solves"] == 1, (
                "single-flight must run the solver exactly once"
            )
            assert after["coalesced"] - before["coalesced"] == \
                CONCURRENT_CLIENTS - 1
            rows = [r["row"] for r in responses]
            assert all(row == rows[0] for row in rows), (
                "coalesced responses diverged"
            )

            # one uncontended solve of the same (now warm) key for scale
            t0 = time.perf_counter()
            assert client.solve(request)["cached"]
            warm_one = (time.perf_counter() - t0) * 1000.0
        finally:
            server.shutdown()
            server.server_close()
            server.service.close()
            thread.join(timeout=5)

    return {
        "instances": num_instances,
        "concurrent_clients": CONCURRENT_CLIENTS,
        "cold_ms_median": round(statistics.median(cold), 3),
        "cold_ms_total": round(sum(cold), 3),
        "warm_ms_median": round(statistics.median(warm), 3),
        "warm_ms_total": round(sum(warm), 3),
        "cold_over_warm": round(sum(cold) / max(sum(warm), 1e-9), 2),
        "coalesced_wall_seconds": round(coalesced_wall, 6),
        "coalesced_hit_ms": round(warm_one, 3),
        "warm_hit_fraction": 1.0,
        "single_flight_solves": 1,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    measured = run_harness(SMOKE_INSTANCES if smoke else FULL_INSTANCES)
    print(
        f"cold median {measured['cold_ms_median']:.1f}ms vs warm median "
        f"{measured['warm_ms_median']:.1f}ms "
        f"({measured['cold_over_warm']:.1f}x total); "
        f"{measured['concurrent_clients']} concurrent identical requests "
        f"-> 1 solve in {measured['coalesced_wall_seconds']:.3f}s"
    )
    if smoke:
        print("service smoke ok (cold/warm/coalesced contracts hold)")
        return 0
    payload = {
        "benchmark": "solver service (het pipelines, exact bnb period; "
                     "cold vs warm vs coalesced requests)",
        "seed": SEED,
        "python": sys.version.split()[0],
        "machine": _platform_mod.machine(),
        "cpus": os.cpu_count(),
        **measured,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[results -> {RESULT_PATH}]")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (smoke size only)
# ----------------------------------------------------------------------
def test_service_quick(benchmark, report):
    measured = benchmark.pedantic(
        lambda: run_harness(SMOKE_INSTANCES), rounds=1, iterations=1
    )
    assert measured["single_flight_solves"] == 1
    assert measured["warm_hit_fraction"] == 1.0
    report("service", json.dumps(measured, indent=2))


if __name__ == "__main__":
    sys.exit(main())
