"""Experiment A4 — ablations of the paper's two mechanisms (Sections 2-3).

Three sweeps quantify the design space the paper describes qualitatively:

1. replication vs data-parallelism for a single stage on k processors —
   identical periods, diverging delays (Lemma 1's content);
2. round-robin vs demand-driven distribution on different-speed replicas —
   throughput gap and ordering violations (the Section 3.3 discussion);
3. the value of heterogeneity awareness: optimal period as the platform
   skew grows at constant aggregate speed.
"""

import pytest

import repro
from repro.analysis import format_table
from repro.core import AssignmentKind, GroupAssignment, PipelineMapping
from repro.core.costs import group_delay, group_period
from repro.simulation import DispatchPolicy, simulate_pipeline


def test_replication_vs_dataparallel_sweep(benchmark, report):
    """Sweep k for one stage of work 60 on identical unit processors."""

    def run():
        rows = []
        for k in (1, 2, 4, 8, 16):
            speeds = [1.0] * k
            rep_p = group_period(60.0, speeds, AssignmentKind.REPLICATED)
            rep_d = group_delay(60.0, speeds, AssignmentKind.REPLICATED)
            dp_p = group_period(60.0, speeds, AssignmentKind.DATA_PARALLEL)
            dp_d = group_delay(60.0, speeds, AssignmentKind.DATA_PARALLEL)
            assert rep_p == pytest.approx(dp_p)  # Lemma 1 on hom platforms
            rows.append([k, f"{rep_p:g}", f"{rep_d:g}", f"{dp_p:g}",
                         f"{dp_d:g}"])
        return rows

    rows = benchmark(run)
    report(
        "ablation_replication_vs_dp",
        format_table(
            ["k", "replicated period", "replicated delay",
             "data-par period", "data-par delay"],
            rows,
            title="one stage (w=60) on k identical processors: replication "
                  "halves the period only; data-parallelism also cuts the "
                  "delay",
        ),
    )


def test_round_robin_vs_demand_driven(benchmark, report):
    """The Section 3.3 rule, quantified over growing speed skew."""

    def run():
        rows = []
        for slow in (1.0, 2.0, 3.0):
            fast = 4.0
            app = repro.PipelineApplication.from_works([24.0])
            plat = repro.Platform.heterogeneous([fast, slow])
            mapping = PipelineMapping(
                application=app, platform=plat,
                groups=(GroupAssignment(stages=(1,), processors=(0, 1),
                                        kind=AssignmentKind.REPLICATED),),
            )
            rr_analytic = repro.pipeline_period(mapping)
            dd_ideal = app.total_work / plat.total_speed
            rr = simulate_pipeline(
                mapping, num_data_sets=600,
                policy=DispatchPolicy.ROUND_ROBIN,
            )
            dd = simulate_pipeline(
                mapping, num_data_sets=600, input_period=dd_ideal,
                policy=DispatchPolicy.DEMAND_DRIVEN, enforce_order=False,
            )
            assert dd.measured_period <= rr.measured_period + 1e-6
            rows.append([
                f"{fast:g}/{slow:g}",
                f"{rr_analytic:.3f}", f"{rr.measured_period:.3f}",
                f"{dd_ideal:.3f}", f"{dd.measured_period:.3f}",
                dd.order_inversions,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_round_robin",
        format_table(
            ["speeds", "RR analytic", "RR measured", "DD ideal",
             "DD measured", "DD inversions"],
            rows,
            title="round-robin (paper's rule) vs demand-driven on two "
                  "replicas (w=24): throughput gain costs ordering",
        ),
    )


def test_heterogeneity_skew_sweep(benchmark, report):
    """Constant aggregate speed 8, growing skew; homogeneous 8-stage
    pipeline.  Replication groups lose capacity to their slowest member, so
    the optimal period degrades as skew grows — quantified by Theorem 7."""

    def run():
        rows = []
        # coarse stages (n=4 of work 12) so replication granularity matters
        app = repro.PipelineApplication.homogeneous(4, 12.0)
        for speeds in ([2, 2, 2, 2], [3, 3, 1, 1], [4, 2, 1, 1], [5, 1, 1, 1]):
            plat = repro.Platform.heterogeneous([float(s) for s in speeds])
            spec = repro.ProblemSpec(app, plat, False)
            sol = repro.solve(spec, repro.Objective.PERIOD)
            bound = app.total_work / plat.total_speed
            rows.append([
                str(speeds), f"{bound:.3f}", f"{sol.period:.3f}",
                f"{sol.period / bound:.3f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # the first (homogeneous) row must meet the bound exactly (Thm 1)...
    assert rows[0][1] == rows[0][2]
    # ...and the most skewed platform must pay a strict granularity penalty
    assert float(rows[-1][3]) > 1.0
    report(
        "ablation_skew",
        format_table(
            ["speeds (sum 8)", "capacity bound", "optimal period",
             "period/bound"],
            rows,
            title="platform skew vs optimal period (hom. 4-stage pipeline, "
                  "Thm 7); skew wastes replication capacity",
        ),
    )
