"""Experiment A5 — validate the analytic cost model by simulation.

For random valid mappings of all three graph classes, stream data sets at
the analytic period through the discrete-event simulator and compare:

* steady-state inter-departure time vs the analytic period (must agree to
  within the staircase quantization of the estimator);
* observed worst-case latency vs the analytic latency (must never exceed
  it — the analytic value is the adversarial-alignment bound).

The numpy batch evaluator is cross-checked against the scalar model on the
same mappings, so all three cost paths (scalar, vectorized, simulated) are
pinned to each other here.
"""

import random

import pytest

import repro
from repro.analysis import format_table
from repro.core import batch_evaluate, evaluate
from repro.generators import random_fork, random_forkjoin, random_pipeline, random_platform
from repro.heuristics import random_fork_mapping, random_pipeline_mapping
from repro.simulation import simulate

SEED = 74
N_SETS = 600
RTOL = 0.02


def _random_mapped(rng):
    p = rng.randint(1, 5)
    plat = random_platform(rng, p, 1, 3)
    kind = rng.choice(["pipeline", "fork", "forkjoin"])
    n = rng.randint(1, 4)
    dp = rng.random() < 0.5
    if kind == "pipeline":
        app = random_pipeline(rng, n, 1, 9)
        sol = random_pipeline_mapping(app, plat, rng, dp)
    elif kind == "fork":
        app = random_fork(rng, n, 1, 9)
        sol = random_fork_mapping(app, plat, rng, dp)
    else:
        app = random_forkjoin(rng, n, 1, 9)
        sol = random_fork_mapping(app, plat, rng, dp)
    return kind, sol


def test_simulator_agrees_with_model(benchmark, report):
    rng = random.Random(SEED)
    mapped = [_random_mapped(rng) for _ in range(30)]

    def run():
        rows = []
        for kind, sol in mapped:
            period, latency = evaluate(sol.mapping)
            batch_p, batch_l = batch_evaluate([sol.mapping])
            assert batch_p[0] == pytest.approx(period)
            assert batch_l[0] == pytest.approx(latency)
            res = simulate(sol.mapping, num_data_sets=N_SETS)
            assert res.measured_period == pytest.approx(period, rel=RTOL)
            assert res.max_latency <= latency + 1e-6
            rows.append([
                kind, f"{period:.4g}", f"{res.measured_period:.4g}",
                f"{latency:.4g}", f"{res.max_latency:.4g}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "simulator_validation",
        format_table(
            ["graph", "analytic period", "measured period",
             "analytic latency", "max observed latency"],
            rows,
            title=f"30 random mappings, {N_SETS} data sets each: simulator "
                  "vs Section 3.4 formulas",
        ),
    )


@pytest.mark.parametrize("graph", ["pipeline", "fork", "forkjoin"])
def test_simulation_throughput(benchmark, graph):
    """Raw simulator speed per graph class (data sets per call)."""
    rng = random.Random(SEED + hash(graph) % 100)
    while True:
        kind, sol = _random_mapped(rng)
        if kind == graph:
            break
    result = benchmark(lambda: simulate(sol.mapping, num_data_sets=300))
    assert result.num_data_sets == 300
