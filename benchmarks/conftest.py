"""Shared helpers for the benchmark harness.

Every benchmark writes a plain-text report (the regenerated table/figure,
paper value next to measured value) under ``benchmarks/reports/`` so the
artifacts survive pytest's output capture, and also prints it (visible with
``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS = Path(__file__).parent / "reports"


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        choices=("bnb", "enumerate"),
        default="bnb",
        help="exact reference engine used by the scaling benchmarks: "
             "pruned branch-and-bound (default) or flat enumeration",
    )


@pytest.fixture
def exact_engine(request) -> str:
    """The ``--engine`` knob: which exact engine benchmarks compare against."""
    return request.config.getoption("--engine")


@pytest.fixture
def report():
    """Callable fixture: ``report(name, text)`` persists and prints text."""

    def _write(name: str, text: str) -> None:
        REPORTS.mkdir(exist_ok=True)
        path = REPORTS / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[report -> {path}]\n{text}")

    return _write
