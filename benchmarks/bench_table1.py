"""Experiment T1 — regenerate Table 1, the paper's headline artifact.

For every one of the 48 cells (2 platforms x 4 application rows x 2
mapping-strategy columns x 3 objectives):

* polynomial cells: the per-theorem solver must return the brute-force
  optimum on randomized instances;
* NP-hard cells: the theorem's reduction must round-trip on YES and NO
  source instances.

The timed portion is one full validation pass; the report is the rendered
table with a validation mark per cell.
"""

import random

from repro.analysis.table1 import regenerate_table1


def test_table1_regeneration(benchmark, report):
    def run():
        return regenerate_table1(random.Random(2007), trials=2)

    text, validations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(validations) == 48
    failed = {k: v for k, v in validations.items() if not v.ok}
    assert not failed, f"cells failed validation: {failed}"
    summary = (
        f"all 48 cells validated "
        f"({sum(v.trials for v in validations.values())} trials total)"
    )
    report("table1", text + "\n\n" + summary)
    benchmark.extra_info["cells"] = 48
    benchmark.extra_info["all_valid"] = True
