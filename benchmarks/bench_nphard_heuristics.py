"""Experiment A3 — the NP-hard entries: exact scaling and heuristic quality.

Shape claims reproduced:

* the structured exact solvers for the Theorem 9 and Theorem 12 problems
  show super-polynomial growth (the NP-hard side of Table 1);
* the heuristic portfolio (greedy/chains-to-chains seeds + local search,
  LPT) stays close to the exact optimum — quantified as a ratio table.

The heuristic-quality studies execute as declarative campaigns through
:mod:`repro.campaign` (exact / heuristic / random solver columns over one
random instance family), sharing the persistent result cache under
``benchmarks/reports/campaign-cache/`` — re-runs and overlapping studies
re-use every solve.
"""

import random
import time
from pathlib import Path

import pytest

import repro
from repro.algorithms import exact
from repro.analysis import format_table
from repro.campaign import (
    CampaignSpec,
    ResultCache,
    heuristic_gap,
    run_campaign,
    summarize,
)

RNG_SEED = 73
CACHE_DIR = Path(__file__).parent / "reports" / "campaign-cache"


@pytest.mark.parametrize("n", [6, 9, 12])
def test_exact_blocks_scaling(benchmark, n):
    """Theorem 9 problem: the 2^{n-1} interval enumeration dominates."""
    rng = random.Random(RNG_SEED + n)
    app = repro.PipelineApplication.from_works(
        [rng.randint(1, 9) for _ in range(n)]
    )
    plat = repro.Platform.heterogeneous([rng.randint(1, 5) for _ in range(6)])
    sol = benchmark(lambda: exact.pipeline_period_exact_blocks(app, plat))
    assert sol.period > 0
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("n", [8, 12, 16])
def test_pcmax_exact_scaling(benchmark, n):
    """Theorem 12 problem: branch-and-bound P||Cmax."""
    rng = random.Random(RNG_SEED + n)
    works = [float(rng.randint(1, 30)) for _ in range(n)]
    value, _ = benchmark(lambda: exact.makespan_partition_exact(works, 4))
    assert value >= max(works) - 1e-9
    benchmark.extra_info["n"] = n


def test_heuristic_quality_pipeline_period(benchmark, report):
    """Portfolio + random baseline vs exact on the Theorem 9 problem,
    as a campaign: one instance family x three solver columns, executed
    through the sharded runner with the shared result cache."""
    spec = CampaignSpec(
        name="nphard-pipeline-quality",
        instances=(
            {"type": "random", "graph": "pipeline", "count": 8,
             "seed": RNG_SEED, "n": [5, 9], "p": [4, 7],
             "work_high": 12, "speed_high": 5},
        ),
        objectives=("period",),
        solvers=(
            {"name": "exact", "mode": "auto", "exact_fallback": True},
            {"name": "portfolio", "mode": "heuristic", "seed": RNG_SEED},
            {"name": "random", "mode": "random", "seed": RNG_SEED,
             "samples": 1},
        ),
    )

    def run():
        return run_campaign(spec, cache=ResultCache(CACHE_DIR), workers=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.error_rows, result.error_rows
    stats, gap_table = heuristic_gap(result, baseline="exact")
    assert stats["portfolio"]["max"] <= 1.5, (
        "portfolio drifted far from optimal"
    )
    report(
        "nphard_heuristics_pipeline",
        summarize(result, title="heuristic quality on the NP-hard "
                                "het-pipeline period problem (Thm 9)")
        + "\n" + gap_table,
    )


def test_heuristic_quality_fork_latency(benchmark, report):
    """LPT vs exact P||Cmax on the Theorem 12 problem, as a campaign;
    Graham's 4/3 bound must hold on the makespan part of every row."""
    spec = CampaignSpec(
        name="nphard-fork-quality",
        instances=(
            {"type": "random", "graph": "fork", "count": 8,
             "seed": RNG_SEED + 1, "n": [6, 12], "p": [2, 4],
             "work_high": 20, "homogeneous_platform": True},
        ),
        objectives=("latency",),
        solvers=(
            {"name": "exact", "mode": "auto", "exact_fallback": True},
            {"name": "lpt", "mode": "heuristic"},
        ),
    )

    def run():
        return run_campaign(spec, cache=ResultCache(CACHE_DIR), workers=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.error_rows, result.error_rows
    # Graham bound on the makespan part: latency = (w0 + Cmax) / s on a
    # homogeneous platform, so ratios of (latency - w0/s) are Cmax ratios.
    instances = dict(spec.expand_instances())
    by_instance: dict[str, dict[str, dict]] = {}
    for row in result.rows:
        by_instance.setdefault(row["instance_id"], {})[row["solver"]] = row
    rows = []
    for iid, solved in sorted(by_instance.items()):
        doc = instances[iid]
        w0 = doc["application"]["root_work"]
        s = doc["platform"]["speeds"][0]
        best, lpt = solved["exact"], solved["lpt"]
        ratio = (lpt["latency"] - w0 / s) / max(
            best["latency"] - w0 / s, 1e-12
        )
        assert ratio <= 4 / 3 + 1e-9
        rows.append([
            iid, f"{best['latency']:.3f}", f"{lpt['latency']:.3f}",
            f"{ratio:.3f}",
        ])
    report(
        "nphard_heuristics_fork",
        format_table(
            ["instance", "exact latency", "LPT latency",
             "Cmax ratio (<= 4/3)"],
            rows,
            title="LPT vs exact on the NP-hard het-fork latency problem "
                  "(Thm 12), via the campaign runner",
        ),
    )


def test_exponential_vs_polynomial_shape(benchmark, report):
    """One table contrasting growth of the exact solver (NP-hard cell) with
    the Theorem 7 algorithm (poly cell) on matched sizes."""
    rng = random.Random(RNG_SEED + 2)

    def run():
        rows = []
        for n in (6, 8, 10, 12):
            works = [rng.randint(1, 9) for _ in range(n)]
            speeds = [rng.randint(1, 5) for _ in range(6)]
            het_app = repro.PipelineApplication.from_works(works)
            hom_app = repro.PipelineApplication.homogeneous(n, 3.0)
            plat = repro.Platform.heterogeneous(speeds)
            t0 = time.perf_counter()
            exact.pipeline_period_exact_blocks(het_app, plat)
            t_exact = time.perf_counter() - t0
            t0 = time.perf_counter()
            from repro.algorithms import pipeline_het_platform

            pipeline_het_platform.min_period_homogeneous(hom_app, plat)
            t_poly = time.perf_counter() - t0
            rows.append([n, f"{t_exact * 1e3:.2f}", f"{t_poly * 1e3:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "nphard_vs_poly_shape",
        format_table(
            ["n", "exact het-pipeline (ms)", "Thm 7 hom-pipeline (ms)"],
            rows,
            title="NP-hard cell (Thm 9, exact) vs poly cell (Thm 7) runtime "
                  "growth, p=6",
        ),
    )
