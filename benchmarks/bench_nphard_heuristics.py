"""Experiment A3 — the NP-hard entries: exact scaling and heuristic quality.

Shape claims reproduced:

* the structured exact solvers for the Theorem 9 and Theorem 12 problems
  show super-polynomial growth (the NP-hard side of Table 1);
* the heuristic portfolio (greedy/chains-to-chains seeds + local search,
  LPT) stays close to the exact optimum — quantified as a ratio table.
"""

import random
import time

import pytest

import repro
from repro.algorithms import exact
from repro.analysis import format_table
from repro.heuristics import (
    fork_latency_lpt,
    pipeline_period_portfolio,
    pipeline_period_sweep,
    random_pipeline_mapping,
)

RNG_SEED = 73


@pytest.mark.parametrize("n", [6, 9, 12])
def test_exact_blocks_scaling(benchmark, n):
    """Theorem 9 problem: the 2^{n-1} interval enumeration dominates."""
    rng = random.Random(RNG_SEED + n)
    app = repro.PipelineApplication.from_works(
        [rng.randint(1, 9) for _ in range(n)]
    )
    plat = repro.Platform.heterogeneous([rng.randint(1, 5) for _ in range(6)])
    sol = benchmark(lambda: exact.pipeline_period_exact_blocks(app, plat))
    assert sol.period > 0
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("n", [8, 12, 16])
def test_pcmax_exact_scaling(benchmark, n):
    """Theorem 12 problem: branch-and-bound P||Cmax."""
    rng = random.Random(RNG_SEED + n)
    works = [float(rng.randint(1, 30)) for _ in range(n)]
    value, _ = benchmark(lambda: exact.makespan_partition_exact(works, 4))
    assert value >= max(works) - 1e-9
    benchmark.extra_info["n"] = n


def test_heuristic_quality_pipeline_period(benchmark, report):
    """Greedy + local search vs exact on the Theorem 9 problem."""
    rng = random.Random(RNG_SEED)

    def run():
        rows, ratios = [], []
        for trial in range(8):
            n = rng.randint(5, 9)
            p = rng.randint(4, 7)
            app = repro.PipelineApplication.from_works(
                [rng.randint(1, 12) for _ in range(n)]
            )
            plat = repro.Platform.heterogeneous(
                [rng.randint(1, 5) for _ in range(p)]
            )
            best = exact.pipeline_period_exact_blocks(app, plat).period
            greedy = pipeline_period_sweep(app, plat)
            portfolio = pipeline_period_portfolio(app, plat, rng)
            rnd = random_pipeline_mapping(app, plat, rng)
            ratios.append(portfolio.period / best)
            rows.append([
                trial, n, p, f"{best:.3f}",
                f"{greedy.period / best:.3f}",
                f"{portfolio.period / best:.3f}",
                f"{rnd.period / best:.3f}",
            ])
        return rows, ratios

    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(ratios) <= 1.5, "portfolio drifted far from optimal"
    report(
        "nphard_heuristics_pipeline",
        format_table(
            ["trial", "n", "p", "exact period", "greedy/opt",
             "portfolio/opt", "random/opt"],
            rows,
            title="heuristic quality on the NP-hard het-pipeline period "
                  "problem (Thm 9)",
        ),
    )


def test_heuristic_quality_fork_latency(benchmark, report):
    """LPT vs exact P||Cmax on the Theorem 12 problem; Graham's 4/3 bound
    must hold on the makespan part."""
    rng = random.Random(RNG_SEED + 1)

    def run():
        rows = []
        for trial in range(8):
            n = rng.randint(6, 12)
            p = rng.randint(2, 4)
            app = repro.ForkApplication.from_works(
                rng.randint(1, 9),
                [rng.randint(1, 20) for _ in range(n)],
            )
            plat = repro.Platform.homogeneous(p, 1.0)
            best = exact.fork_latency_exact_hom_platform(app, plat)
            lpt = fork_latency_lpt(app, plat)
            w0 = app.root.work
            ratio = (lpt.latency - w0) / max(best.latency - w0, 1e-12)
            assert ratio <= 4 / 3 + 1e-9
            rows.append([trial, n, p, f"{best.latency:.3f}",
                         f"{lpt.latency:.3f}", f"{ratio:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "nphard_heuristics_fork",
        format_table(
            ["trial", "branches", "p", "exact latency", "LPT latency",
             "Cmax ratio (<= 4/3)"],
            rows,
            title="LPT vs exact on the NP-hard het-fork latency problem "
                  "(Thm 12)",
        ),
    )


def test_exponential_vs_polynomial_shape(benchmark, report):
    """One table contrasting growth of the exact solver (NP-hard cell) with
    the Theorem 7 algorithm (poly cell) on matched sizes."""
    rng = random.Random(RNG_SEED + 2)

    def run():
        rows = []
        for n in (6, 8, 10, 12):
            works = [rng.randint(1, 9) for _ in range(n)]
            speeds = [rng.randint(1, 5) for _ in range(6)]
            het_app = repro.PipelineApplication.from_works(works)
            hom_app = repro.PipelineApplication.homogeneous(n, 3.0)
            plat = repro.Platform.heterogeneous(speeds)
            t0 = time.perf_counter()
            exact.pipeline_period_exact_blocks(het_app, plat)
            t_exact = time.perf_counter() - t0
            t0 = time.perf_counter()
            from repro.algorithms import pipeline_het_platform

            pipeline_het_platform.min_period_homogeneous(hom_app, plat)
            t_poly = time.perf_counter() - t0
            rows.append([n, f"{t_exact * 1e3:.2f}", f"{t_poly * 1e3:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "nphard_vs_poly_shape",
        format_table(
            ["n", "exact het-pipeline (ms)", "Thm 7 hom-pipeline (ms)"],
            rows,
            title="NP-hard cell (Thm 9, exact) vs poly cell (Thm 7) runtime "
                  "growth, p=6",
        ),
    )
