"""Experiment A2 — the starred fork entry (Theorem 14).

Same shape claims as A1, for homogeneous forks on heterogeneous platforms:
agreement with brute force on small instances, polynomial growth of the
candidate-search x block-DP algorithm on larger ones, across all three
objectives.
"""

import random
import time

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms import fork_het_platform as fhet
from repro.algorithms.problem import Objective, ProblemSpec
from repro.analysis import format_table

RNG_SEED = 72


def _instance(rng, n, p):
    app = repro.ForkApplication.homogeneous(
        n, float(rng.randint(1, 8)), float(rng.randint(1, 5))
    )
    plat = repro.Platform.heterogeneous([rng.randint(1, 6) for _ in range(p)])
    return app, plat


@pytest.mark.parametrize("size", [4, 8, 12, 16])
def test_thm14_period_scaling(benchmark, size):
    rng = random.Random(RNG_SEED + size)
    app, plat = _instance(rng, size, size)
    sol = benchmark(lambda: fhet.min_period_homogeneous(app, plat))
    assert sol.period >= app.total_work / plat.total_speed - 1e-9


@pytest.mark.parametrize("size", [4, 8, 12])
def test_thm14_latency_scaling(benchmark, size):
    rng = random.Random(RNG_SEED + size)
    app, plat = _instance(rng, size, size)
    sol = benchmark(lambda: fhet.min_latency_homogeneous(app, plat))
    # latency of a fork is at least root + one branch on the fastest CPU
    fastest = max(plat.speeds)
    assert sol.latency >= (app.root.work + app.branches[0].work) / fastest - 1e-9


def test_thm14_vs_exhaustive_gap(benchmark, report, exact_engine):
    rng = random.Random(RNG_SEED)

    def measure():
        rows = []
        for size in (2, 3, 4):
            app, plat = _instance(rng, size, size)
            spec = ProblemSpec(app, plat, False)
            for objective in (Objective.PERIOD, Objective.LATENCY):
                t0 = time.perf_counter()
                fast = fhet.solve_homogeneous(app, plat, objective)
                t_fast = time.perf_counter() - t0
                t0 = time.perf_counter()
                slow = bf.optimal(spec, objective, engine=exact_engine)
                t_slow = time.perf_counter() - t0
                assert fast.objective_value(objective) == pytest.approx(
                    slow.objective_value(objective)
                )
                rows.append([
                    size, objective.value,
                    f"{fast.objective_value(objective):.4g}",
                    f"{t_fast * 1e3:.2f}", f"{t_slow * 1e3:.2f}",
                ])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "fork_het_scaling",
        format_table(
            ["n=p", "objective", "optimum", "Thm 14 (ms)", "brute (ms)"],
            rows,
            title="Theorem 14 vs exhaustive search",
        ),
    )
