"""Experiment A7 — the five NP-hardness reductions, end to end.

For each theorem: build gadgets from generated YES and NO source instances,
decide the scheduling bound, and require 100% agreement with the source
problem's ground truth.  Gadget sizes are reported to show the polynomial
blow-up of each construction (Theorem 9's strong-sense gadget encodes M in
unary, hence its (M+3)m stages).
"""

import random

import pytest

import repro
from repro.algorithms.problem import Objective
from repro.analysis import format_table
from repro.core import evaluate
from repro.nphard import (
    Thm5Reduction,
    Thm9Reduction,
    Thm12Reduction,
    Thm13Reduction,
    Thm15Reduction,
    random_n3dm_yes,
    random_two_partition,
    random_two_partition_yes,
    solve_n3dm,
    solve_two_partition,
)

SEED = 76


def _gadget_instance(rng, yes, distinct_small):
    for _ in range(10_000):
        m = rng.randint(4, 6)
        inst = (
            random_two_partition_yes(rng, m, 20)
            if yes
            else random_two_partition(rng, m, 20)
        )
        if inst.is_yes() != yes:
            continue
        if distinct_small:
            v = inst.values
            if len(set(v)) != len(v) or any(2 * a >= inst.total for a in v):
                continue
        return inst
    raise RuntimeError("sampling failed")


def test_reduction_roundtrips(benchmark, report):
    rng = random.Random(SEED)

    def run():
        rows = []
        checks = 0
        for trial in range(10):
            yes = trial % 2 == 0
            # Thm 5 / 13 share the gadget family
            inst = _gadget_instance(rng, yes, distinct_small=True)
            red5 = Thm5Reduction(inst)
            assert red5.schedule_meets_bound(Objective.LATENCY) == yes
            assert red5.schedule_meets_bound(Objective.PERIOD) == yes
            red13 = Thm13Reduction(inst)
            assert red13.schedule_meets_bound(Objective.LATENCY) == yes
            checks += 3
            # Thm 12 / 15
            inst2 = _gadget_instance(rng, yes, distinct_small=False)
            assert Thm12Reduction(inst2).schedule_meets_bound() == yes
            assert Thm15Reduction(inst2).schedule_meets_bound() == yes
            checks += 2
            rows.append([
                trial, "YES" if yes else "NO", str(inst.values),
                str(inst2.values), "agree x5",
            ])
        return rows, checks

    (rows, checks) = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "reduction_roundtrips",
        format_table(
            ["trial", "truth", "Thm5/13 gadget values", "Thm12/15 values",
             "result"],
            rows,
            title=f"reduction round-trips: {checks} decisions, all agree "
                  "with 2-PARTITION ground truth",
        ),
    )


def test_thm9_gadget(benchmark, report):
    """Theorem 9 (N3DM) separately: gadget size table + witness pricing."""
    rng = random.Random(SEED + 1)

    def run():
        rows = []
        for m in (2, 3, 4):
            inst = random_n3dm_yes(rng, m)
            red = Thm9Reduction(inst)
            app, plat = red.application, red.platform
            sigma = solve_n3dm(inst)
            assert sigma is not None
            mapping = red.yes_mapping(*sigma)
            period, _ = evaluate(mapping)
            assert period == pytest.approx(1.0)
            assert red.schedule_meets_bound()
            back = red.extract_matching(mapping)
            assert back is not None
            rows.append([
                m, inst.M, app.n, plat.p,
                f"{period:.6f}", "recovered",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "reduction_thm9",
        format_table(
            ["m", "M", "gadget stages (M+3)m", "processors 3m",
             "witness period", "matching back-mapped"],
            rows,
            title="Theorem 9 gadget (N3DM, strong NP-hardness): unary "
                  "blow-up and witness verification",
        ),
    )


def test_witness_extraction_rate(benchmark, report):
    """On YES instances, back-mapping from the witness mapping must recover
    a valid partition 100% of the time."""
    rng = random.Random(SEED + 2)

    def run():
        total, recovered = 0, 0
        for _ in range(10):
            inst = _gadget_instance(rng, True, distinct_small=True)
            subset = solve_two_partition(inst)
            red = Thm5Reduction(inst)
            if red.extract_partition(red.yes_mapping(subset)) is not None:
                recovered += 1
            total += 1
            inst2 = _gadget_instance(rng, True, distinct_small=False)
            subset2 = solve_two_partition(inst2)
            if Thm12Reduction(inst2).extract_partition(
                Thm12Reduction(inst2).yes_mapping(subset2)
            ) is not None:
                recovered += 1
            total += 1
            if Thm15Reduction(inst2).extract_partition(
                Thm15Reduction(inst2).yes_mapping(subset2)
            ) is not None:
                recovered += 1
            total += 1
        return total, recovered

    total, recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert recovered == total
    report(
        "reduction_extraction",
        f"witness back-mapping: {recovered}/{total} partitions recovered "
        "(must be 100%)",
    )
