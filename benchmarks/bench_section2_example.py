"""Experiment E2 — the Section 2 worked example, every number.

The paper prices a series of mappings of the pipeline (14, 4, 2, 4) on two
platforms.  This benchmark reprices each exhibited mapping (exact match
required), then re-derives the optima with the library's solvers — and
records the two values where exhaustive search under the paper's own model
*improves* on the claimed optimum (period 4.5 < 5, latency 8.5 < 12.8; see
EXPERIMENTS.md erratum).
"""

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec
from repro.analysis import format_table
from repro.core import AssignmentKind as K
from repro.core import GroupAssignment, PipelineMapping

APP = repro.PipelineApplication.from_works([14, 4, 2, 4])
HOM3 = repro.Platform.homogeneous(3, 1.0)
HOM4 = repro.Platform.homogeneous(4, 1.0)
HET4 = repro.Platform.heterogeneous([2, 2, 1, 1])


def _mapping(platform, parts, kinds=None):
    kinds = kinds or [K.REPLICATED] * len(parts)
    groups = tuple(
        GroupAssignment(stages=tuple(s), processors=tuple(p), kind=kind)
        for (s, p), kind in zip(parts, kinds)
    )
    return PipelineMapping(application=APP, platform=platform, groups=groups)


# (label, mapping, paper period, paper latency)
EXHIBITED = [
    ("hom3: S1|P1, rest|P2",
     _mapping(HOM3, [([1], [0]), ([2, 3, 4], [1])]), 14.0, 24.0),
    ("hom3: replicate all on P1-P3",
     _mapping(HOM3, [([1, 2, 3, 4], [0, 1, 2])]), 8.0, 24.0),
    ("hom3: S1 replicated on P1,P2",
     _mapping(HOM3, [([1], [0, 1]), ([2, 3, 4], [2])]), 10.0, 24.0),
    ("hom4: S1 repl P1,P2; S2-S4 repl P3,P4",
     _mapping(HOM4, [([1], [0, 1]), ([2, 3, 4], [2, 3])]), 7.0, 24.0),
    ("hom3: S1 data-par P1,P2",
     _mapping(HOM3, [([1], [0, 1]), ([2, 3, 4], [2])], [K.DATA_PARALLEL,
                                                        K.REPLICATED]),
     10.0, 17.0),
    ("het4: replicate all",
     _mapping(HET4, [([1, 2, 3, 4], [0, 1, 2, 3])]), 6.0, 24.0),
    ("het4: S1 dp P1,P2; rest repl P3,P4",
     _mapping(HET4, [([1], [0, 1]), ([2, 3, 4], [2, 3])],
              [K.DATA_PARALLEL, K.REPLICATED]), 5.0, 13.5),
    ("het4: S1 dp P1-P3; rest P4",
     _mapping(HET4, [([1], [0, 1, 2]), ([2, 3, 4], [3])],
              [K.DATA_PARALLEL, K.REPLICATED]), 10.0, 12.8),
]


def test_exhibited_mappings_price_exactly(benchmark, report):
    def price_all():
        return [repro.evaluate(m) for _, m, _, _ in EXHIBITED]

    values = benchmark(price_all)
    rows = []
    for (label, _, paper_p, paper_l), (got_p, got_l) in zip(EXHIBITED, values):
        assert got_p == pytest.approx(paper_p), label
        assert got_l == pytest.approx(paper_l), label
        rows.append([label, paper_p, f"{got_p:g}", paper_l, f"{got_l:g}"])
    report(
        "section2_exhibited",
        format_table(
            ["mapping", "paper period", "measured", "paper latency", "measured"],
            rows,
            title="Section 2 exhibited mappings (exact agreement required)",
        ),
    )


def test_optima_and_errata(benchmark, report):
    def solve_all():
        out = {}
        out["hom_period"] = repro.solve(
            ProblemSpec(APP, HOM3, False), Objective.PERIOD
        ).period
        out["hom_latency_dp"] = repro.solve(
            ProblemSpec(APP, HOM3, True), Objective.LATENCY
        ).latency
        out["het_period"] = bf.optimal(
            ProblemSpec(APP, HET4, True), Objective.PERIOD
        ).period
        out["het_latency"] = bf.optimal(
            ProblemSpec(APP, HET4, True), Objective.LATENCY
        ).latency
        return out

    values = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    assert values["hom_period"] == pytest.approx(8.0)
    assert values["hom_latency_dp"] == pytest.approx(17.0)
    assert values["het_period"] == pytest.approx(4.5)     # paper claims 5
    assert values["het_latency"] == pytest.approx(8.5)    # paper claims 12.8
    rows = [
        ["hom p=3 min period", "8", f"{values['hom_period']:g}", "agrees"],
        ["hom p=3 min latency (dp)", "17", f"{values['hom_latency_dp']:g}",
         "agrees"],
        ["het min period", "5 (claimed optimal)", f"{values['het_period']:g}",
         "ERRATUM: model admits 4.5"],
        ["het min latency", "12.8 (claimed optimal)",
         f"{values['het_latency']:g}", "ERRATUM: model admits 8.5"],
    ]
    report(
        "section2_optima",
        format_table(
            ["quantity", "paper", "exhaustive search", "verdict"], rows,
            title="Section 2 optima: paper vs exhaustive verification",
        ),
    )
