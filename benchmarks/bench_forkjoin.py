"""Experiment A6 — fork-join extensions (Section 6.3).

The paper's claim: "the complexity is not modified by the addition of the
final stage".  Reproduced as:

* the extended polynomial algorithms return brute-force optima on random
  small fork-joins (hom and het platforms);
* the overhead of the join loops is a constant-degree polynomial factor —
  measured against the plain fork solver on matched instances.
"""

import random
import time

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms import fork_het_platform, forkjoin
from repro.algorithms.problem import Objective, ProblemSpec
from repro.analysis import format_table

SEED = 75


def test_forkjoin_agrees_with_bruteforce(benchmark, report, exact_engine):
    rng = random.Random(SEED)

    def run():
        rows = []
        for trial in range(6):
            n, p = rng.randint(1, 3), rng.randint(1, 3)
            app = repro.ForkJoinApplication.homogeneous(
                n, rng.randint(1, 5), rng.randint(1, 4), rng.randint(1, 5)
            )
            hom_plat = repro.Platform.homogeneous(p, 1.0)
            got = forkjoin.solve_hom_platform(
                app, hom_plat, Objective.LATENCY, allow_data_parallel=True
            ).latency
            want = bf.optimal(
                ProblemSpec(app, hom_plat, True), Objective.LATENCY,
                engine=exact_engine,
            ).latency
            assert got == pytest.approx(want)
            het_plat = repro.Platform.heterogeneous(
                [rng.randint(1, 4) for _ in range(p)]
            )
            got_h = forkjoin.solve_het_platform(
                app, het_plat, Objective.PERIOD
            ).period
            want_h = bf.optimal(
                ProblemSpec(app, het_plat, False), Objective.PERIOD,
                engine=exact_engine,
            ).period
            assert got_h == pytest.approx(want_h)
            rows.append([trial, n, p, f"{got:.4g}", f"{got_h:.4g}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "forkjoin_agreement",
        format_table(
            ["trial", "n", "p", "hom-platform latency opt",
             "het-platform period opt"],
            rows,
            title="fork-join extended algorithms vs brute force "
                  "(Section 6.3)",
        ),
    )


def test_join_overhead_measured(benchmark, report):
    """Cost of the extra join loops: fork vs fork-join solve times."""
    rng = random.Random(SEED + 1)

    def run():
        rows = []
        for size in (4, 6, 8):
            fork_app = repro.ForkApplication.homogeneous(size, 2.0, 3.0)
            fj_app = repro.ForkJoinApplication.homogeneous(size, 2.0, 3.0, 2.0)
            plat = repro.Platform.heterogeneous(
                [rng.randint(1, 5) for _ in range(size)]
            )
            t0 = time.perf_counter()
            fork_sol = fork_het_platform.min_period_homogeneous(fork_app, plat)
            t_fork = time.perf_counter() - t0
            t0 = time.perf_counter()
            fj_sol = forkjoin.solve_het_platform(fj_app, plat, Objective.PERIOD)
            t_fj = time.perf_counter() - t0
            # adding a join stage can only increase the optimal period
            assert fj_sol.period >= fork_sol.period - 1e-9
            rows.append([
                size, f"{fork_sol.period:.4g}", f"{fj_sol.period:.4g}",
                f"{t_fork * 1e3:.2f}", f"{t_fj * 1e3:.2f}",
                f"{t_fj / max(t_fork, 1e-9):.1f}x",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "forkjoin_overhead",
        format_table(
            ["n=p", "fork period", "fork-join period", "fork (ms)",
             "fork-join (ms)", "slowdown"],
            rows,
            title="cost of the join extension (polynomial overhead, "
                  "Section 6.3)",
        ),
    )


@pytest.mark.parametrize("size", [4, 8, 12])
def test_forkjoin_het_scaling(benchmark, size):
    app = repro.ForkJoinApplication.homogeneous(size, 2.0, 3.0, 2.0)
    rng = random.Random(SEED + size)
    plat = repro.Platform.heterogeneous(
        [rng.randint(1, 5) for _ in range(min(size, 8))]
    )
    sol = benchmark(
        lambda: forkjoin.solve_het_platform(app, plat, Objective.PERIOD)
    )
    assert sol.period >= app.total_work / plat.total_speed - 1e-9
