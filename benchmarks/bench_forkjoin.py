"""Experiment A6 — fork-join extensions (Section 6.3).

The paper's claim: "the complexity is not modified by the addition of the
final stage".  Reproduced as:

* the extended polynomial algorithms return brute-force optima on random
  small fork-joins (hom and het platforms);
* the overhead of the join loops is a constant-degree polynomial factor —
  measured against the plain fork solver on matched instances.
"""

import random
import time
from pathlib import Path

import pytest

import repro
from repro.algorithms import fork_het_platform, forkjoin
from repro.algorithms.problem import Objective
from repro.analysis import format_table

SEED = 75


def test_forkjoin_agrees_with_bruteforce(benchmark, report, exact_engine):
    """Poly fork-join solvers vs the exhaustive reference, as a campaign:
    two random fork-join families (hom platform with DP; het platform
    without) x both objectives x {poly, brute} solver columns, executed
    through the sharded runner with the shared result cache."""
    from repro.campaign import CampaignSpec, ResultCache, run_campaign

    spec = CampaignSpec(
        name=f"forkjoin-agreement-{exact_engine}",
        instances=(
            {"type": "random", "graph": "forkjoin", "count": 6,
             "seed": SEED, "n": [1, 3], "p": [1, 3],
             "work_high": 5, "speed_high": 4,
             "homogeneous_app": True, "homogeneous_platform": True,
             "allow_data_parallel": True},
            {"type": "random", "graph": "forkjoin", "count": 6,
             "seed": SEED + 1, "n": [1, 3], "p": [1, 3],
             "work_high": 5, "speed_high": 4,
             "homogeneous_app": True},
        ),
        objectives=("period", "latency"),
        solvers=(
            {"name": "poly", "mode": "auto"},
            {"name": "brute", "mode": "exact", "engine": exact_engine},
        ),
    )
    cache = ResultCache(
        Path(__file__).parent / "reports" / "campaign-cache"
    )

    def run():
        return run_campaign(spec, cache=cache, workers=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.error_rows, result.error_rows
    paired: dict[tuple, dict[str, dict]] = {}
    for row in result.rows:
        paired.setdefault(
            (row["instance_id"], row["objective"]), {}
        )[row["solver"]] = row
    rows = []
    for (iid, objective), solved in sorted(paired.items()):
        got = solved["poly"]["value"]
        want = solved["brute"]["value"]
        assert got == pytest.approx(want), (iid, objective, got, want)
        rows.append([iid, objective, f"{got:.4g}"])
    report(
        "forkjoin_agreement",
        format_table(
            ["instance", "objective", "optimum (poly == brute)"],
            rows,
            title="fork-join extended algorithms vs brute force "
                  "(Section 6.3), via the campaign runner",
        ),
    )


def test_join_overhead_measured(benchmark, report):
    """Cost of the extra join loops: fork vs fork-join solve times."""
    rng = random.Random(SEED + 1)

    def run():
        rows = []
        for size in (4, 6, 8):
            fork_app = repro.ForkApplication.homogeneous(size, 2.0, 3.0)
            fj_app = repro.ForkJoinApplication.homogeneous(size, 2.0, 3.0, 2.0)
            plat = repro.Platform.heterogeneous(
                [rng.randint(1, 5) for _ in range(size)]
            )
            t0 = time.perf_counter()
            fork_sol = fork_het_platform.min_period_homogeneous(fork_app, plat)
            t_fork = time.perf_counter() - t0
            t0 = time.perf_counter()
            fj_sol = forkjoin.solve_het_platform(fj_app, plat, Objective.PERIOD)
            t_fj = time.perf_counter() - t0
            # adding a join stage can only increase the optimal period
            assert fj_sol.period >= fork_sol.period - 1e-9
            rows.append([
                size, f"{fork_sol.period:.4g}", f"{fj_sol.period:.4g}",
                f"{t_fork * 1e3:.2f}", f"{t_fj * 1e3:.2f}",
                f"{t_fj / max(t_fork, 1e-9):.1f}x",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "forkjoin_overhead",
        format_table(
            ["n=p", "fork period", "fork-join period", "fork (ms)",
             "fork-join (ms)", "slowdown"],
            rows,
            title="cost of the join extension (polynomial overhead, "
                  "Section 6.3)",
        ),
    )


@pytest.mark.parametrize("size", [4, 8, 12])
def test_forkjoin_het_scaling(benchmark, size):
    app = repro.ForkJoinApplication.homogeneous(size, 2.0, 3.0, 2.0)
    rng = random.Random(SEED + size)
    plat = repro.Platform.heterogeneous(
        [rng.randint(1, 5) for _ in range(min(size, 8))]
    )
    sol = benchmark(
        lambda: forkjoin.solve_het_platform(app, plat, Objective.PERIOD)
    )
    assert sol.period >= app.total_work / plat.total_speed - 1e-9
