#!/usr/bin/env python
"""Composite workflow: ingest pipeline >> scatter fork >> reduce pipeline.

The paper's conclusion proposes combining its polynomial per-kernel
algorithms into heuristics for larger graphs "structured as combinations of
pipeline and fork kernels".  This example builds an ETL-style chain —
a three-stage ingest pipeline, a twelve-way scatter fork, and a two-stage
reduce pipeline — maps it on a ten-node heterogeneous cluster with the
composite mapper, and shows the per-kernel routes (polynomial vs heuristic)
and the allocation refinement at work.

Run:  python examples/composite_workflow.py
"""

import repro
from repro.composite import CompositeWorkflow, map_composite


def main() -> None:
    workflow = CompositeWorkflow.of(
        repro.PipelineApplication.from_works([8.0, 20.0, 12.0]),   # ingest
        repro.ForkApplication.homogeneous(12, root_work=6.0,
                                          branch_work=30.0),        # scatter
        repro.PipelineApplication.homogeneous(2, 15.0),             # reduce
    )
    platform = repro.Platform.heterogeneous([4, 4, 3, 3, 2, 2, 2, 1, 1, 1])
    print("workflow :", workflow.describe())
    print("platform :", platform.speeds)

    refined = map_composite(workflow, platform, allow_data_parallel=False)
    print("\nmapped (with refinement):")
    print(refined.describe())

    unrefined = map_composite(
        workflow, platform, allow_data_parallel=False, max_refinements=0
    )
    print(f"\nproportional-only period : {unrefined.period:.3f}")
    print(f"refined period            : {refined.period:.3f}")
    bound = max(workflow.kernel_works) / platform.total_speed
    print(f"capacity bound (heaviest kernel on the whole platform): "
          f"{bound:.3f}")

    bott = refined.bottleneck
    print(f"\nbottleneck: kernel {bott.kernel_index} "
          f"({workflow.kernels[bott.kernel_index].total_work:g} work) on "
          f"{len(bott.processors)} processors via the {bott.route} route")


if __name__ == "__main__":
    main()
