#!/usr/bin/env python
"""Master-slave shard scan: a fork on a heterogeneous cluster (Theorem 14).

The paper's fork graphs model master-slave distribution (Sections 1, 6.3):
a root stage prepares a request, independent branches scan shards.  This
instance — homogeneous fork, heterogeneous platform, no data-parallelism —
is one of the paper's starred polynomial entries (Theorem 14): solved by a
binary search over candidate periods combined with a block dynamic program
over speed-sorted processors.

The example solves all three objectives, shows the optimal mapping
structure (which processors replicate which branch groups and who hosts the
root), and checks the optimum against the fork-join variant where results
must also be combined.

Run:  python examples/master_slave_fork.py
"""

import repro
from repro.algorithms import forkjoin
from repro.generators import get_scenario


def main() -> None:
    scenario = get_scenario("master-slave-fork")
    app, platform = scenario.application, scenario.platform
    print(scenario.description)
    print(f"root work {app.root.work}, {app.n} branches of "
          f"{app.branches[0].work} each; speeds {platform.speeds}")

    spec = repro.ProblemSpec(app, platform, allow_data_parallel=False)
    entry = repro.classify(spec, repro.Objective.PERIOD)
    print(f"\ncomplexity: {entry.describe()}")

    best_period = repro.solve(spec, repro.Objective.PERIOD)
    print("\nmin period:")
    print("  ", best_period.describe())

    best_latency = repro.solve(spec, repro.Objective.LATENCY)
    print("min latency:")
    print("  ", best_latency.describe())

    mid = (best_period.period + best_period.latency) / 2
    tradeoff = repro.solve(spec, repro.Objective.LATENCY, period_bound=mid)
    print(f"min latency with period <= {mid:.2f}:")
    print("  ", tradeoff.describe())

    # ------------------------------------------------------------------
    # Gather the results too: the fork-join extension (Section 6.3)
    # ------------------------------------------------------------------
    fj_app = repro.ForkJoinApplication.homogeneous(
        app.n, root_work=app.root.work,
        branch_work=app.branches[0].work, join_work=60.0,
    )
    fj_sol = forkjoin.solve_het_platform(
        fj_app, platform, repro.Objective.PERIOD
    )
    print("\nwith a gather/combine stage (fork-join, join work 60):")
    print("  ", fj_sol.describe())
    print(f"join overhead on the period: "
          f"{fj_sol.period - best_period.period:+.3f}")


if __name__ == "__main__":
    main()
