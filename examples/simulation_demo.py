#!/usr/bin/env python
"""Round-robin vs demand-driven replication, simulated (Section 3.3).

The paper enforces round-robin data-set distribution over replicas because
a demand-driven (earliest-free-server) scheme, while achieving optimal
throughput on different-speed replicas, "is quite likely to lead to an
out-of-order execution of data sets" that breaks sequential downstream
stages.  This example makes that concrete with the discrete-event
simulator: one replicated stage on a fast + slow processor pair.

Run:  python examples/simulation_demo.py
"""

import repro
from repro.analysis import format_table
from repro.core import AssignmentKind, GroupAssignment, PipelineMapping
from repro.simulation import DispatchPolicy, simulate_pipeline


def main() -> None:
    app = repro.PipelineApplication.from_works([12.0])
    platform = repro.Platform.heterogeneous([3.0, 1.0])
    mapping = PipelineMapping(
        application=app,
        platform=platform,
        groups=(
            GroupAssignment(
                stages=(1,), processors=(0, 1),
                kind=AssignmentKind.REPLICATED,
            ),
        ),
    )
    analytic = repro.pipeline_period(mapping)
    demand_bound = app.total_work / platform.total_speed
    print("one stage of work 12 replicated on speeds (3, 1)")
    print(f"round-robin analytic period : {analytic:.3f}  (= W / (k min s))")
    print(f"demand-driven ideal period  : {demand_bound:.3f}  (= W / sum s)")

    rows = []
    for policy, input_period in (
        (DispatchPolicy.ROUND_ROBIN, analytic),
        (DispatchPolicy.DEMAND_DRIVEN, demand_bound),
    ):
        res = simulate_pipeline(
            mapping,
            num_data_sets=1000,
            input_period=input_period,
            policy=policy,
            enforce_order=False,
        )
        rows.append([
            policy.value,
            f"{input_period:.3f}",
            f"{res.measured_period:.3f}",
            f"{res.max_latency:.3f}",
            res.order_inversions,
        ])
    print()
    print(format_table(
        ["policy", "input period", "measured period", "max latency",
         "inversions"],
        rows,
        title="1000 data sets, no reorder buffer",
    ))
    print(
        "\nThe demand-driven policy sustains the higher input rate but\n"
        "completes data sets out of order; round-robin at its (slower)\n"
        "rate preserves the stream semantics the paper requires."
    )

    # what happens if we overdrive round-robin at the demand-driven rate?
    overdriven = simulate_pipeline(
        mapping, num_data_sets=1000, input_period=demand_bound,
        policy=DispatchPolicy.ROUND_ROBIN, enforce_order=False,
    )
    print(
        f"\nround-robin fed at {demand_bound:.3f}: latency grows to "
        f"{overdriven.max_latency:.1f} after 1000 data sets (unstable queue)"
    )


if __name__ == "__main__":
    main()
