#!/usr/bin/env python
"""Period/latency trade-off curves (bi-criteria optimization).

The paper frames bi-criteria mapping as "minimize latency under a period
threshold" (Section 3.4).  Sweeping the threshold traces the Pareto front;
this example draws it as ASCII for the scatter-gather scenario and shows
the effect of allowing data-parallelism on the curve.

Run:  python examples/pareto_tradeoffs.py
"""

import repro
from repro.analysis import format_table, pareto_front
from repro.generators import get_scenario


def ascii_plot(points, width: int = 60, height: int = 16) -> str:
    xs = [p.period for p in points]
    ys = [p.latency for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = 0 if x1 == x0 else int((x - x0) / (x1 - x0) * (width - 1))
        row = 0 if y1 == y0 else int((y - y0) / (y1 - y0) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"period: {x0:.2f} .. {x1:.2f}   latency: {y0:.2f} .. {y1:.2f}")
    return "\n".join(lines)


def main() -> None:
    scenario = get_scenario("scatter-gather")
    app, platform = scenario.application, scenario.platform
    print(scenario.description)

    rows = []
    for dp in (False, True):
        spec = repro.ProblemSpec(app, platform, allow_data_parallel=dp)
        front = pareto_front(spec, num_points=24)
        label = "with data-par" if dp else "without data-par"
        print(f"\nPareto front {label} ({len(front)} points):")
        print(ascii_plot(front))
        for sol in front:
            rows.append([label, f"{sol.period:.3f}", f"{sol.latency:.3f}"])

    print()
    print(format_table(["variant", "period", "latency"], rows,
                       title="non-dominated mappings"))


if __name__ == "__main__":
    main()
