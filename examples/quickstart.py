#!/usr/bin/env python
"""Quickstart: the Section 2 worked example, end to end.

Builds the paper's four-stage pipeline (works 14, 4, 2, 4), maps it on both
platforms of the example, and walks through every optimization the paper
discusses: period with replication, latency with data-parallelism, the
heterogeneous platform, and a bi-criteria query.

Run:  python examples/quickstart.py
"""

import repro
from repro.algorithms import brute_force


def main() -> None:
    app = repro.PipelineApplication.from_works([14, 4, 2, 4])
    print(f"pipeline: works={app.works}, total={app.total_work}")

    # ------------------------------------------------------------------
    # Homogeneous platform: three unit-speed processors
    # ------------------------------------------------------------------
    hom = repro.Platform.homogeneous(3, 1.0)
    spec = repro.ProblemSpec(app, hom, allow_data_parallel=False)

    sol = repro.solve(spec, repro.Objective.PERIOD)
    print("\n[hom, no data-par] min period (paper: 8):")
    print("  ", sol.describe())

    spec_dp = repro.ProblemSpec(app, hom, allow_data_parallel=True)
    sol = repro.solve(spec_dp, repro.Objective.LATENCY)
    print("[hom, data-par] min latency (paper: 17):")
    print("  ", sol.describe())

    # ------------------------------------------------------------------
    # Heterogeneous platform: speeds (2, 2, 1, 1)
    # ------------------------------------------------------------------
    het = repro.Platform.heterogeneous([2, 2, 1, 1])
    spec_het = repro.ProblemSpec(app, het, allow_data_parallel=True)

    entry = repro.classify(spec_het, repro.Objective.PERIOD)
    print(f"\n[het, data-par] complexity: {entry.describe()}")
    sol = repro.solve(spec_het, repro.Objective.PERIOD, exact_fallback=True)
    print("  exact min period (paper claims 5; the model admits 4.5):")
    print("  ", sol.describe())

    sol = brute_force.optimal(spec_het, repro.Objective.LATENCY)
    print("  exact min latency (paper claims 12.8; the model admits 8.5):")
    print("  ", sol.describe())

    # ------------------------------------------------------------------
    # Bi-criteria: best latency subject to a period threshold
    # ------------------------------------------------------------------
    sol = repro.solve(spec_dp, repro.Objective.LATENCY, period_bound=10.0)
    print("\n[hom, data-par] min latency with period <= 10:")
    print("  ", sol.describe())


if __name__ == "__main__":
    main()
