#!/usr/bin/env python
"""Video-analytics pipeline on a heterogeneous cluster.

The paper motivates pipelines with image processing (Section 1) and uses a
"low-level filter feeding high-level extraction" story in Section 2 to
explain why only single stages can be data-parallelized.  This example maps
a six-stage analytics chain (decode .. encode) onto an eight-node cluster
with three processor generations, compares the heuristic routes the library
offers for this NP-hard instance (het pipeline + het platform + data-par is
Theorem 5 territory), and validates the chosen mapping in the simulator.

Run:  python examples/image_pipeline.py
"""

import repro
from repro.generators import get_scenario
from repro.heuristics import improve_mapping, pipeline_period_sweep
from repro.simulation import simulate


def main() -> None:
    scenario = get_scenario("image-pipeline")
    app, platform = scenario.application, scenario.platform
    print(scenario.description)
    print(f"stages: {app.works}")
    print(f"speeds: {platform.speeds}")

    spec = repro.ProblemSpec(app, platform, scenario.allow_data_parallel)
    entry = repro.classify(spec, repro.Objective.PERIOD)
    print(f"\ncomplexity of this instance: {entry.describe()}")

    # Route 1: greedy chains-to-chains + proportional processor blocks
    greedy = pipeline_period_sweep(app, platform)
    print("\ngreedy sweep:")
    print("  ", greedy.describe())

    # Route 2: + steepest-descent local search (may enable data-parallelism)
    polished = improve_mapping(
        greedy, repro.Objective.PERIOD, allow_data_parallel=True
    )
    print("after local search:")
    print("  ", polished.describe())

    # Lower bound for context (aggregate capacity, Theorem 1 argument)
    bound = app.total_work / platform.total_speed
    print(f"\naggregate-capacity lower bound on the period: {bound:.3f}")
    print(f"achieved/bound ratio: {polished.period / bound:.3f}")

    # Validate dynamically: stream 500 frames at the claimed period
    result = simulate(polished.mapping, num_data_sets=500)
    print("\nsimulation (500 frames at the analytic input rate):")
    print(f"  measured period : {result.measured_period:.3f} "
          f"(analytic {polished.period:.3f})")
    print(f"  max latency     : {result.max_latency:.3f} "
          f"(analytic {polished.latency:.3f})")
    print(f"  order inversions before reorder buffers: "
          f"{result.order_inversions}")


if __name__ == "__main__":
    main()
