"""HTTP client for the solver service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the service API (:mod:`repro.service.server`)
with per-request timeouts and jittered, deadline-capped retries on
*transport* failures (connection refused/reset, timeouts, 502/503).
Application-level responses are never retried: a 404 on a cache probe is
a miss, a 400 is a caller error, and a solve that returns an error *row*
is data — the service already ran it once, retrying cannot change a
deterministic verdict.

The client is stateless between calls (one ``urllib`` request each), so
a single instance can be shared across threads.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

from ..core.exceptions import ReproError
from ..obs.tracing import TRACE_HEADER

__all__ = ["ServiceError", "ServiceUnavailableError", "ServiceClient"]

#: HTTP statuses treated as transient and retried with backoff.
_RETRY_STATUSES = (502, 503, 504)


class ServiceError(ReproError):
    """The service answered, but with an application-level error."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceUnavailableError(ServiceError):
    """No usable answer after every retry (transport-level failure)."""


class ServiceClient:
    """Typed access to a running solver service.

    ``retries`` counts *additional* attempts after the first.  Waits
    between attempts use *decorrelated jitter*: each wait is drawn
    uniformly from ``[backoff, 3 * previous_wait]`` (capped at
    ``backoff_cap``), so a fleet of campaign workers that all hit a
    restarting server fans back in spread out instead of in lockstep.
    ``retry_deadline`` caps the *total* time spent retrying one request:
    when the next wait would cross it, the client gives up — returning
    the last retryable HTTP answer if the server ever answered, raising
    :class:`ServiceUnavailableError` otherwise.

    Construction is offline (one ``urllib`` request per call, nothing
    persistent), so a single instance can be shared across threads:

    >>> client = ServiceClient("http://127.0.0.1:8300/", timeout=5.0)
    >>> client.url                      # trailing slash is normalized
    'http://127.0.0.1:8300'
    >>> client.retries, client.backoff
    (3, 0.2)

    Against a live ``python -m repro serve``: ``client.solve(request)``
    posts a content-addressed solve, ``client.cache_get(key)`` /
    ``client.cache_put(key, row)`` speak the cache wire protocol behind
    ``--cache-backend http``, and ``client.stats()`` / ``client.healthz()``
    report service state.
    """

    def __init__(self, url: str, timeout: float = 30.0, retries: int = 3,
                 backoff: float = 0.2, backoff_cap: float = 5.0,
                 retry_deadline: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.retry_deadline = retry_deadline
        # seams: tests pin the jitter draw and capture the sleeps
        self._rng = random.Random()
        self._sleep = time.sleep

    # -------------------------------------------------------------- http
    def _request(self, method: str, path: str,
                 doc: dict | None = None,
                 headers: dict | None = None) -> tuple[int, dict]:
        """One API call; returns ``(status, parsed-json-body)``.

        Transport failures and retryable statuses are retried with
        backoff; any other HTTP error status is returned to the caller
        (the typed methods below decide what it means).  ``headers``
        are merged over the defaults (e.g. the trace-id header).
        """
        data = None
        base_headers = {"Accept": "application/json"}
        if doc is not None:
            data = json.dumps(doc).encode("utf-8")
            base_headers["Content-Type"] = "application/json"
        if headers:
            base_headers.update(headers)
        headers = base_headers
        started = time.monotonic()
        sleep = self.backoff
        last_error: Exception | None = None
        last_http: tuple[int, dict] | None = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.url + path, data=data, method=method, headers=headers
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return response.status, self._parse(response.read())
            except urllib.error.HTTPError as exc:
                body = self._parse(exc.read())
                if exc.code in _RETRY_STATUSES and attempt < self.retries:
                    last_error = exc
                    last_http = (exc.code, body)
                else:
                    return exc.code, body
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                last_error = exc
                if attempt >= self.retries:
                    break
            # decorrelated jitter: next wait ~ U[backoff, 3 * previous]
            sleep = min(self.backoff_cap,
                        self._rng.uniform(self.backoff, sleep * 3.0))
            if time.monotonic() - started + sleep > self.retry_deadline:
                break
            self._sleep(sleep)
        if last_http is not None:
            return last_http
        raise ServiceUnavailableError(
            f"solver service at {self.url} unreachable after "
            f"{self.retries + 1} attempts: {last_error}"
        )

    @staticmethod
    def _parse(body: bytes) -> dict:
        try:
            doc = json.loads(body) if body else {}
        except ValueError:
            doc = {"error": body.decode("utf-8", "replace")}
        return doc if isinstance(doc, dict) else {"value": doc}

    def _expect_ok(self, method: str, path: str,
                   doc: dict | None = None,
                   headers: dict | None = None) -> dict:
        status, body = self._request(method, path, doc, headers=headers)
        if status != 200:
            raise ServiceError(
                f"{method} {path} failed with HTTP {status}: "
                f"{body.get('error', body)}",
                status=status,
            )
        return body

    # -------------------------------------------------------------- api
    def healthz(self) -> dict:
        """The service health document (raises unless HTTP 200)."""
        return self._expect_ok("GET", "/v1/healthz")

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.05, log=None) -> dict:
        """Poll ``/v1/healthz`` until the service answers (or timeout).

        ``log`` is an optional ``callable(message)`` (e.g. a logger
        method or ``print``) told about each failed attempt and the
        final success, with attempt counts and elapsed seconds — so a
        slow service start is visible instead of a silent stall.
        """
        started = time.monotonic()
        deadline = started + timeout
        attempts = 0
        while True:
            attempts += 1
            try:
                health = self.healthz()
                if log is not None and attempts > 1:
                    log(f"solver service at {self.url} ready after "
                        f"{attempts} attempts "
                        f"({time.monotonic() - started:.2f}s)")
                return health
            except ServiceError as exc:
                elapsed = time.monotonic() - started
                if log is not None:
                    log(f"solver service at {self.url} not ready "
                        f"(attempt {attempts}, {elapsed:.2f}s): {exc}")
                if time.monotonic() >= deadline:
                    raise ServiceUnavailableError(
                        f"solver service at {self.url} not ready "
                        f"within {timeout}s ({attempts} attempts)"
                    ) from None
            time.sleep(interval)

    def solve(self, doc: dict, trace: str | None = None) -> dict:
        """POST a solve request document; returns the service response.

        The response carries ``key`` / ``row`` / ``cached`` /
        ``coalesced``; a ``row`` with ``status="error"`` is a valid
        answer (the solve failed deterministically), not an exception.
        ``trace`` is sent in the ``X-Repro-Trace`` header so the
        server's spans for this request share the caller's trace id.
        """
        headers = {TRACE_HEADER: trace} if trace else None
        return self._expect_ok("POST", "/v1/solve", doc, headers=headers)

    def cache_get(self, key: str) -> dict | None:
        """The cached row for ``key``, or ``None`` (404 is a miss)."""
        status, body = self._request("GET", f"/v1/cache/{key}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(
                f"cache get for {key} failed with HTTP {status}: "
                f"{body.get('error', body)}",
                status=status,
            )
        return body.get("row")

    def cache_put(self, key: str, row: dict) -> None:
        self._expect_ok("PUT", f"/v1/cache/{key}", row)

    def keys(self) -> list[str]:
        return list(self._expect_ok("GET", "/v1/keys").get("keys", ()))

    def stats(self) -> dict:
        return self._expect_ok("GET", "/v1/stats")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``.

        One un-retried request — a scrape is periodic by nature, so a
        failed one is simply the next scrape's problem.  Returns text,
        not JSON (use :meth:`stats` for a structured view).
        """
        request = urllib.request.Request(
            self.url + "/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"GET /metrics failed with HTTP {exc.code}",
                status=exc.code,
            ) from exc
        except (urllib.error.URLError, ConnectionError, TimeoutError,
                OSError) as exc:
            raise ServiceUnavailableError(
                f"solver service at {self.url} unreachable: {exc}"
            ) from exc

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        doc: dict = {}
        if max_age_days is not None:
            doc["max_age_days"] = max_age_days
        if max_bytes is not None:
            doc["max_bytes"] = max_bytes
        return self._expect_ok("POST", "/v1/compact", doc)
