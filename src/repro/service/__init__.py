"""Solver service: a shared HTTP solve/cache front for the library.

* :mod:`repro.service.server` — stdlib threaded HTTP server exposing
  ``POST /v1/solve`` (content-addressed, single-flight deduplicated
  solves), ``GET/PUT /v1/cache/<key>``, ``GET /v1/keys``,
  ``GET /v1/stats``, ``GET /v1/healthz`` and ``POST /v1/compact`` over
  any local :class:`~repro.campaign.cache.CacheBackend`;
* :mod:`repro.service.client` — retrying, timeout-bounded
  :class:`ServiceClient` speaking that API.

Run a server with ``python -m repro serve --cache-dir DIR``; point a
whole campaign fleet at it with ``--cache-backend http --cache-url
http://host:port`` (the :class:`~repro.campaign.cache.HttpCacheBackend`
seam), or POST one-off solves with ``python -m repro submit``.

Quick start::

    from repro.campaign import ResultCache
    from repro.service import ServiceClient, make_server
    import threading

    server = make_server(port=0, cache=ResultCache(".repro-cache"))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.url)
    response = client.solve({"instance": {...}, "objective": "period"})
"""

from .client import ServiceClient, ServiceError, ServiceUnavailableError
from .server import (
    SERVICE_VERSION,
    SolverHTTPServer,
    SolveService,
    make_server,
    serve,
    task_from_doc,
)

__all__ = [
    "SERVICE_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "SolveService",
    "SolverHTTPServer",
    "make_server",
    "serve",
    "task_from_doc",
]
