"""Threaded HTTP solve/cache server with single-flight deduplication.

The solver service turns the in-process library into a shared network
resource: many clients (or a whole fleet of campaign runners pointed at
it through ``--cache-backend http``) see one warm, content-addressed
cache and one solver pool.  Stdlib only — ``http.server`` threads for
transport, a ``ThreadPoolExecutor`` for the solves.

API (all JSON)
--------------
``POST /v1/solve``
    Body: ``{"instance": {...}, "objective": "period" | "latency",
    "period_bound": K | null, "latency_bound": K | null,
    "solver": {...SolverConfig fields...}}``.  The request is keyed
    exactly like a campaign :class:`~repro.campaign.spec.Task` (same
    normalized-instance + canonical-solver content hash), so service
    solves and campaign rows share cache entries.  Response:
    ``{"key", "row", "cached", "coalesced"}`` — a ``row`` with
    ``status="error"`` is a deterministic solver verdict, not a
    transport failure.
``GET /v1/cache/<key>`` / ``PUT /v1/cache/<key>``
    Raw cache access (404 = miss); this is the wire protocol behind
    :class:`repro.campaign.cache.HttpCacheBackend`.
``GET /v1/keys`` · ``GET /v1/stats`` · ``GET /v1/healthz`` ·
``POST /v1/compact``
    Key listing, service/cache statistics, liveness, and remote
    ``compact`` with the age/size eviction policy.

Single-flight coalescing
------------------------
N concurrent identical solve requests run the solver **once**: the first
request submits the solve to the worker pool and registers the future
under the task key; followers find the in-flight future and wait on it.
Everyone gets the same payload (copies — cache rows never alias), and
the ``coalesced`` counter records the requests that piggybacked.  The
flight is deregistered only after the result is cached, so a request
arriving later is a plain cache hit.

All cache access goes through one lock (the backends themselves are not
thread-safe); solves run outside the lock.

Observability
-------------
``GET /metrics`` serves the Prometheus text exposition of the service's
:class:`~repro.obs.metrics.MetricsRegistry`.  The service keeps its
authoritative request/solve/coalesce/error counts as plain ints under
its one lock (they are what ``/v1/stats`` reports); a scrape copies them
into the registry from a single-lock snapshot, so ``/metrics`` and
``/v1/stats`` can never disagree about the same instant.  Latency
histograms (``repro_solve_seconds``, ``repro_request_seconds``) and the
per-endpoint HTTP counter are observed live at event time — histograms
cannot be reconstructed at scrape time.  With ``trace_log`` set, every
``/v1/solve`` request emits request / cache-get / coalesce-wait / solve
/ cache-put spans stamped with the client's ``X-Repro-Trace`` id (or a
fresh one).
"""

from __future__ import annotations

import copy
import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.exceptions import ReproError
from ..campaign.cache import ResultCache
from ..campaign.runner import solve_task
from ..campaign.spec import SolverConfig, Task
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, TRACE_HEADER, Tracer, new_trace_id

__all__ = [
    "SERVICE_VERSION",
    "task_from_doc",
    "SolveService",
    "SolverHTTPServer",
    "make_server",
    "serve",
]

#: Version of the service wire API (reported by ``/v1/healthz``).
SERVICE_VERSION = 1

_REQUEST_FIELDS = {"instance", "instance_id", "objective",
                   "period_bound", "latency_bound", "solver"}


def task_from_doc(doc: dict) -> Task:
    """Validate a solve-request document into a campaign :class:`Task`.

    The task is keyed identically to campaign tasks (normalized instance
    + objective + bounds + canonical solver config), so the service and
    any campaign share cache rows for the same work.  Unknown fields and
    malformed values fail loudly — a typo must never silently solve (and
    cache) something other than what the caller meant.
    """
    if not isinstance(doc, dict):
        raise ReproError("solve request must be a JSON object")
    unknown = set(doc) - _REQUEST_FIELDS
    if unknown:
        raise ReproError(
            f"unknown solve request fields {sorted(unknown)} "
            f"(known: {sorted(_REQUEST_FIELDS)})"
        )
    instance = doc.get("instance")
    if not isinstance(instance, dict) or instance.get("kind") != "instance":
        raise ReproError(
            "solve request needs an 'instance' document "
            '({"kind": "instance", ...})'
        )
    objective = doc.get("objective", "period")
    if objective not in ("period", "latency"):
        raise ReproError(
            f"objective must be 'period' or 'latency', got {objective!r}"
        )
    for bound in ("period_bound", "latency_bound"):
        value = doc.get(bound)
        if value is not None and not isinstance(value, (int, float)):
            raise ReproError(f"{bound} must be a number or null")
    solver_doc = dict(doc.get("solver") or {})
    solver_doc.setdefault("name", "service")
    solver = SolverConfig.from_dict(solver_doc)
    return Task(
        index=0,
        instance_id=str(doc.get("instance_id", "service")),
        instance=instance,
        objective=objective,
        period_bound=doc.get("period_bound"),
        latency_bound=doc.get("latency_bound"),
        solver=solver.to_dict(),
    )


class SolveService:
    """The service core: cache + worker pool + single-flight registry.

    Thread-safe; transport-agnostic (the HTTP handler below is one
    front, tests and benchmarks may call it directly).
    """

    def __init__(self, cache: ResultCache, solve_workers: int = 4,
                 registry: MetricsRegistry | None = None,
                 tracer=None) -> None:
        self.cache = cache
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, solve_workers), thread_name_prefix="solve"
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._counters = {
            "requests": 0,
            "solves": 0,
            "coalesced": 0,
            "served_from_cache": 0,
            "errors": 0,
        }
        #: labeled solve counts by ``(engine, status)``, under ``_lock``
        self._solve_counts: dict[tuple[str, str], int] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        reg = self.registry
        self._m_requests = reg.counter(
            "repro_solve_requests_total", "Solve requests received.")
        self._m_solves = reg.counter(
            "repro_solves_total", "Solves executed, by engine and status.",
            ("engine", "status"))
        self._m_coalesced = reg.counter(
            "repro_coalesced_total",
            "Requests that piggybacked on an in-flight identical solve.")
        self._m_cache_served = reg.counter(
            "repro_cache_served_total",
            "Solve requests answered straight from the result cache.")
        self._m_errors = reg.counter(
            "repro_solve_errors_total",
            "Solves that produced an error row (deterministic verdicts).")
        self._m_cache_ops = reg.counter(
            "repro_cache_ops_total",
            "Result-cache operations, by op and outcome.", ("op", "result"))
        self._m_inflight = reg.gauge(
            "repro_inflight_solves", "Solve flights currently running.")
        self._m_breaker = reg.gauge(
            "repro_cache_breaker_state",
            "Remote-cache circuit breaker: 0 closed, 1 half-open, 2 open.",
        ) if cache.breaker_state is not None else None
        self._h_solve = reg.histogram(
            "repro_solve_seconds", "Solve wall time, by engine and status.",
            ("engine", "status"))
        self._h_request = reg.histogram(
            "repro_request_seconds", "HTTP request wall time, by endpoint.",
            ("endpoint",))
        self._m_http = reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint and status code.",
            ("endpoint", "code"))

    # -------------------------------------------------------------- solve
    def solve(self, doc: dict, trace: str | None = None) -> dict:
        """Resolve one solve request: cache hit, new flight, or piggyback.

        ``trace`` stamps this request's spans (cache-get, coalesce-wait,
        and — for the request that starts the flight — solve/cache-put).
        """
        task = task_from_doc(doc)
        key = task.key
        tracer = self.tracer
        with self._lock:
            self._counters["requests"] += 1
            t0 = time.perf_counter() if tracer.active else 0.0
            row = self.cache.get(key)
            if tracer.active:
                tracer.emit("cache-get", time.perf_counter() - t0,
                            trace=trace, key=key, hit=row is not None)
            if row is not None:
                self._counters["served_from_cache"] += 1
                return {"key": key, "row": row,
                        "cached": True, "coalesced": False}
            future = self._inflight.get(key)
            coalesced = future is not None
            if coalesced:
                self._counters["coalesced"] += 1
            else:
                future = self._pool.submit(
                    self._solve_and_store, key, task, trace
                )
                self._inflight[key] = future
        if coalesced and tracer.active:
            with tracer.span("coalesce-wait", trace=trace, key=key):
                payload = future.result()
        else:
            payload = future.result()
        return {"key": key, "row": copy.deepcopy(payload),
                "cached": False, "coalesced": coalesced}

    def _solve_and_store(self, key: str, task: Task,
                         trace: str | None = None) -> dict:
        """Worker-pool body of a flight: solve, cache, deregister."""
        try:
            tracer = self.tracer
            payload, seconds = solve_task(task)
            cacheable = payload.pop("_cacheable", True)
            timing = payload.get("timing") or {}
            engine = timing.get("engine") or "unknown"
            status = timing.get("status") or "completed"
            # histograms are observed live (outside the service lock —
            # the family has its own); counters sync at scrape time
            self._h_solve.labels(engine=engine, status=status) \
                .observe(seconds)
            if tracer.active:
                tracer.emit("solve", seconds, trace=trace, key=key,
                            engine=engine, status=status)
            with self._lock:
                self._counters["solves"] += 1
                pair = (engine, status)
                self._solve_counts[pair] = self._solve_counts.get(pair, 0) + 1
                if payload.get("status") == "error":
                    self._counters["errors"] += 1
                if cacheable:
                    t0 = time.perf_counter() if tracer.active else 0.0
                    self.cache.put(key, payload)
                    if tracer.active:
                        tracer.emit("cache-put",
                                    time.perf_counter() - t0,
                                    trace=trace, key=key)
            return payload
        finally:
            # deregistered after the put: a request landing between the
            # put and this pop sees either the flight or a cache hit,
            # never a gap that would re-run the solver
            with self._lock:
                self._inflight.pop(key, None)

    # -------------------------------------------------------------- cache
    def cache_get(self, key: str) -> dict | None:
        with self._lock:
            return self.cache.get(key)

    def cache_put(self, key: str, row: dict) -> None:
        with self._lock:
            self.cache.put(key, row)

    def keys(self) -> list[str]:
        with self._lock:
            return self.cache.keys()

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        with self._lock:
            return self.cache.compact(max_age_days=max_age_days,
                                      max_bytes=max_bytes)

    # ------------------------------------------------------ observability
    def _snapshot_locked(self) -> dict:
        """One consistent snapshot of every counter (caller holds ``_lock``).

        Both ``/v1/stats`` and ``/metrics`` are rendered from this, so
        the two endpoints can never disagree about the same instant.
        """
        return {
            "service": {**self._counters, "inflight": len(self._inflight)},
            "cache_counters": dict(self.cache.stats),
            "solve_counts": dict(self._solve_counts),
            "breaker": self.cache.breaker_state,
        }

    def stats(self) -> dict:
        with self._lock:
            snap = self._snapshot_locked()
            storage = self.cache.storage_stats()
        return {
            "service": snap["service"],
            "cache": {"counters": snap["cache_counters"],
                      "storage": storage},
        }

    def metrics_text(self) -> str:
        """The ``/metrics`` body: sync counters from a snapshot, render.

        Unlike :meth:`stats` this never calls ``storage_stats`` — a
        scrape must not hit the network when the cache backend is remote.
        """
        with self._lock:
            snap = self._snapshot_locked()
        svc = snap["service"]
        self._m_requests.set_to(svc["requests"])
        self._m_coalesced.set_to(svc["coalesced"])
        self._m_cache_served.set_to(svc["served_from_cache"])
        self._m_errors.set_to(svc["errors"])
        self._m_inflight.set(svc["inflight"])
        for (engine, status), count in snap["solve_counts"].items():
            self._m_solves.labels(engine=engine, status=status) \
                .set_to(count)
        cache_counts = snap["cache_counters"]
        ops = self._m_cache_ops
        ops.labels(op="get", result="hit").set_to(cache_counts["hits"])
        ops.labels(op="get", result="miss").set_to(cache_counts["misses"])
        ops.labels(op="put", result="ok").set_to(cache_counts["puts"])
        if self._m_breaker is not None and snap["breaker"] is not None:
            self._m_breaker.set(
                {"closed": 0, "half-open": 1, "open": 2}[snap["breaker"]]
            )
        return self.registry.render()

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self.tracer.close()
        with self._lock:
            self.cache.close()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-solver/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SolveService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------ helpers
    def _send(self, status: int, doc: dict) -> None:
        self._send_bytes(status, json.dumps(doc).encode("utf-8"),
                         "application/json")

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        if not body:
            return {}
        doc = json.loads(body)
        if not isinstance(doc, dict):
            raise ReproError("request body must be a JSON object")
        return doc

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except (ValueError, ReproError) as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — a request must never
            # kill the server; the client sees a 500 it can report
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _path(self) -> str:
        return self.path.split("?", 1)[0]

    _ENDPOINTS = ("/metrics", "/v1/healthz", "/v1/stats", "/v1/keys",
                  "/v1/solve", "/v1/compact")

    def _endpoint(self) -> str:
        """The metrics label for this request's path (bounded cardinality:
        cache keys collapse to ``/v1/cache``, unknown paths to ``other``)."""
        path = self._path()
        if path.startswith("/v1/cache/"):
            return "/v1/cache"
        return path if path in self._ENDPOINTS else "other"

    def _timed(self, body) -> None:
        """Run one request body, observing latency + endpoint/code counts."""
        service = self.service
        endpoint = self._endpoint()
        self._last_status = 0
        t0 = time.perf_counter()
        try:
            body()
        finally:
            service._h_request.labels(endpoint=endpoint) \
                .observe(time.perf_counter() - t0)
            service._m_http.labels(
                endpoint=endpoint, code=self._last_status
            ).inc()

    # ------------------------------------------------------------ methods
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._timed(self._do_get)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        self._timed(self._do_post)

    def do_PUT(self) -> None:  # noqa: N802 — stdlib naming
        self._timed(self._do_put)

    def _do_get(self) -> None:
        path = self._path()
        if path == "/metrics":
            self._dispatch(lambda: self._send_text(
                200, self.service.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            ))
        elif path == "/v1/healthz":
            self._send(200, {"status": "ok", "service": "repro-solver",
                             "version": SERVICE_VERSION})
        elif path == "/v1/stats":
            self._dispatch(lambda: self._send(200, self.service.stats()))
        elif path == "/v1/keys":
            self._dispatch(
                lambda: self._send(200, {"keys": self.service.keys()})
            )
        elif path.startswith("/v1/cache/"):
            key = path[len("/v1/cache/"):]

            def _get():
                row = self.service.cache_get(key)
                if row is None:
                    self._send(404, {"error": f"no cached row for {key!r}"})
                else:
                    self._send(200, {"key": key, "row": row})

            self._dispatch(_get)
        else:
            self._send(404, {"error": f"unknown path {path!r}"})

    def _do_post(self) -> None:
        path = self._path()
        if path == "/v1/solve":

            def _solve():
                doc = self._read_json()
                tracer = self.service.tracer
                trace = self.headers.get(TRACE_HEADER)
                if tracer.active:
                    if not trace:
                        trace = new_trace_id()
                    with tracer.span("request", trace=trace,
                                     endpoint="/v1/solve"):
                        result = self.service.solve(doc, trace=trace)
                else:
                    result = self.service.solve(doc, trace=trace)
                self._send(200, result)

            self._dispatch(_solve)
        elif path == "/v1/compact":

            def _compact():
                doc = self._read_json()
                self._send(200, self.service.compact(
                    max_age_days=doc.get("max_age_days"),
                    max_bytes=doc.get("max_bytes"),
                ))

            self._dispatch(_compact)
        else:
            self._send(404, {"error": f"unknown path {path!r}"})

    def _do_put(self) -> None:
        path = self._path()
        if path.startswith("/v1/cache/"):
            key = path[len("/v1/cache/"):]

            def _put():
                row = self._read_json()
                if not row:
                    # an empty body would be stored as a live {} row and
                    # served to the whole fleet as a (bogus) hit
                    raise ReproError(
                        "cache put needs a non-empty JSON object row"
                    )
                self.service.cache_put(key, row)
                self._send(200, {"key": key, "stored": True})

            self._dispatch(_put)
        else:
            self._send(404, {"error": f"unknown path {path!r}"})


class SolverHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`SolveService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SolveService,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache: ResultCache | None = None,
    cache_dir: str | None = None,
    cache_backend: str = "jsonl",
    solve_workers: int = 4,
    verbose: bool = False,
    cache_url: str | None = None,
    cache_fallback_dir: str | None = None,
    registry: MetricsRegistry | None = None,
    trace_log: str | None = None,
) -> SolverHTTPServer:
    """Build a ready-to-run server (``port=0`` picks an ephemeral port).

    Pass an open ``cache``, or ``cache_dir``/``cache_backend`` to have
    one opened.  ``cache_backend="http"`` with ``cache_url`` makes this
    server a solving tier in front of an upstream cache service;
    ``cache_fallback_dir`` then wraps the upstream in a
    :class:`~repro.campaign.cache.CircuitBreakerBackend` whose spill
    journal lives there — breaker state shows up under ``/v1/stats``
    storage stats.  The server owns the service; run it with
    ``serve_forever()`` (tests/benchmarks typically do so in a daemon
    thread and read ``server.url``).

    ``registry`` shares a :class:`~repro.obs.metrics.MetricsRegistry`
    (one is created otherwise); ``trace_log`` appends per-request spans
    to a JSON-lines file (closed with the service).
    """
    if cache is None:
        if cache_backend == "http":
            if cache_url is None:
                raise ReproError(
                    "cache_backend='http' needs cache_url "
                    "(the upstream cache-service address)"
                )
            cache = ResultCache(url=cache_url, backend="http",
                                fallback_dir=cache_fallback_dir)
        else:
            if cache_dir is None:
                raise ReproError("make_server needs a cache or a cache_dir")
            cache = ResultCache(cache_dir, backend=cache_backend,
                                fallback_dir=cache_fallback_dir)
    tracer = Tracer(trace_log) if trace_log else None
    service = SolveService(cache, solve_workers=solve_workers,
                           registry=registry, tracer=tracer)
    return SolverHTTPServer((host, port), service, verbose=verbose)


def serve(host: str, port: int, cache_dir: str | None = None,
          cache_backend: str = "jsonl",
          solve_workers: int = 4, verbose: bool = False, out=None,
          cache_url: str | None = None,
          cache_fallback_dir: str | None = None,
          trace_log: str | None = None) -> int:
    """Blocking CLI entry point: announce the URL, serve until SIGINT."""
    server = make_server(host=host, port=port, cache_dir=cache_dir,
                         cache_backend=cache_backend,
                         solve_workers=solve_workers, verbose=verbose,
                         cache_url=cache_url,
                         cache_fallback_dir=cache_fallback_dir,
                         trace_log=trace_log)
    where = cache_url if cache_backend == "http" else cache_dir
    # flush=True: launcher scripts block on this line to learn the URL
    print(f"solver service listening on {server.url} "
          f"[{cache_backend} cache at {where}, "
          f"{solve_workers} solve workers]", file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
    return 0
