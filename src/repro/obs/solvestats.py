"""Per-solve timing and search-effort statistics.

A :class:`SolveStats` captures *how* one solve went — wall seconds,
engine, search nodes, prune count, memo hits, budget status — plus the
instance shape ``(graph, n, p)`` so aggregations can group by it without
re-parsing the instance.  :meth:`SolveStats.to_dict` is the ``timing``
block of every campaign row and ``/v1/solve`` response; the block is a
:data:`~repro.campaign.runner.VOLATILE_FIELDS` member, so cache keys and
the serial==parallel bit-identity guarantee are untouched.

The engines pay nothing for this: every field is read *after* the solve
from counters the search already maintained (``nodes`` / ``pruned`` /
``memo_hits`` on the branch-and-bound :class:`~repro.algorithms.bnb._Search`,
the candidate count of the enumerator) — there is no callback or metric
call inside a hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SolveStats"]

#: Solution meta statuses mapped to the execution-report vocabulary.
_STATUS_MAP = {"optimal": "completed", None: "completed"}


@dataclass(frozen=True)
class SolveStats:
    """One solve's timing/effort record (all effort fields optional).

    ``status`` uses the execution-report vocabulary: ``"completed"``,
    ``"budget_exhausted"`` or ``"error"``.  ``engine`` is the solving
    algorithm's name (``"bnb"``, ``"brute-force"``, a polynomial
    theorem's label, ...), not the requested engine knob.
    """

    seconds: float
    engine: str | None = None
    status: str = "completed"
    objective: str | None = None
    nodes: int | None = None
    pruned: int | None = None
    memo_hits: int | None = None
    budget_reason: str | None = None
    graph: str | None = None
    n: int | None = None
    p: int | None = None

    def to_dict(self) -> dict:
        """The ``timing`` block: fixed keys, JSON-ready."""
        return {
            "seconds": self.seconds,
            "engine": self.engine,
            "status": self.status,
            "objective": self.objective,
            "nodes": self.nodes,
            "pruned": self.pruned,
            "memo_hits": self.memo_hits,
            "budget_reason": self.budget_reason,
            "graph": self.graph,
            "n": self.n,
            "p": self.p,
        }

    @classmethod
    def from_solution(cls, solution, spec=None, seconds: float = 0.0,
                      objective: str | None = None) -> "SolveStats":
        """Stats of a finished solve (``solution.meta`` + instance shape)."""
        meta = getattr(solution, "meta", None) or {}
        status = meta.get("status")
        return cls(
            seconds=seconds,
            engine=meta.get("algorithm"),
            status=_STATUS_MAP.get(status, status),
            objective=objective,
            nodes=meta.get("nodes"),
            pruned=meta.get("pruned"),
            memo_hits=meta.get("memo_hits"),
            budget_reason=meta.get("budget_reason"),
            graph=spec.graph_kind.value if spec is not None else None,
            n=spec.application.n if spec is not None else None,
            p=spec.platform.p if spec is not None else None,
        )
