"""Observability: metrics, per-solve stats, and span tracing.

Dependency-free instrumentation threaded through every layer:

* :mod:`repro.obs.metrics` — a thread-safe metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with labeled
  series) rendered in the Prometheus text exposition format; the solver
  service serves it at ``GET /metrics``;
* :mod:`repro.obs.solvestats` — :class:`SolveStats`, the per-solve
  timing/effort record (wall seconds, nodes, prunes, memo hits, budget
  status) that lands in the volatile ``timing`` block of every campaign
  row and ``/v1/solve`` response;
* :mod:`repro.obs.tracing` — :class:`Tracer`, a JSON-lines span writer
  behind ``--trace-log`` on ``serve`` and ``campaign run``, with trace
  ids propagated client → server via the ``X-Repro-Trace`` header.

Everything is zero-cost when unused: the engines only bump plain
integer counters they already maintain, the runner gates span emission
on ``tracer.active``, and :data:`~repro.obs.metrics.NULL_REGISTRY` /
:data:`~repro.obs.tracing.NULL_TRACER` absorb instrumentation calls as
no-ops.  See ``docs/OBSERVABILITY.md``.
"""

from .metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .solvestats import SolveStats
from .tracing import NULL_TRACER, TRACE_HEADER, Tracer, new_trace_id, read_spans

__all__ = [
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "TRACE_HEADER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SolveStats",
    "Tracer",
    "new_trace_id",
    "read_spans",
]
