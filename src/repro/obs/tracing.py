"""Span-based tracing: structured JSON lines behind ``--trace-log``.

A :class:`Tracer` appends one JSON object per finished span to a file.
Span schema (one line each, ``separators=(",", ":")``)::

    {"ts": 1754650000.123456,   # wall-clock start (unix seconds)
     "span": "solve",           # span name
     "seconds": 0.0042,         # measured duration
     "trace": "9f2ab4c1d0e3f587",  # trace id shared by one request/run
     "ok": true,                # false when the span body raised
     ...}                       # free-form fields (key, engine, hit, ...)

Trace ids tie the spans of one logical operation together across
processes: the service client sends its id in the
:data:`TRACE_HEADER` (``X-Repro-Trace``) HTTP header and the server's
request / cache-get / coalesce-wait / solve / cache-put spans all carry
it, so one grep over the server's trace log reconstructs a request's
timeline.  The campaign runner stamps every span of a run with one id.

Tracers are thread-safe (one lock around the write) and cheap when
disabled: :data:`NULL_TRACER` absorbs ``emit`` calls and hands out
no-op spans, and instrumented code gates extra clock reads on
``tracer.active``.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path

__all__ = ["TRACE_HEADER", "NULL_TRACER", "Tracer", "new_trace_id",
           "read_spans"]

#: HTTP header propagating a trace id from client to server.
TRACE_HEADER = "X-Repro-Trace"


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


class Tracer:
    """JSON-lines span writer (append mode, flushed per span)."""

    active = True

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, span: str, seconds: float, trace: str | None = None,
             ts: float | None = None, **fields) -> None:
        """Record one finished span of ``seconds`` duration.

        ``ts`` is the span's wall-clock start (defaults to now minus the
        duration); ``fields`` with ``None`` values are dropped so the
        lines stay grep-friendly.
        """
        doc = {
            "ts": round(time.time() - seconds if ts is None else ts, 6),
            "span": span,
            "seconds": round(seconds, 6),
        }
        if trace is not None:
            doc["trace"] = trace
        doc.update(
            (k, v) for k, v in fields.items() if v is not None
        )
        line = json.dumps(doc, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    @contextmanager
    def span(self, name: str, trace: str | None = None, **fields):
        """Measure a block; yields a dict for fields known only inside.

        >>> import tempfile, os
        >>> path = tempfile.mktemp()
        >>> with Tracer(path) as tracer:
        ...     with tracer.span("work", trace="abc123") as sp:
        ...         sp["items"] = 3
        >>> [(s["span"], s["trace"], s["items"]) for s in read_spans(path)]
        [('work', 'abc123', 3)]
        >>> os.unlink(path)
        """
        ts = time.time()
        t0 = time.perf_counter()
        extra = dict(fields)
        ok = True
        try:
            yield extra
        except BaseException:
            ok = False
            raise
        finally:
            self.emit(name, time.perf_counter() - t0, trace=trace, ts=ts,
                      ok=ok, **extra)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullTracer:
    """Absorbs spans when tracing is off (``tracer.active`` gates cost)."""

    active = False

    def emit(self, span, seconds, trace=None, ts=None, **fields) -> None:
        pass

    @contextmanager
    def span(self, name, trace=None, **fields):
        yield {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: Shared no-op tracer (tracing disabled).
NULL_TRACER = _NullTracer()


def read_spans(path: str | Path) -> list[dict]:
    """Parse a trace log back into span dicts (tests, CI smoke checks)."""
    out = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                out.append(json.loads(line))
    return out
