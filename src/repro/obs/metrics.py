"""Prometheus-style metrics primitives (stdlib only).

A :class:`MetricsRegistry` holds named metric families —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` — each optionally
labeled; :meth:`MetricsRegistry.render` produces the Prometheus text
exposition format (``text/plain; version=0.0.4``) the solver service
serves at ``GET /metrics``.

Design points:

* **thread-safe** — every family guards its children and values with
  one lock; rendering snapshots under the same lock, so a scrape never
  sees a half-updated histogram;
* **labeled series** — ``family.labels(engine="bnb", status="ok")``
  returns (and memoizes) the child for that label combination; a family
  declared without label names is its own single child;
* **fixed log-scale latency buckets** — :data:`LATENCY_BUCKETS` spans
  0.5 ms to 60 s in a 1-2.5-5 progression, wide enough for both
  sub-millisecond cache hits and minute-scale exact solves;
* **zero-cost when unused** — :data:`NULL_REGISTRY` hands out no-op
  metrics, so instrumented call sites need no ``if metrics:`` guards;
* **registration is idempotent** — asking for an existing name with the
  same type and label names returns the existing family (so independent
  components can share a registry); a conflicting redeclaration raises.

>>> registry = MetricsRegistry()
>>> c = registry.counter("jobs_total", "Jobs processed.", ("status",))
>>> c.labels(status="ok").inc()
>>> print(registry.render(), end="")
# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total{status="ok"} 1
"""

from __future__ import annotations

import re
import threading

from ..core.exceptions import ReproError

__all__ = [
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Fixed log-scale histogram buckets (seconds): 1-2.5-5 per decade from
#: 0.5 ms to 60 s.  The implicit ``+Inf`` bucket is always appended.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """A Prometheus sample value: integral floats render without a dot."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _render_labels(labelnames: tuple, labelvalues: tuple,
                   extra: tuple = ()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


# ----------------------------------------------------------------------
# metric families
# ----------------------------------------------------------------------
class _Family:
    """Base: a named metric with zero or more labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str,  # noqa: A002 — prom term
                 labelnames: tuple = ()) -> None:
        if not _NAME_RE.match(name):
            raise ReproError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ReproError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}
        if not self.labelnames:
            # an unlabeled family is its own single child
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child bound to these label values (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ReproError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _samples(self) -> list[tuple[str, str, float]]:
        """``(suffix, label-string, value)`` triples, snapshotted."""
        raise NotImplementedError

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            for suffix, labelstr, value in self._samples():
                lines.append(
                    f"{self.name}{suffix}{labelstr} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError("counters can only increase")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Mirror an external authoritative count (scrape-time sync).

        The solver service keeps its counters under its own lock and
        copies them into the registry per scrape, so ``/metrics`` and
        ``/v1/stats`` report one mutually-consistent snapshot.
        """
        self.value = float(value)


class Counter(_Family):
    """Monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._children[()].inc(amount)

    def set_to(self, value: float) -> None:
        with self._lock:
            self._children[()].set_to(value)

    def value(self, **labelvalues) -> float:
        child = self.labels(**labelvalues) if labelvalues \
            else self._children[()]
        return child.value

    def _samples(self):
        return [
            ("", _render_labels(self.labelnames, key), child.value)
            for key, child in sorted(self._children.items())
        ]


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Family):
    """A value that can go up and down (pool sizes, breaker state)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        with self._lock:
            self._children[()].set(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._children[()].inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._children[()].dec(amount)

    def value(self, **labelvalues) -> float:
        child = self.labels(**labelvalues) if labelvalues \
            else self._children[()]
        return child.value

    def _samples(self):
        return [
            ("", _render_labels(self.labelnames, key), child.value)
            for key, child in sorted(self._children.items())
        ]


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        # counts are per-bucket; rendering accumulates them into the
        # cumulative le= form the exposition format requires
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break


class Histogram(_Family):
    """Distribution with fixed upper-bound buckets (cumulative render)."""

    kind = "histogram"

    def __init__(self, name: str, help: str,  # noqa: A002 — prom term
                 labelnames: tuple = (),
                 buckets: tuple = LATENCY_BUCKETS) -> None:
        buckets = tuple(float(b) for b in buckets)
        if not buckets or any(
            b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])
        ):
            raise ReproError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {buckets}"
            )
        self.buckets = buckets
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        with self._lock:
            self._children[()].observe(value)

    def child(self, **labelvalues) -> _HistogramChild:
        return self.labels(**labelvalues) if labelvalues \
            else self._children[()]

    def _samples(self):
        samples = []
        for key, child in sorted(self._children.items()):
            cumulative = 0
            for bound, count in zip(self.buckets, child.counts):
                cumulative += count
                samples.append((
                    "_bucket",
                    _render_labels(self.labelnames, key,
                                   extra=(("le", _format_value(bound)),)),
                    float(cumulative),
                ))
            samples.append((
                "_bucket",
                _render_labels(self.labelnames, key, extra=(("le", "+Inf"),)),
                float(child.count),
            ))
            labelstr = _render_labels(self.labelnames, key)
            samples.append(("_sum", labelstr, child.sum))
            samples.append(("_count", labelstr, float(child.count)))
        return samples


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named collection of metric families with text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, cls, name, help, labelnames,  # noqa: A002
                  **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)):
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__} with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            family = cls(name, help, tuple(labelnames), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str,  # noqa: A002 — prom term
                labelnames: tuple = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str,  # noqa: A002 — prom term
              labelnames: tuple = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str,  # noqa: A002 — prom term
                  labelnames: tuple = (),
                  buckets: tuple = LATENCY_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            families = [self._families[n] for n in sorted(self._families)]
        return "".join(family.render() for family in families)


# ----------------------------------------------------------------------
# null objects: instrumentation that compiles to nothing
# ----------------------------------------------------------------------
class _NullMetric:
    """Absorbs every metric operation; ``labels()`` returns itself."""

    def labels(self, **labelvalues):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_to(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullRegistry:
    """Hands out no-op metrics so call sites need no ``if`` guards."""

    def counter(self, name, help, labelnames=()):  # noqa: A002
        return _NULL_METRIC

    def gauge(self, name, help, labelnames=()):  # noqa: A002
        return _NULL_METRIC

    def histogram(self, name, help, labelnames=(),  # noqa: A002
                  buckets=LATENCY_BUCKETS):
        return _NULL_METRIC

    def render(self) -> str:
        return ""


_NULL_METRIC = _NullMetric()

#: Shared no-op registry (zero-cost instrumentation when metrics are off).
NULL_REGISTRY = _NullRegistry()
