"""Composite workflows: chains of pipeline / fork / fork-join kernels.

The paper's conclusion proposes building "heuristics based on some of our
polynomial algorithms to solve more complex instances of the problem, with
general application graphs structured as combinations of pipeline and fork
kernels".  This subpackage implements exactly that:

* :class:`~repro.composite.workflow.CompositeWorkflow` — an ordered chain
  of kernels traversed by every data set (kernel *k*'s output feeds kernel
  *k+1*), priced like a macro-pipeline: the composite period is the max
  kernel period, the composite latency the sum of kernel latencies;
* :func:`~repro.composite.mapper.map_composite` — a two-phase heuristic:
  processors are allocated to kernels (proportionally to kernel work, then
  refined by moving processors toward the bottleneck kernel), and each
  kernel is solved with the matching polynomial algorithm of the paper —
  or the exact/heuristic fallback when its cell of Table 1 is NP-hard.
"""

from .mapper import CompositeSolution, KernelPlan, map_composite
from .workflow import CompositeWorkflow

__all__ = [
    "CompositeWorkflow",
    "CompositeSolution",
    "KernelPlan",
    "map_composite",
]
