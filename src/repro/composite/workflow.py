"""Composite workflow model: an ordered chain of workflow kernels.

Each kernel is one of the paper's application graphs (pipeline, fork,
fork-join).  Consecutive data sets traverse the kernels in order, so the
chain behaves like a macro-pipeline whose "stages" are whole kernels:

* composite period  = max over kernels of the kernel period (the slowest
  kernel throttles the stream);
* composite latency = sum over kernels of the kernel latency (a data set
  crosses them in sequence; communication between kernels is free, as in
  the simplified model).

Kernels are mapped on *disjoint* processor subsets — the same discipline
the paper uses for intervals — which is what makes the per-kernel theorems
composable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from ..core.exceptions import InvalidApplicationError

__all__ = ["CompositeWorkflow"]

Kernel = PipelineApplication | ForkApplication | ForkJoinApplication


@dataclass(frozen=True)
class CompositeWorkflow:
    """An ordered chain of kernels traversed by every data set."""

    kernels: tuple[Kernel, ...]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise InvalidApplicationError(
                "a composite workflow needs at least one kernel"
            )
        for kernel in self.kernels:
            if not isinstance(
                kernel,
                (PipelineApplication, ForkApplication, ForkJoinApplication),
            ):
                raise InvalidApplicationError(
                    f"unsupported kernel type {type(kernel).__name__}"
                )

    @classmethod
    def of(cls, *kernels: Kernel) -> "CompositeWorkflow":
        return cls(kernels=tuple(kernels))

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def kernel_works(self) -> tuple[float, ...]:
        """Total work of each kernel (drives processor allocation)."""
        return tuple(kernel.total_work for kernel in self.kernels)

    @property
    def total_work(self) -> float:
        return sum(self.kernel_works)

    def describe(self) -> str:
        parts = []
        for kernel in self.kernels:
            if isinstance(kernel, ForkJoinApplication):
                parts.append(f"fork-join({kernel.n})")
            elif isinstance(kernel, ForkApplication):
                parts.append(f"fork({kernel.n})")
            else:
                parts.append(f"pipeline({kernel.n})")
        return " >> ".join(parts)
