"""Heuristic mapper for composite workflows.

Two phases, as the paper's conclusion sketches:

1. **allocation** — split the platform's processors among the kernels.
   Initial split: sorted by speed (descending), kernels receive consecutive
   blocks sized proportionally to their total work (largest remainder,
   at least one processor each).  Refinement: steepest descent on the
   composite period — repeatedly move one processor from the kernel with
   the most slack to the bottleneck kernel while the period improves;
2. **per-kernel solving** — each kernel + its processor subset forms one of
   the paper's problem instances, solved by the matching polynomial
   algorithm via :func:`repro.algorithms.solve`; NP-hard kernels fall back
   to the exponential exact solver on tiny instances and to the heuristic
   portfolio otherwise.

The result carries the per-kernel solutions, so the composite metrics are
exactly the macro-pipeline formulas of
:class:`~repro.composite.workflow.CompositeWorkflow`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algorithms.problem import Objective, ProblemSpec, Solution
from ..algorithms.registry import classify, solve
from ..core.application import PipelineApplication
from ..core.exceptions import ReproError
from ..core.platform import Platform
from ..heuristics.greedy import pipeline_period_portfolio
from ..heuristics.local_search import improve_mapping
from ..heuristics.random_baseline import random_fork_mapping
from .workflow import CompositeWorkflow

__all__ = ["KernelPlan", "CompositeSolution", "map_composite"]

_TINY = 6  # brute-force fallback bound for NP-hard kernels


@dataclass(frozen=True)
class KernelPlan:
    """One kernel's sub-instance and its solution."""

    kernel_index: int
    processors: tuple[int, ...]  # original platform indices
    solution: Solution
    route: str  # "poly" | "exact" | "heuristic"


@dataclass(frozen=True)
class CompositeSolution:
    """Per-kernel plans plus the composite metrics."""

    workflow: CompositeWorkflow
    platform: Platform
    plans: tuple[KernelPlan, ...]

    @property
    def period(self) -> float:
        return max(plan.solution.period for plan in self.plans)

    @property
    def latency(self) -> float:
        return sum(plan.solution.latency for plan in self.plans)

    @property
    def bottleneck(self) -> KernelPlan:
        return max(self.plans, key=lambda plan: plan.solution.period)

    def describe(self) -> str:
        lines = [
            f"composite period={self.period:.6g} latency={self.latency:.6g}"
        ]
        for plan in self.plans:
            procs = ",".join(f"P{u + 1}" for u in plan.processors)
            lines.append(
                f"  kernel {plan.kernel_index} on [{procs}] via {plan.route}: "
                f"{plan.solution.describe()}"
            )
        return "\n".join(lines)


def _proportional_sizes(works: tuple[float, ...], p: int) -> list[int]:
    """Block sizes proportional to kernel works, each >= 1, summing to p."""
    k = len(works)
    if p < k:
        raise ReproError(
            f"need at least one processor per kernel ({k} kernels, {p} procs)"
        )
    total = sum(works)
    raw = [w / total * p for w in works]
    sizes = [max(1, int(r)) for r in raw]
    while sum(sizes) > p:
        candidates = [i for i in range(k) if sizes[i] > 1]
        idx = max(candidates, key=lambda i: sizes[i] - raw[i])
        sizes[idx] -= 1
    while sum(sizes) < p:
        idx = min(range(k), key=lambda i: sizes[i] - raw[i])
        sizes[idx] += 1
    return sizes


def _solve_kernel(
    kernel,
    platform: Platform,
    proc_indices: tuple[int, ...],
    allow_data_parallel: bool,
    rng: random.Random,
) -> tuple[Solution, str]:
    """Solve one kernel on a sub-platform, remapping processor indices."""
    speeds = platform.subset_speeds(proc_indices)
    sub_platform = Platform.heterogeneous(speeds)
    spec = ProblemSpec(kernel, sub_platform, allow_data_parallel)
    entry = classify(spec, Objective.PERIOD)
    if entry.is_polynomial:
        solution, route = solve(spec, Objective.PERIOD), "poly"
    else:
        stage_count = (
            kernel.n if isinstance(kernel, PipelineApplication) else kernel.n + 1
        )
        if stage_count <= _TINY and len(proc_indices) <= _TINY:
            solution, route = (
                solve(spec, Objective.PERIOD, exact_fallback=True),
                "exact",
            )
        elif isinstance(kernel, PipelineApplication):
            solution, route = (
                pipeline_period_portfolio(kernel, sub_platform, rng),
                "heuristic",
            )
        else:
            seed = random_fork_mapping(kernel, sub_platform, rng,
                                       allow_data_parallel)
            solution, route = (
                improve_mapping(seed, Objective.PERIOD,
                                allow_data_parallel=allow_data_parallel),
                "heuristic",
            )
    # remap the sub-platform processor indices back to the original ones
    from dataclasses import replace

    index_map = dict(enumerate(proc_indices))
    groups = tuple(
        replace(
            group,
            processors=tuple(sorted(index_map[u] for u in group.processors)),
        )
        for group in solution.mapping.groups
    )
    remapped = replace(
        solution.mapping, platform=platform, groups=groups
    )
    return (
        Solution(
            mapping=remapped, period=solution.period,
            latency=solution.latency, meta=dict(solution.meta),
        ),
        route,
    )


def _allocate_blocks(platform: Platform, sizes: list[int]) -> list[tuple[int, ...]]:
    """Consecutive speed-descending blocks of the given sizes."""
    order = [proc.index for proc in platform.sorted_by_speed(descending=True)]
    blocks, pos = [], 0
    for size in sizes:
        blocks.append(tuple(sorted(order[pos:pos + size])))
        pos += size
    return blocks


def map_composite(
    workflow: CompositeWorkflow,
    platform: Platform,
    allow_data_parallel: bool = False,
    rng: random.Random | None = None,
    max_refinements: int = 50,
) -> CompositeSolution:
    """Map a composite workflow: allocate, solve kernels, refine.

    Refinement loop: while the composite period improves, take one
    processor from the kernel whose period has the most slack (its block
    stays non-empty) and give it to the bottleneck kernel.
    """
    rng = rng or random.Random(0)
    works = workflow.kernel_works
    sizes = _proportional_sizes(works, platform.p)

    def build(sizes_vector: list[int]) -> CompositeSolution:
        blocks = _allocate_blocks(platform, sizes_vector)
        plans = []
        for idx, (kernel, block) in enumerate(zip(workflow.kernels, blocks)):
            solution, route = _solve_kernel(
                kernel, platform, block, allow_data_parallel, rng
            )
            plans.append(
                KernelPlan(
                    kernel_index=idx, processors=block,
                    solution=solution, route=route,
                )
            )
        return CompositeSolution(
            workflow=workflow, platform=platform, plans=tuple(plans)
        )

    current = build(sizes)
    for _ in range(max_refinements):
        bottleneck = max(
            range(len(sizes)), key=lambda i: current.plans[i].solution.period
        )
        donors = [
            i for i in range(len(sizes)) if sizes[i] > 1 and i != bottleneck
        ]
        if not donors:
            break
        donor = min(donors, key=lambda i: current.plans[i].solution.period)
        candidate_sizes = list(sizes)
        candidate_sizes[donor] -= 1
        candidate_sizes[bottleneck] += 1
        candidate = build(candidate_sizes)
        if candidate.period < current.period - 1e-12:
            current, sizes = candidate, candidate_sizes
        else:
            break
    return current
