"""Constructive heuristics for the NP-hard mapping problems.

Heterogeneous pipeline, period, no data-parallelism (Theorem 9 problem):

* :func:`pipeline_period_greedy` — fix the number of intervals ``q``, cut
  the stages with the exact chains-to-chains solver (balanced loads), then
  allocate processor *blocks* (speed-descending) proportionally to the
  loads and match sorted loads to sorted block capacities;
* :func:`pipeline_period_sweep` — run the above for every feasible ``q``
  and keep the best.

Heterogeneous fork, latency, homogeneous platform (Theorem 12 problem):

* :func:`fork_latency_lpt` — Longest-Processing-Time list scheduling of the
  branch stages over the ``p`` processor groups (the classic 4/3-approximate
  ``P || Cmax`` heuristic, applied to the branch loads).
"""

from __future__ import annotations

from ..algorithms.problem import Solution
from ..chains.partition import chains_to_chains_dp
from ..core.application import ForkApplication, PipelineApplication
from ..core.exceptions import ReproError
from ..core.mapping import (
    AssignmentKind,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.platform import Platform

__all__ = [
    "pipeline_period_greedy",
    "pipeline_period_sweep",
    "fork_latency_lpt",
]


def pipeline_period_greedy(
    app: PipelineApplication, platform: Platform, q: int
) -> Solution:
    """Greedy heterogeneous-pipeline period mapping with ``q`` intervals.

    1. cut the stage chain into ``q`` intervals with balanced loads
       (exact homogeneous chains-to-chains);
    2. hand out processor blocks over the speed-descending order, block
       sizes proportional to the interval loads (largest remainder);
    3. match sorted-descending loads with sorted-descending block
       capacities (the pairing that minimizes the max ratio for *fixed*
       blocks).

    The block *sizing* is the heuristic part — the exact solver
    :func:`repro.algorithms.exact.pipeline_period_exact_blocks` instead
    enumerates all block compositions.
    """
    n, p = app.n, platform.p
    if not 1 <= q <= min(n, p):
        raise ReproError(f"q must be in [1, min(n, p)] = [1, {min(n, p)}]")
    cut = chains_to_chains_dp(list(app.works), q)
    loads = []
    start = 0
    for end in cut.boundaries:
        loads.append(app.interval_work(start, end - 1))
        start = end
    q_eff = len(loads)

    order = platform.sorted_by_speed(descending=True)
    total_load = sum(loads)
    # proportional block sizes (>= 1), largest-remainder rounding
    raw = [load / total_load * p for load in loads]
    sizes = [max(1, int(r)) for r in raw]
    while sum(sizes) > p:
        idx = max(range(q_eff), key=lambda i: sizes[i] - raw[i])
        if sizes[idx] == 1:
            idx = max(
                (i for i in range(q_eff) if sizes[i] > 1),
                key=lambda i: sizes[i] - raw[i],
                default=None,
            )
            if idx is None:
                raise ReproError("not enough processors for the intervals")
        sizes[idx] -= 1
    while sum(sizes) < p:
        idx = min(range(q_eff), key=lambda i: sizes[i] - raw[i])
        sizes[idx] += 1

    # blocks over the descending order; capacity = size * slowest speed
    blocks = []
    pos = 0
    for k in sizes:
        speeds = [order[t].speed for t in range(pos, pos + k)]
        blocks.append((k * min(speeds), pos, k))
        pos += k
    blocks.sort(key=lambda b: -b[0])
    load_order = sorted(range(q_eff), key=lambda r: -loads[r])

    assignment: dict[int, tuple[int, int]] = {}
    for (cap, bpos, k), r in zip(blocks, load_order):
        assignment[r] = (bpos, k)
        del cap

    groups = []
    start = 1
    for r, end in enumerate(cut.boundaries):
        bpos, k = assignment[r]
        procs = tuple(sorted(order[t].index for t in range(bpos, bpos + k)))
        groups.append(
            GroupAssignment(
                stages=tuple(range(start, end + 1)),
                processors=procs,
                kind=AssignmentKind.REPLICATED,
            )
        )
        start = end + 1
    mapping = PipelineMapping(application=app, platform=platform, groups=tuple(groups))
    return Solution.from_mapping(mapping, algorithm=f"greedy-q{q}")


def pipeline_period_sweep(
    app: PipelineApplication, platform: Platform
) -> Solution:
    """Best greedy mapping over all interval counts ``q``."""
    best: Solution | None = None
    for q in range(1, min(app.n, platform.p) + 1):
        try:
            sol = pipeline_period_greedy(app, platform, q)
        except ReproError:
            continue
        if best is None or sol.period < best.period:
            best = sol
    if best is None:
        raise ReproError("no greedy mapping found")
    return Solution(
        mapping=best.mapping, period=best.period, latency=best.latency,
        meta={"algorithm": "greedy-sweep"},
    )


def pipeline_period_portfolio(
    app: PipelineApplication,
    platform: Platform,
    rng=None,
    restarts: int = 5,
) -> Solution:
    """Portfolio heuristic for the NP-hard het-pipeline period problem.

    Polishes the greedy sweep *and* ``restarts`` random mappings with the
    local search of :mod:`repro.heuristics.local_search`, returning the
    best.  Random restarts protect against the local optima a single greedy
    seed can strand the descent in.
    """
    import random as _random

    from ..algorithms.problem import Objective
    from .local_search import improve_mapping
    from .random_baseline import random_pipeline_mapping

    rng = rng or _random.Random(0)
    seeds = [pipeline_period_sweep(app, platform)]
    for _ in range(restarts):
        seeds.append(random_pipeline_mapping(app, platform, rng))
    best: Solution | None = None
    for seed in seeds:
        polished = improve_mapping(seed, Objective.PERIOD)
        if best is None or polished.period < best.period:
            best = polished
    assert best is not None
    return Solution(
        mapping=best.mapping, period=best.period, latency=best.latency,
        meta={"algorithm": f"portfolio-{restarts}restarts"},
    )


def fork_latency_lpt(app: ForkApplication, platform: Platform) -> Solution:
    """LPT heuristic for heterogeneous-fork latency on a hom. platform.

    Sort branch stages by decreasing work and assign each to the currently
    least-loaded of ``p`` single-processor groups; the root joins the first
    group (its placement does not change the latency on identical
    processors).  This is Graham's LPT rule on the branch works.
    """
    if not platform.is_homogeneous:
        raise ReproError("fork_latency_lpt expects a homogeneous platform")
    p = platform.p
    loads = [0.0] * p
    members: list[list[int]] = [[] for _ in range(p)]
    order = sorted(range(app.n), key=lambda i: -app.branches[i].work)
    for i in order:
        machine = min(range(p), key=lambda m: loads[m])
        loads[machine] += app.branches[i].work
        members[machine].append(i + 1)

    groups = []
    root_placed = False
    proc = 0
    for m in range(p):
        stages = sorted(members[m])
        if not root_placed:
            stages = [0, *stages]
            root_placed = True
        elif not stages:
            continue
        groups.append(
            GroupAssignment(
                stages=tuple(stages), processors=(proc,),
                kind=AssignmentKind.REPLICATED,
            )
        )
        proc += 1
    mapping = ForkMapping(application=app, platform=platform, groups=tuple(groups))
    return Solution.from_mapping(mapping, algorithm="lpt")
