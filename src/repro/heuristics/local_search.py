"""Steepest-descent local search over mappings.

Improvement moves (all validity-preserving):

* **boundary shift** (pipeline): move one stage across an adjacent interval
  boundary;
* **processor move**: move one processor from a group with ``k >= 2`` to
  another group;
* **processor swap**: exchange two processors between groups (useful on
  heterogeneous platforms where *which* processor matters, not only how
  many);
* **kind flip**: toggle a group between replicated and data-parallel when
  the variant and the group shape allow it;
* **stage move** (fork): move a branch stage to another group (or to a new
  group on an unused processor).

Each round scores the *whole* neighbourhood in one vectorized shot through
:class:`repro.core.batch_eval.BatchEvaluator` (no per-candidate Python
``evaluate`` calls in the hot loop) and applies the best strictly-improving
move; terminates at a local optimum.  Used on top of the greedy seeds in
the benchmarks, and standalone as ``improve_mapping``.
"""

from __future__ import annotations

from dataclasses import replace

from ..algorithms.problem import Objective, Solution
from ..core.batch_eval import BatchEvaluator, feasible_argmin
from ..core.costs import FLOAT_TOL
from ..core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.validation import is_valid

__all__ = ["improve_mapping", "neighbourhood"]


def _with_groups(mapping, groups):
    return replace(mapping, groups=tuple(groups))


def _boundary_shifts(mapping: PipelineMapping):
    groups = mapping.groups
    for g in range(len(groups) - 1):
        left, right = groups[g], groups[g + 1]
        if len(left.stages) > 1:  # move last stage of left to right
            yield _with_groups(
                mapping,
                (
                    *groups[:g],
                    replace(left, stages=left.stages[:-1]),
                    replace(right, stages=(left.stages[-1], *right.stages)),
                    *groups[g + 2:],
                ),
            )
        if len(right.stages) > 1:  # move first stage of right to left
            yield _with_groups(
                mapping,
                (
                    *groups[:g],
                    replace(left, stages=(*left.stages, right.stages[0])),
                    replace(right, stages=right.stages[1:]),
                    *groups[g + 2:],
                ),
            )


def _stage_moves(mapping: ForkMapping):
    groups = mapping.groups
    used = {u for g in groups for u in g.processors}
    free = [u for u in range(mapping.platform.p) if u not in used]
    join_index = (
        mapping.application.n + 1
        if isinstance(mapping, ForkJoinMapping)
        else None
    )
    for g, group in enumerate(groups):
        movable = [
            i for i in group.stages if i != 0 and i != join_index
        ]
        if len(movable) == len(group.stages) and len(group.stages) == 1:
            movable = []  # would empty the group; handled by regrouping
        for stage in movable:
            rest = tuple(i for i in group.stages if i != stage)
            for h, target in enumerate(groups):
                if h == g:
                    continue
                new_groups = list(groups)
                new_groups[h] = replace(target, stages=(*target.stages, stage))
                if rest:
                    new_groups[g] = replace(group, stages=rest)
                else:
                    del new_groups[g]
                yield _with_groups(mapping, new_groups)
            if free:  # open a fresh singleton group on an unused processor
                new_groups = list(groups)
                if rest:
                    new_groups[g] = replace(group, stages=rest)
                else:
                    del new_groups[g]
                new_groups.append(
                    GroupAssignment(
                        stages=(stage,), processors=(free[0],),
                        kind=AssignmentKind.REPLICATED,
                    )
                )
                yield _with_groups(mapping, new_groups)


def _processor_moves(mapping):
    groups = mapping.groups
    used = {u for g in groups for u in g.processors}
    free = [u for u in range(mapping.platform.p) if u not in used]
    for g, src in enumerate(groups):
        for u in src.processors:
            # move u to another group
            if len(src.processors) >= 2:
                for h, dst in enumerate(groups):
                    if h == g:
                        continue
                    new_groups = list(groups)
                    new_groups[g] = replace(
                        src, processors=tuple(x for x in src.processors if x != u)
                    )
                    new_groups[h] = replace(
                        dst, processors=(*dst.processors, u)
                    )
                    yield _with_groups(mapping, new_groups)
            # swap u with a free processor
            for v in free:
                new_groups = list(groups)
                new_groups[g] = replace(
                    src,
                    processors=tuple(
                        v if x == u else x for x in src.processors
                    ),
                )
                yield _with_groups(mapping, new_groups)
    # pairwise swaps between groups
    for g in range(len(groups)):
        for h in range(g + 1, len(groups)):
            for u in groups[g].processors:
                for v in groups[h].processors:
                    new_groups = list(groups)
                    new_groups[g] = replace(
                        groups[g],
                        processors=tuple(
                            v if x == u else x for x in groups[g].processors
                        ),
                    )
                    new_groups[h] = replace(
                        groups[h],
                        processors=tuple(
                            u if x == v else x for x in groups[h].processors
                        ),
                    )
                    yield _with_groups(mapping, new_groups)


def _kind_flips(mapping, allow_data_parallel: bool):
    if not allow_data_parallel:
        return
    for g, group in enumerate(mapping.groups):
        flipped = (
            AssignmentKind.DATA_PARALLEL
            if group.kind is AssignmentKind.REPLICATED
            else AssignmentKind.REPLICATED
        )
        new_groups = list(mapping.groups)
        new_groups[g] = replace(group, kind=flipped)
        yield _with_groups(mapping, new_groups)


def neighbourhood(mapping, allow_data_parallel: bool):
    """All candidate neighbours of a mapping (may include invalid ones —
    the caller filters with :func:`repro.core.validation.is_valid`)."""
    if isinstance(mapping, PipelineMapping):
        yield from _boundary_shifts(mapping)
    if isinstance(mapping, ForkMapping):
        yield from _stage_moves(mapping)
    yield from _processor_moves(mapping)
    yield from _kind_flips(mapping, allow_data_parallel)


def improve_mapping(
    solution: Solution,
    objective: Objective,
    allow_data_parallel: bool = False,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    max_rounds: int = 200,
) -> Solution:
    """Steepest descent from a seed solution; returns a local optimum."""
    current = solution
    evaluator = BatchEvaluator(
        solution.mapping.application, solution.mapping.platform
    )
    for _ in range(max_rounds):
        candidates = [
            neighbour
            for neighbour in neighbourhood(current.mapping, allow_data_parallel)
            if is_valid(neighbour, allow_data_parallel)
        ]
        if not candidates:
            return current
        periods, latencies = evaluator.evaluate(candidates)
        values = periods if objective is Objective.PERIOD else latencies
        pick = feasible_argmin(
            periods, latencies, values, period_bound, latency_bound
        )
        best_value = current.objective_value(objective)
        if pick is None or values[pick] >= best_value - FLOAT_TOL:
            return current
        current = Solution(
            mapping=candidates[pick],
            period=float(periods[pick]),
            latency=float(latencies[pick]),
            meta={"algorithm": "local-search"},
        )
    return current
