"""Random valid mappings: the baseline every heuristic must beat.

Also used by the property tests and the simulator-validation benchmark as a
source of arbitrary (but valid) mappings.  :func:`best_of_random` is the
portfolio version: it samples many mappings and scores them all in one
vectorized pass through :class:`repro.core.batch_eval.BatchEvaluator`
instead of pricing each sample individually.
"""

from __future__ import annotations

import random

from ..algorithms.problem import Objective, Solution
from ..core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from ..core.batch_eval import BatchEvaluator, feasible_argmin
from ..core.exceptions import InfeasibleProblemError
from ..core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.platform import Platform
from ..core.validation import is_valid

__all__ = ["random_pipeline_mapping", "random_fork_mapping", "best_of_random"]


def _random_processor_split(
    rng: random.Random, p: int, groups: int
) -> list[list[int]]:
    """Split a random non-empty subset of processors into ``groups`` parts."""
    procs = list(range(p))
    rng.shuffle(procs)
    used = rng.randint(groups, p)
    procs = procs[:used]
    # one processor per group first, then spread the rest randomly
    parts: list[list[int]] = [[procs[i]] for i in range(groups)]
    for u in procs[groups:]:
        parts[rng.randrange(groups)].append(u)
    return parts


def _random_pipeline_groups(
    app: PipelineApplication,
    platform: Platform,
    rng: random.Random,
    allow_data_parallel: bool,
) -> PipelineMapping:
    n, p = app.n, platform.p
    q = rng.randint(1, min(n, p))
    cuts = sorted(rng.sample(range(1, n), q - 1)) if q > 1 else []
    boundaries = [*cuts, n]
    parts = _random_processor_split(rng, p, q)
    groups = []
    start = 1
    for end, procs in zip(boundaries, parts):
        stages = tuple(range(start, end + 1))
        kind = AssignmentKind.REPLICATED
        if (
            allow_data_parallel
            and len(stages) == 1
            and len(procs) >= 2
            and rng.random() < 0.5
        ):
            kind = AssignmentKind.DATA_PARALLEL
        groups.append(
            GroupAssignment(stages=stages, processors=tuple(sorted(procs)),
                            kind=kind)
        )
        start = end + 1
    mapping = PipelineMapping(application=app, platform=platform,
                              groups=tuple(groups))
    assert is_valid(mapping, allow_data_parallel)
    return mapping


def random_pipeline_mapping(
    app: PipelineApplication,
    platform: Platform,
    rng: random.Random,
    allow_data_parallel: bool = False,
) -> Solution:
    """A uniformly-structured random valid pipeline mapping."""
    mapping = _random_pipeline_groups(app, platform, rng, allow_data_parallel)
    return Solution.from_mapping(mapping, algorithm="random")


def _random_fork_groups(
    app: ForkApplication,
    platform: Platform,
    rng: random.Random,
    allow_data_parallel: bool,
) -> ForkMapping:
    is_forkjoin = isinstance(app, ForkJoinApplication)
    n, p = app.n, platform.p
    stage_count = n + (2 if is_forkjoin else 1)
    q = rng.randint(1, min(stage_count, p))
    # random assignment of stages to q groups, every group non-empty
    stages = list(range(stage_count))
    rng.shuffle(stages)
    buckets: list[list[int]] = [[stages[i]] for i in range(q)]
    for stage in stages[q:]:
        buckets[rng.randrange(q)].append(stage)
    parts = _random_processor_split(rng, p, q)
    groups = []
    join_index = n + 1 if is_forkjoin else None
    for bucket, procs in zip(buckets, parts):
        kind = AssignmentKind.REPLICATED
        special = 0 in bucket or (join_index is not None and join_index in bucket)
        if (
            allow_data_parallel
            and len(procs) >= 2
            and (not special or len(bucket) == 1)
            and rng.random() < 0.5
        ):
            kind = AssignmentKind.DATA_PARALLEL
        groups.append(
            GroupAssignment(
                stages=tuple(sorted(bucket)),
                processors=tuple(sorted(procs)),
                kind=kind,
            )
        )
    cls = ForkJoinMapping if is_forkjoin else ForkMapping
    mapping = cls(application=app, platform=platform, groups=tuple(groups))
    assert is_valid(mapping, allow_data_parallel)
    return mapping


def random_fork_mapping(
    app: ForkApplication,
    platform: Platform,
    rng: random.Random,
    allow_data_parallel: bool = False,
) -> Solution:
    """A random valid fork (or fork-join) mapping."""
    mapping = _random_fork_groups(app, platform, rng, allow_data_parallel)
    return Solution.from_mapping(mapping, algorithm="random")


def best_of_random(
    app,
    platform: Platform,
    rng: random.Random,
    objective: Objective,
    samples: int = 200,
    allow_data_parallel: bool = False,
    period_bound: float | None = None,
    latency_bound: float | None = None,
) -> Solution:
    """Best of ``samples`` random valid mappings, scored in one batch.

    The honest portfolio baseline: all candidates are generated first, then
    priced together by the numpy batch evaluator — sampling cost stays, the
    ``O(samples)`` per-mapping Python evaluation disappears.  Raises
    :class:`InfeasibleProblemError` when no sample meets the thresholds.
    """
    if samples < 1:
        raise InfeasibleProblemError("need at least one random sample")
    if isinstance(app, ForkApplication):
        draw = _random_fork_groups
    else:
        draw = _random_pipeline_groups
    mappings = [
        draw(app, platform, rng, allow_data_parallel) for _ in range(samples)
    ]
    evaluator = BatchEvaluator(app, platform)
    periods, latencies = evaluator.evaluate(mappings)
    values = periods if objective is Objective.PERIOD else latencies
    pick = feasible_argmin(
        periods, latencies, values, period_bound, latency_bound
    )
    if pick is None:
        raise InfeasibleProblemError(
            f"none of {samples} random mappings satisfies the bounds "
            f"(period<={period_bound}, latency<={latency_bound})"
        )
    return Solution(
        mapping=mappings[pick],
        period=float(periods[pick]),
        latency=float(latencies[pick]),
        meta={"algorithm": "random-portfolio", "samples": samples},
    )
