"""Heuristics for the NP-hard entries of Table 1.

The paper's conclusion calls for heuristics for the combinatorial problem
instances; this subpackage provides a portfolio:

* :mod:`repro.heuristics.greedy` — constructive heuristics: chains-to-chains
  based interval splitting with proportional processor allocation for the
  heterogeneous-pipeline period problem (Thm 9), LPT list scheduling for the
  heterogeneous-fork latency problem (Thm 12);
* :mod:`repro.heuristics.local_search` — steepest-descent improvement over
  any mapping (boundary shifts, processor moves, kind flips);
* :mod:`repro.heuristics.random_baseline` — random valid mappings, the
  honesty baseline every heuristic must beat.

All heuristics return a :class:`~repro.algorithms.problem.Solution`, so
their quality can be compared directly with the exact solvers (see
``benchmarks/bench_nphard_heuristics.py``).
"""

from .greedy import (
    fork_latency_lpt,
    pipeline_period_greedy,
    pipeline_period_portfolio,
    pipeline_period_sweep,
)
from .local_search import improve_mapping
from .random_baseline import (
    best_of_random,
    random_fork_mapping,
    random_pipeline_mapping,
)

__all__ = [
    "pipeline_period_greedy",
    "pipeline_period_sweep",
    "pipeline_period_portfolio",
    "fork_latency_lpt",
    "improve_mapping",
    "random_pipeline_mapping",
    "random_fork_mapping",
    "best_of_random",
]
