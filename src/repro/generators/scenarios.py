"""Named realistic scenarios used by the examples and benchmarks.

The paper motivates pipelines with image processing / computer vision /
query processing workloads and forks with master-slave file or database
distribution (Sections 1 and 3.1).  These scenarios instantiate those
motivations with concrete numbers so the examples exercise the public API
on something recognizable rather than random noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from ..core.exceptions import ReproError
from ..core.platform import Platform

__all__ = ["Scenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named application + platform pair with a short story."""

    name: str
    description: str
    application: PipelineApplication | ForkApplication | ForkJoinApplication
    platform: Platform
    allow_data_parallel: bool


def _image_pipeline() -> Scenario:
    # A video-analytics chain: decode -> denoise -> segment -> extract ->
    # classify -> encode.  Works in Mflop per frame; the segmentation stage
    # dominates and is data-parallel (per-tile), matching the paper's
    # low-level-filter / high-level-extraction discussion in Section 2.
    app = PipelineApplication.from_works(
        [40.0, 110.0, 560.0, 220.0, 90.0, 35.0],
        data_sizes=[25.0, 25.0, 25.0, 6.0, 2.0, 0.5, 0.1],
    )
    platform = Platform.heterogeneous(
        [3.0, 3.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0], interconnect=None
    )
    return Scenario(
        name="image-pipeline",
        description=(
            "six-stage video analytics pipeline on a 2-generation cluster "
            "(three processor speeds); segmentation dominates"
        ),
        application=app,
        platform=platform,
        allow_data_parallel=True,
    )


def _master_slave_fork() -> Scenario:
    # Master-slave database scatter (Section 6.3 motivation): the master
    # parses a request (root), sixteen shard scans run independently.
    app = ForkApplication.homogeneous(16, root_work=30.0, branch_work=100.0)
    platform = Platform.heterogeneous([4.0, 4.0, 2.0, 2.0, 2.0, 2.0, 1.0, 1.0])
    return Scenario(
        name="master-slave-fork",
        description=(
            "master-slave shard scan: one root request parse, sixteen "
            "identical shard scans on a heterogeneous eight-node cluster"
        ),
        application=app,
        platform=platform,
        allow_data_parallel=False,
    )


def _scatter_gather() -> Scenario:
    # Scatter-compute-gather (fork-join): map-reduce style aggregation.
    app = ForkJoinApplication.homogeneous(
        12, root_work=24.0, branch_work=96.0, join_work=48.0
    )
    platform = Platform.homogeneous(8, 2.0)
    return Scenario(
        name="scatter-gather",
        description=(
            "map-reduce round: scatter a batch, twelve identical map tasks, "
            "gather/reduce, on eight identical nodes"
        ),
        application=app,
        platform=platform,
        allow_data_parallel=True,
    )


SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (_image_pipeline(), _master_slave_fork(), _scatter_gather())
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (raises with the list of known names)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
