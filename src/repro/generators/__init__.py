"""Instance generators: random and scenario-based applications/platforms."""

from .instances import (
    random_fork,
    random_forkjoin,
    random_pipeline,
    random_platform,
)
from .scenarios import SCENARIOS, Scenario, get_scenario

__all__ = [
    "random_pipeline",
    "random_fork",
    "random_forkjoin",
    "random_platform",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
]
