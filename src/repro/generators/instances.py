"""Random instance generators for tests and benchmarks.

All generators take an explicit :class:`random.Random` so experiments are
reproducible from a seed, and accept a ``homogeneous`` flag to produce the
paper's *hom.* application / platform variants.
"""

from __future__ import annotations

import random

from ..core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from ..core.platform import Platform

__all__ = [
    "random_pipeline",
    "random_fork",
    "random_forkjoin",
    "random_platform",
]


def _works(rng: random.Random, n: int, low: int, high: int,
           homogeneous: bool) -> list[float]:
    if homogeneous:
        return [float(rng.randint(low, high))] * n
    return [float(rng.randint(low, high)) for _ in range(n)]


def random_pipeline(
    rng: random.Random,
    n: int,
    low: int = 1,
    high: int = 20,
    homogeneous: bool = False,
) -> PipelineApplication:
    """A random ``n``-stage pipeline with integer works in ``[low, high]``."""
    return PipelineApplication.from_works(_works(rng, n, low, high, homogeneous))


def random_fork(
    rng: random.Random,
    n: int,
    low: int = 1,
    high: int = 20,
    homogeneous: bool = False,
) -> ForkApplication:
    """A random fork: root work sampled like the branches."""
    return ForkApplication.from_works(
        float(rng.randint(low, high)), _works(rng, n, low, high, homogeneous)
    )


def random_forkjoin(
    rng: random.Random,
    n: int,
    low: int = 1,
    high: int = 20,
    homogeneous: bool = False,
) -> ForkJoinApplication:
    """A random fork-join."""
    return ForkJoinApplication.from_works(
        float(rng.randint(low, high)),
        _works(rng, n, low, high, homogeneous),
        float(rng.randint(low, high)),
    )


def random_platform(
    rng: random.Random,
    p: int,
    low: int = 1,
    high: int = 10,
    homogeneous: bool = False,
) -> Platform:
    """A random platform with integer speeds in ``[low, high]``."""
    if homogeneous:
        return Platform.homogeneous(p, float(rng.randint(low, high)))
    return Platform.heterogeneous(
        [float(rng.randint(low, high)) for _ in range(p)]
    )
