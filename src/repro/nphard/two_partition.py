"""2-PARTITION: instances, exact solvers and generators.

2-PARTITION (Garey & Johnson [12], problem SP12): given positive integers
:math:`a_1..a_m`, is there :math:`I \\subset \\{1..m\\}` with
:math:`\\sum_{i \\in I} a_i = \\sum_{i \\notin I} a_i`?  It is NP-complete
but solvable in pseudo-polynomial time by subset-sum dynamic programming —
which is what makes the paper's reductions *checkable*: we can decide the
source instance exactly and compare with what the scheduling solvers decide
on the reduced instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.exceptions import ReproError

__all__ = [
    "TwoPartitionInstance",
    "solve_two_partition",
    "best_balanced_split",
    "random_two_partition",
    "random_two_partition_yes",
]


@dataclass(frozen=True)
class TwoPartitionInstance:
    """An instance ``a_1..a_m`` (positive integers)."""

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ReproError("2-PARTITION needs at least one value")
        for v in self.values:
            if not isinstance(v, int) or v <= 0:
                raise ReproError(f"values must be positive integers, got {v!r}")

    @property
    def m(self) -> int:
        return len(self.values)

    @property
    def total(self) -> int:
        return sum(self.values)

    @property
    def half(self) -> int:
        return self.total // 2

    def is_yes(self) -> bool:
        return solve_two_partition(self) is not None


def _subset_reaching(values: tuple[int, ...], target: int) -> frozenset[int] | None:
    """Subset-sum DP with parent pointers: a subset of (0-based) indices
    whose values sum to exactly ``target``, or ``None``.  ``O(m * target)``."""
    if target == 0:
        return frozenset()
    parent: dict[int, tuple[int, int]] = {}  # sum -> (previous sum, index)
    reachable = {0}
    for idx, v in enumerate(values):
        additions = []
        for s in reachable:
            t = s + v
            if t <= target and t not in reachable and t not in parent:
                parent[t] = (s, idx)
                additions.append(t)
        reachable.update(additions)
        if target in reachable:
            break
    if target not in reachable:
        return None
    subset: set[int] = set()
    s = target
    while s > 0:
        prev, idx = parent[s]
        subset.add(idx)
        s = prev
    return frozenset(subset)


def solve_two_partition(
    instance: TwoPartitionInstance,
) -> frozenset[int] | None:
    """Exact pseudo-polynomial solver: a subset ``I`` (0-based indices)
    with ``sum(I) = S/2``, or ``None`` for NO instances.  ``O(m S)``."""
    if instance.total % 2 == 1:
        return None
    return _subset_reaching(instance.values, instance.half)


def best_balanced_split(
    instance: TwoPartitionInstance,
) -> tuple[frozenset[int], int]:
    """The most balanced split of any instance: a subset ``I`` with the
    largest ``sum(I) <= S/2``; returns ``(I, max(side sums))``.

    For YES instances the second component is exactly ``S/2``; for NO
    instances it is the optimal two-machine makespan — ground truth for the
    Theorem 12/15 gadgets.
    """
    for t in range(instance.half, -1, -1):
        subset = _subset_reaching(instance.values, t)
        if subset is not None:
            return subset, instance.total - t
    raise ReproError("unreachable: the empty subset reaches 0")


def random_two_partition(
    rng: random.Random, m: int, max_value: int = 50
) -> TwoPartitionInstance:
    """Uniform random instance (may be YES or NO)."""
    return TwoPartitionInstance(
        values=tuple(rng.randint(1, max_value) for _ in range(m))
    )


def random_two_partition_yes(
    rng: random.Random, m: int, max_value: int = 50
) -> TwoPartitionInstance:
    """A YES instance by construction: sample ``m - 1`` values, then append
    the value balancing a random split (resampled until positive)."""
    if m < 2:
        raise ReproError("need m >= 2")
    for _ in range(10_000):
        values = [rng.randint(1, max_value) for _ in range(m - 1)]
        rng.shuffle(values)
        subset_size = rng.randint(1, m - 2) if m > 2 else 1
        balance = sum(values[:subset_size]) - sum(values[subset_size:])
        if balance > 0:
            values.append(balance)
            inst = TwoPartitionInstance(values=tuple(values))
            if inst.is_yes():
                return inst
    raise ReproError("failed to build a YES instance")
