"""The paper's five NP-hardness reductions, as executable gadget builders.

Each class turns a source instance (2-PARTITION or N3DM) into the exact
scheduling instance of the corresponding proof, exposes the decision
threshold, can *construct* the witness mapping for YES instances, and can
*extract* a partition/matching back out of any mapping meeting the bound —
so the equivalences claimed in the proofs are checked end-to-end by the
test-suite and benchmarks:

=========  =============================================================
Thm 5      2-stage homogeneous pipeline, het. platform, data-par allowed
           (period <= 1 / latency <= 2  <=>  2-PARTITION)
Thm 9      heterogeneous pipeline, het. platform, no data-par
           (period <= 1  <=>  N3DM)  — the involved ``(**)`` reduction
Thm 12     heterogeneous fork, hom. platform (latency  <=>  2-PARTITION)
Thm 13     2-stage fork, het. platform, data-par (same gadget as Thm 5)
Thm 15     heterogeneous fork, het. platform, no data-par
           (period <= 1  <=>  2-PARTITION)
=========  =============================================================

Gadget side conditions (the "WLOG" hypotheses of the proofs — e.g. Thm 5
needs all ``a_j`` distinct and ``< S/2``) are enforced by the builders;
violating instances raise :class:`ReproError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.problem import Objective, ProblemSpec
from ..core.application import ForkApplication, PipelineApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import ReproError
from ..core.mapping import (
    AssignmentKind,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.platform import Platform
from .n3dm import N3DMInstance
from .two_partition import TwoPartitionInstance, best_balanced_split

__all__ = [
    "Thm5Reduction",
    "Thm9Reduction",
    "Thm12Reduction",
    "Thm13Reduction",
    "Thm15Reduction",
]


def _subset_sum(values, subset) -> int:
    return sum(values[i] for i in subset)


# ======================================================================
# Theorem 5
# ======================================================================
@dataclass(frozen=True)
class Thm5Reduction:
    """2-PARTITION -> {2-stage homogeneous pipeline, het. platform, DP}.

    Pipeline ``S1 -> S2`` with ``w1 = w2 = S/2``; processor ``P_j`` has
    speed ``a_j``.  The instance admits latency ``<= 2`` (resp. period
    ``<= 1``) iff the source is a YES instance; the witness data-parallelizes
    ``S1`` on ``I`` and ``S2`` on its complement.
    """

    source: TwoPartitionInstance

    def __post_init__(self) -> None:
        values = self.source.values
        S = self.source.total
        if len(set(values)) != len(values):
            raise ReproError("Thm 5 gadget requires pairwise distinct a_j")
        if any(2 * a >= S for a in values):
            raise ReproError("Thm 5 gadget requires a_j < S/2 for all j")

    @property
    def application(self) -> PipelineApplication:
        half = self.source.total / 2
        return PipelineApplication.from_works([half, half])

    @property
    def platform(self) -> Platform:
        return Platform.heterogeneous([float(a) for a in self.source.values])

    @property
    def spec(self) -> ProblemSpec:
        return ProblemSpec(self.application, self.platform, allow_data_parallel=True)

    @property
    def period_threshold(self) -> float:
        return 1.0

    @property
    def latency_threshold(self) -> float:
        return 2.0

    def yes_mapping(self, subset: frozenset[int]) -> PipelineMapping:
        """The witness mapping built from a solution subset ``I``."""
        rest = tuple(sorted(set(range(self.source.m)) - set(subset)))
        groups = (
            GroupAssignment(
                stages=(1,),
                processors=tuple(sorted(subset)),
                kind=AssignmentKind.DATA_PARALLEL,
            ),
            GroupAssignment(
                stages=(2,), processors=rest, kind=AssignmentKind.DATA_PARALLEL
            ),
        )
        return PipelineMapping(
            application=self.application, platform=self.platform, groups=groups
        )

    def extract_partition(self, mapping: PipelineMapping) -> frozenset[int] | None:
        """Recover ``I`` from a mapping meeting the bound; None if the
        mapping does not have the forced two-data-parallel-stage shape or
        its processor split is not a solution."""
        if len(mapping.groups) != 2:
            return None
        first = mapping.groups[0]
        subset = frozenset(first.processors)
        if _subset_sum(self.source.values, subset) * 2 == self.source.total:
            return subset
        return None

    def schedule_meets_bound(
        self, objective: Objective, engine: str = "bnb"
    ) -> bool:
        """Decide the scheduling bound exactly.

        ``engine`` selects the exact search: the pruned branch-and-bound
        default handles noticeably larger ``m`` than the historical flat
        enumeration (``"enumerate"``), which remains available as the
        oracle for cross-checks.
        """
        threshold = (
            self.period_threshold
            if objective is Objective.PERIOD
            else self.latency_threshold
        )
        best = _exact_optimal(self.spec, objective, engine)
        return best.objective_value(objective) <= threshold * (1 + FLOAT_TOL)


def _exact_optimal(spec: ProblemSpec, objective: Objective, engine: str):
    from ..algorithms import brute_force

    return brute_force.optimal(spec, objective, engine=engine)


# ======================================================================
# Theorem 9
# ======================================================================
@dataclass(frozen=True)
class Thm9Reduction:
    """N3DM -> {heterogeneous pipeline, het. platform, no DP, period}.

    The gadget of the paper: ``R = max(20, m+1)``, ``B = 2M``,
    ``C = 5RM``, ``D = 10 R^2 M^2``; stage pattern per triple ``i``::

        A_i  1 1 ... 1  C  D        with  A_i = B + x_i  and M ones
​
    and processor speeds ``B + M - y_j`` (slow), ``C + M - z_j`` (medium),
    ``D`` (fast), asking for period ``<= 1``.
    """

    source: N3DMInstance

    def __post_init__(self) -> None:
        if not self.source.satisfies_side_conditions():
            raise ReproError(
                "Thm 9 gadget requires the N3DM side conditions "
                "(values < M, sums equal to mM)"
            )

    # gadget constants ----------------------------------------------------
    @property
    def R(self) -> int:
        return max(20, self.source.m + 1)

    @property
    def B(self) -> int:
        return 2 * self.source.M

    @property
    def C(self) -> int:
        return 5 * self.R * self.source.M

    @property
    def D(self) -> int:
        return 10 * self.R * self.R * self.source.M * self.source.M

    @property
    def application(self) -> PipelineApplication:
        works: list[float] = []
        for x in self.source.xs:
            works.append(float(self.B + x))
            works.extend([1.0] * self.source.M)
            works.append(float(self.C))
            works.append(float(self.D))
        return PipelineApplication.from_works(works)

    @property
    def platform(self) -> Platform:
        M = self.source.M
        speeds = [float(self.B + M - y) for y in self.source.ys]
        speeds += [float(self.C + M - z) for z in self.source.zs]
        speeds += [float(self.D)] * self.source.m
        return Platform.heterogeneous(speeds)

    @property
    def spec(self) -> ProblemSpec:
        return ProblemSpec(self.application, self.platform, allow_data_parallel=False)

    @property
    def period_threshold(self) -> float:
        return 1.0

    def yes_mapping(
        self, sigma1: tuple[int, ...], sigma2: tuple[int, ...]
    ) -> PipelineMapping:
        """The witness mapping from permutations solving the N3DM instance."""
        m, M = self.source.m, self.source.M
        N = M + 3
        groups = []
        for i in range(m):
            base = i * N + 1  # 1-based index of stage A_i
            z = self.source.zs[sigma2[i]]
            groups.append(
                GroupAssignment(
                    stages=tuple(range(base, base + 1 + z)),
                    processors=(sigma1[i],),
                    kind=AssignmentKind.REPLICATED,
                )
            )
            groups.append(
                GroupAssignment(
                    stages=tuple(range(base + 1 + z, base + M + 2)),
                    processors=(m + sigma2[i],),
                    kind=AssignmentKind.REPLICATED,
                )
            )
            groups.append(
                GroupAssignment(
                    stages=(base + M + 2,),
                    processors=(2 * m + i,),
                    kind=AssignmentKind.REPLICATED,
                )
            )
        return PipelineMapping(
            application=self.application, platform=self.platform,
            groups=tuple(groups),
        )

    def extract_matching(
        self, mapping: PipelineMapping
    ) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        """Recover ``(sigma1, sigma2)`` from a period-1 mapping.

        Follows the structure forced by the proof: in block ``i``, the
        group holding ``A_i`` sits on a slow processor (its index gives
        ``sigma1``) and the group holding the following ``C`` stage sits on
        a medium processor (giving ``sigma2``).
        """
        m, M = self.source.m, self.source.M
        N = M + 3
        stage_to_proc: dict[int, tuple[int, ...]] = {}
        for group in mapping.groups:
            for stage in group.stages:
                stage_to_proc[stage] = group.processors
        sigma1, sigma2 = [], []
        for i in range(m):
            a_procs = stage_to_proc.get(i * N + 1)
            c_procs = stage_to_proc.get(i * N + M + 2)
            if (
                a_procs is None or c_procs is None
                or len(a_procs) != 1 or len(c_procs) != 1
            ):
                return None
            j, k = a_procs[0], c_procs[0] - m
            if not (0 <= j < m and 0 <= k < m):
                return None
            sigma1.append(j)
            sigma2.append(k)
        if sorted(sigma1) != list(range(m)) or sorted(sigma2) != list(range(m)):
            return None
        return tuple(sigma1), tuple(sigma2)

    def schedule_meets_bound(self) -> bool:
        """Decide period <= 1 for the gadget.

        Uses the structure forced by the proof (each ``D`` stage alone on a
        fast processor; each block served by exactly one slow + one medium
        processor; the split point ``h_i`` of block ``i`` must satisfy
        ``z_{sigma2(i)} <= h_i`` and ``x_i + h_i <= M - y_{sigma1(i)}``), so
        the bound is met iff a perfect matching with
        ``x_i + y_j + z_k <= M`` exists — which the backtracking below
        decides.  Cross-checked against exhaustive search for tiny m in the
        test-suite.
        """
        m, M = self.source.m, self.source.M
        options = [
            [
                (j, k)
                for j in range(m)
                for k in range(m)
                if self.source.xs[i] + self.source.ys[j] + self.source.zs[k] <= M
            ]
            for i in range(m)
        ]
        order = sorted(range(m), key=lambda i: len(options[i]))
        used_y = [False] * m
        used_z = [False] * m

        def recurse(pos: int) -> bool:
            if pos == m:
                return True
            i = order[pos]
            for j, k in options[i]:
                if used_y[j] or used_z[k]:
                    continue
                used_y[j] = used_z[k] = True
                if recurse(pos + 1):
                    return True
                used_y[j] = used_z[k] = False
            return False

        return recurse(0)


# ======================================================================
# Theorem 12
# ======================================================================
@dataclass(frozen=True)
class Thm12Reduction:
    """2-PARTITION -> {heterogeneous fork, hom. platform (p=2), latency}.

    Fork with ``w0 = 1`` and branches ``a_1..a_m`` on two unit-speed
    processors; latency ``<= 1 + S/2`` iff YES.  Works identically with or
    without data-parallelism (the proof shows DP cannot be used).
    """

    source: TwoPartitionInstance

    @property
    def application(self) -> ForkApplication:
        return ForkApplication.from_works(
            1.0, [float(a) for a in self.source.values]
        )

    @property
    def platform(self) -> Platform:
        return Platform.homogeneous(2, 1.0)

    def spec(self, allow_data_parallel: bool = False) -> ProblemSpec:
        return ProblemSpec(self.application, self.platform, allow_data_parallel)

    @property
    def latency_threshold(self) -> float:
        return 1.0 + self.source.total / 2

    def yes_mapping(self, subset: frozenset[int]) -> ForkMapping:
        root_stages = (0, *sorted(i + 1 for i in subset))
        rest = tuple(
            sorted(i + 1 for i in range(self.source.m) if i not in subset)
        )
        groups = [
            GroupAssignment(
                stages=root_stages, processors=(0,),
                kind=AssignmentKind.REPLICATED,
            )
        ]
        if rest:
            groups.append(
                GroupAssignment(
                    stages=rest, processors=(1,), kind=AssignmentKind.REPLICATED
                )
            )
        return ForkMapping(
            application=self.application, platform=self.platform,
            groups=tuple(groups),
        )

    def extract_partition(self, mapping: ForkMapping) -> frozenset[int] | None:
        root = mapping.root_group
        subset = frozenset(i - 1 for i in root.stages if i != 0)
        if _subset_sum(self.source.values, subset) * 2 == self.source.total:
            return subset
        return None

    def schedule_meets_bound(self) -> bool:
        """Decide latency <= 1 + S/2 via exact two-machine scheduling
        (pseudo-polynomial, scales to large m)."""
        _, makespan = best_balanced_split(self.source)
        return 1.0 + makespan <= self.latency_threshold * (1 + FLOAT_TOL)


# ======================================================================
# Theorem 13
# ======================================================================
@dataclass(frozen=True)
class Thm13Reduction:
    """2-PARTITION -> {2-stage homogeneous fork, het. platform, DP}.

    Fork ``S0 -> S1`` with ``w0 = w1 = S/2`` on processors of speeds
    ``a_j`` — "this instance is indeed a pipeline" (paper), so the math is
    that of Theorem 5: latency ``<= 2`` / period ``<= 1`` iff YES.
    """

    source: TwoPartitionInstance

    def __post_init__(self) -> None:
        values = self.source.values
        S = self.source.total
        if len(set(values)) != len(values):
            raise ReproError("Thm 13 gadget requires pairwise distinct a_j")
        if any(2 * a >= S for a in values):
            raise ReproError("Thm 13 gadget requires a_j < S/2 for all j")

    @property
    def application(self) -> ForkApplication:
        half = self.source.total / 2
        return ForkApplication.from_works(half, [half])

    @property
    def platform(self) -> Platform:
        return Platform.heterogeneous([float(a) for a in self.source.values])

    @property
    def spec(self) -> ProblemSpec:
        return ProblemSpec(self.application, self.platform, allow_data_parallel=True)

    @property
    def period_threshold(self) -> float:
        return 1.0

    @property
    def latency_threshold(self) -> float:
        return 2.0

    def yes_mapping(self, subset: frozenset[int]) -> ForkMapping:
        rest = tuple(sorted(set(range(self.source.m)) - set(subset)))
        groups = (
            GroupAssignment(
                stages=(0,), processors=tuple(sorted(subset)),
                kind=AssignmentKind.DATA_PARALLEL,
            ),
            GroupAssignment(
                stages=(1,), processors=rest,
                kind=AssignmentKind.DATA_PARALLEL,
            ),
        )
        return ForkMapping(
            application=self.application, platform=self.platform, groups=groups
        )

    def extract_partition(self, mapping: ForkMapping) -> frozenset[int] | None:
        subset = frozenset(mapping.root_group.processors)
        if _subset_sum(self.source.values, subset) * 2 == self.source.total:
            return subset
        return None

    def schedule_meets_bound(
        self, objective: Objective, engine: str = "bnb"
    ) -> bool:
        """Decide the scheduling bound exactly (see :class:`Thm5Reduction`:
        the ``engine`` knob lifts the old flat-enumeration size limit)."""
        threshold = (
            self.period_threshold
            if objective is Objective.PERIOD
            else self.latency_threshold
        )
        best = _exact_optimal(self.spec, objective, engine)
        return best.objective_value(objective) <= threshold * (1 + FLOAT_TOL)


# ======================================================================
# Theorem 15
# ======================================================================
@dataclass(frozen=True)
class Thm15Reduction:
    """2-PARTITION -> {heterogeneous fork, het. platform, no DP, period}.

    Fork with ``w0 = S``, branches ``a_1..a_m`` and ``w_{m+1} = S``, on two
    processors of speeds ``5S/2`` and ``S/2``; period ``<= 1`` iff YES.
    """

    source: TwoPartitionInstance

    @property
    def application(self) -> ForkApplication:
        S = float(self.source.total)
        return ForkApplication.from_works(
            S, [*(float(a) for a in self.source.values), S]
        )

    @property
    def platform(self) -> Platform:
        S = self.source.total
        return Platform.heterogeneous([5 * S / 2, S / 2])

    @property
    def spec(self) -> ProblemSpec:
        return ProblemSpec(self.application, self.platform, allow_data_parallel=False)

    @property
    def period_threshold(self) -> float:
        return 1.0

    def yes_mapping(self, subset: frozenset[int]) -> ForkMapping:
        m = self.source.m
        p1_stages = (0, *sorted(i + 1 for i in subset), m + 1)
        p2_stages = tuple(sorted(i + 1 for i in range(m) if i not in subset))
        groups = [
            GroupAssignment(
                stages=p1_stages, processors=(0,), kind=AssignmentKind.REPLICATED
            )
        ]
        if p2_stages:
            groups.append(
                GroupAssignment(
                    stages=p2_stages, processors=(1,),
                    kind=AssignmentKind.REPLICATED,
                )
            )
        return ForkMapping(
            application=self.application, platform=self.platform,
            groups=tuple(groups),
        )

    def extract_partition(self, mapping: ForkMapping) -> frozenset[int] | None:
        m = self.source.m
        for group in mapping.groups:
            if 0 not in group.stages and (m + 1) not in group.stages:
                subset_other = frozenset(i - 1 for i in group.stages)
                subset = frozenset(range(m)) - subset_other
                if _subset_sum(self.source.values, subset_other) * 2 == (
                    self.source.total
                ):
                    return subset
        return None

    def schedule_meets_bound(self) -> bool:
        """Decide period <= 1 exactly.

        The proof forces: no replication (whole-fork replication yields
        period 3), both processors used, ``S_0`` and ``S_{m+1}`` on the fast
        processor, loads exactly (5S/2, S/2) — i.e. a subset of branches
        summing to ``S/2`` on the slow processor.  That is 2-PARTITION
        again, decided pseudo-polynomially; cross-checked by brute force on
        small instances in the test-suite.
        """
        subset, makespan = best_balanced_split(self.source)
        del subset
        return makespan * 2 == self.source.total
