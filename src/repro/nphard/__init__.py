"""NP-hardness toolkit: source problems and the paper's reductions.

The paper's NP-completeness proofs reduce from **2-PARTITION** (Theorems 5,
12, 13, 15) and from **NUMERICAL 3-DIMENSIONAL MATCHING** (Theorem 9, the
involved ``(**)`` entry).  This subpackage makes those proofs *executable*:

* :mod:`repro.nphard.two_partition` / :mod:`repro.nphard.n3dm` — instances,
  exact solvers (pseudo-polynomial subset-sum DP, backtracking matcher) and
  YES/NO instance generators;
* :mod:`repro.nphard.reductions` — one builder per theorem producing the
  scheduling gadget, the decision threshold, and the *back-mapping* that
  recovers a partition/matching from an optimal mapping, so the reductions
  can be verified end-to-end in the benchmarks.
"""

from .n3dm import N3DMInstance, random_n3dm_yes, solve_n3dm
from .reductions import (
    Thm5Reduction,
    Thm9Reduction,
    Thm12Reduction,
    Thm13Reduction,
    Thm15Reduction,
)
from .two_partition import (
    TwoPartitionInstance,
    best_balanced_split,
    random_two_partition,
    random_two_partition_yes,
    solve_two_partition,
)

__all__ = [
    "TwoPartitionInstance",
    "solve_two_partition",
    "best_balanced_split",
    "random_two_partition",
    "random_two_partition_yes",
    "N3DMInstance",
    "solve_n3dm",
    "random_n3dm_yes",
    "Thm5Reduction",
    "Thm9Reduction",
    "Thm12Reduction",
    "Thm13Reduction",
    "Thm15Reduction",
]
