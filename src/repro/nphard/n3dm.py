"""NUMERICAL 3-DIMENSIONAL MATCHING (N3DM).

N3DM (Garey & Johnson [12], problem SP16) is the source problem of the
paper's most involved reduction (Theorem 9): given ``3m`` numbers
:math:`x_1..x_m`, :math:`y_1..y_m`, :math:`z_1..z_m` and a bound ``M``, do
two permutations :math:`\\sigma_1, \\sigma_2` of ``{1..m}`` exist with
:math:`x_i + y_{\\sigma_1(i)} + z_{\\sigma_2(i)} = M` for all ``i``?

The problem is NP-complete *in the strong sense*, which the reduction
exploits by encoding ``M`` in unary (the gadget has ``(M+3)m`` stages).
The exact solver below is a backtracking matcher with fail-first ordering —
exponential in the worst case, but instant for the ``m <= 8`` gadget sizes
we can afford to schedule anyway.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.exceptions import ReproError

__all__ = ["N3DMInstance", "solve_n3dm", "random_n3dm_yes"]


@dataclass(frozen=True)
class N3DMInstance:
    """An N3DM instance; values use 0-based indexing internally."""

    xs: tuple[int, ...]
    ys: tuple[int, ...]
    zs: tuple[int, ...]
    M: int

    def __post_init__(self) -> None:
        m = len(self.xs)
        if not (len(self.ys) == len(self.zs) == m) or m == 0:
            raise ReproError("xs, ys, zs must have equal positive length")
        for v in (*self.xs, *self.ys, *self.zs):
            if not isinstance(v, int) or v <= 0:
                raise ReproError("N3DM values must be positive integers")

    @property
    def m(self) -> int:
        return len(self.xs)

    def satisfies_side_conditions(self) -> bool:
        """The pre-conditions the paper assumes WLOG: every value below
        ``M`` and the three sums totalling ``m M``."""
        if any(v >= self.M for v in (*self.xs, *self.ys, *self.zs)):
            return False
        return sum(self.xs) + sum(self.ys) + sum(self.zs) == self.m * self.M

    def is_yes(self) -> bool:
        return solve_n3dm(self) is not None


def solve_n3dm(
    instance: N3DMInstance,
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """Exact solver: permutations ``(sigma1, sigma2)`` (0-based: triple ``i``
    uses ``ys[sigma1[i]]`` and ``zs[sigma2[i]]``), or ``None``.

    Backtracking over the x's in order of fewest compatible (y, z) pairs.
    """
    m, M = instance.m, instance.M
    pairs: list[list[tuple[int, int]]] = []
    for x in instance.xs:
        options = [
            (j, k)
            for j in range(m)
            for k in range(m)
            if instance.ys[j] + instance.zs[k] == M - x
        ]
        pairs.append(options)
    order = sorted(range(m), key=lambda i: len(pairs[i]))
    used_y = [False] * m
    used_z = [False] * m
    sigma1 = [-1] * m
    sigma2 = [-1] * m

    def recurse(pos: int) -> bool:
        if pos == m:
            return True
        i = order[pos]
        for j, k in pairs[i]:
            if used_y[j] or used_z[k]:
                continue
            used_y[j] = used_z[k] = True
            sigma1[i], sigma2[i] = j, k
            if recurse(pos + 1):
                return True
            used_y[j] = used_z[k] = False
        return False

    if not recurse(0):
        return None
    return tuple(sigma1), tuple(sigma2)


def random_n3dm_yes(
    rng: random.Random, m: int, M: int | None = None
) -> N3DMInstance:
    """A YES instance by construction, satisfying the paper's side
    conditions (all values < M, sums equal to mM).

    Draw ``y_i, z_i`` in ``[1, M/3)`` and set ``x_i = M - y_a - z_b`` along
    random permutations; positivity holds because ``y + z < 2M/3 < M``.
    """
    if m < 1:
        raise ReproError("need m >= 1")
    if M is None:
        M = max(9, 3 * m)
    third = max(2, M // 3)
    ys = [rng.randint(1, third - 1) for _ in range(m)]
    zs = [rng.randint(1, third - 1) for _ in range(m)]
    perm1 = list(range(m))
    perm2 = list(range(m))
    rng.shuffle(perm1)
    rng.shuffle(perm2)
    xs = [M - ys[perm1[i]] - zs[perm2[i]] for i in range(m)]
    instance = N3DMInstance(xs=tuple(xs), ys=tuple(ys), zs=tuple(zs), M=M)
    if not instance.satisfies_side_conditions():  # pragma: no cover
        raise ReproError("internal: generated instance violates conditions")
    return instance
