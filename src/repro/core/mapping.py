"""Mapping representation: assigning stage groups to processor sets.

A mapping partitions the stages of an application into *groups* and assigns
each group a non-empty set of processors with an execution *kind*:

* :attr:`AssignmentKind.REPLICATED` — the group's interval of stages is
  replicated over its processors, which execute consecutive data sets in
  round-robin fashion (a single processor is the ``k = 1`` special case);
* :attr:`AssignmentKind.DATA_PARALLEL` — every data set's computation is
  shared among the processors proportionally to their speeds.

For pipelines, groups must be intervals of consecutive stages and only
length-1 intervals may be data-parallel.  For forks, groups are arbitrary
subsets of stages, exactly one contains the root, and a data-parallel group
may not mix the root with branch stages (Section 3.4).  These rules are
checked by :mod:`repro.core.validation`, not here, so that solvers can build
partial structures freely.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from .application import ForkApplication, ForkJoinApplication, PipelineApplication
from .exceptions import InvalidMappingError
from .platform import Platform

__all__ = [
    "AssignmentKind",
    "GroupAssignment",
    "PipelineMapping",
    "ForkMapping",
    "ForkJoinMapping",
]


class AssignmentKind(enum.Enum):
    """Execution regime of a processor group (Section 3.4)."""

    REPLICATED = "replicated"
    DATA_PARALLEL = "data-parallel"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GroupAssignment:
    """One group: a set of stages executed by a set of processors.

    ``stages`` holds *paper* stage indices (pipeline: 1-based; fork: 0 is the
    root) sorted increasingly.  ``processors`` holds 0-based platform indices
    sorted increasingly.  Both are tuples so the assignment is hashable.
    """

    stages: tuple[int, ...]
    processors: tuple[int, ...]
    kind: AssignmentKind = AssignmentKind.REPLICATED

    def __post_init__(self) -> None:
        if not self.stages:
            raise InvalidMappingError("a group must contain at least one stage")
        if not self.processors:
            raise InvalidMappingError("a group must use at least one processor")
        if tuple(sorted(self.stages)) != self.stages:
            object.__setattr__(self, "stages", tuple(sorted(self.stages)))
        if tuple(sorted(self.processors)) != self.processors:
            object.__setattr__(self, "processors", tuple(sorted(self.processors)))
        if len(set(self.stages)) != len(self.stages):
            raise InvalidMappingError(f"duplicate stages in group: {self.stages}")
        if len(set(self.processors)) != len(self.processors):
            raise InvalidMappingError(
                f"duplicate processors in group: {self.processors}"
            )

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of processors in the group."""
        return len(self.processors)

    @property
    def is_interval(self) -> bool:
        """True when the stages form a contiguous index interval."""
        return self.stages[-1] - self.stages[0] + 1 == len(self.stages)

    def work(self, works_by_index: dict[int, float]) -> float:
        """Total work of the group given a stage-index -> work table."""
        return sum(works_by_index[i] for i in self.stages)

    def describe(self) -> str:
        """Human-readable one-line description."""
        stages = ",".join(f"S{i}" for i in self.stages)
        procs = ",".join(f"P{u + 1}" for u in self.processors)
        return f"[{stages}] -> [{procs}] ({self.kind.value})"


def _check_disjoint_processors(groups: Sequence[GroupAssignment]) -> None:
    seen: set[int] = set()
    for group in groups:
        overlap = seen.intersection(group.processors)
        if overlap:
            raise InvalidMappingError(
                f"processors {sorted(overlap)} assigned to several groups"
            )
        seen.update(group.processors)


@dataclass(frozen=True)
class PipelineMapping:
    """An interval mapping of a pipeline (Sections 3.3-3.4).

    ``groups`` are ordered by stage interval; together they must partition
    ``1..n``.  Structural coherence is checked here; the *model* rules (which
    kinds are allowed where) live in :mod:`repro.core.validation` so invalid
    hypothetical mappings can still be constructed and priced by tests.
    """

    application: PipelineApplication
    platform: Platform
    groups: tuple[GroupAssignment, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise InvalidMappingError("mapping needs at least one group")
        expected = 1
        for group in self.groups:
            if not group.is_interval or group.stages[0] != expected:
                raise InvalidMappingError(
                    "pipeline groups must form consecutive intervals covering "
                    f"1..n; got group starting at {group.stages[0]}, expected "
                    f"{expected}"
                )
            expected = group.stages[-1] + 1
        if expected != self.application.n + 1:
            raise InvalidMappingError(
                f"groups cover 1..{expected - 1} but the pipeline has "
                f"{self.application.n} stages"
            )
        _check_disjoint_processors(self.groups)
        for group in self.groups:
            for u in group.processors:
                if not 0 <= u < self.platform.p:
                    raise InvalidMappingError(f"no processor {u} on this platform")

    @property
    def used_processors(self) -> tuple[int, ...]:
        return tuple(sorted(u for g in self.groups for u in g.processors))

    def describe(self) -> str:
        return " | ".join(group.describe() for group in self.groups)


@dataclass(frozen=True)
class ForkMapping:
    """A mapping of a fork graph: a partition of ``{0..n}`` into groups.

    The paper keeps the word *interval* for these subsets; they need not be
    contiguous.  Exactly one group contains the root stage 0.
    """

    application: ForkApplication
    platform: Platform
    groups: tuple[GroupAssignment, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise InvalidMappingError("mapping needs at least one group")
        n = self.application.n
        covered: set[int] = set()
        for group in self.groups:
            for i in group.stages:
                if not 0 <= i <= self._max_stage_index():
                    raise InvalidMappingError(f"no stage {i} in this application")
                if i in covered:
                    raise InvalidMappingError(f"stage {i} mapped twice")
                covered.add(i)
        expected = set(range(self._max_stage_index() + 1))
        if covered != expected:
            raise InvalidMappingError(
                f"groups must partition all stages; missing {sorted(expected - covered)}"
            )
        _check_disjoint_processors(self.groups)
        for group in self.groups:
            for u in group.processors:
                if not 0 <= u < self.platform.p:
                    raise InvalidMappingError(f"no processor {u} on this platform")
        del n

    def _max_stage_index(self) -> int:
        return self.application.n

    @property
    def root_group(self) -> GroupAssignment:
        """The group holding :math:`S_0`."""
        for group in self.groups:
            if 0 in group.stages:
                return group
        raise InvalidMappingError("no group contains the root stage")

    @property
    def non_root_groups(self) -> tuple[GroupAssignment, ...]:
        return tuple(g for g in self.groups if 0 not in g.stages)

    @property
    def used_processors(self) -> tuple[int, ...]:
        return tuple(sorted(u for g in self.groups for u in g.processors))

    def describe(self) -> str:
        return " | ".join(group.describe() for group in self.groups)


@dataclass(frozen=True)
class ForkJoinMapping(ForkMapping):
    """A mapping of a fork-join graph (Section 6.3).

    Stage ``n + 1`` is the join; it may share a group with the root, with
    branch stages, or sit alone.
    """

    application: ForkJoinApplication

    def _max_stage_index(self) -> int:
        return self.application.n + 1

    @property
    def join_group(self) -> GroupAssignment:
        """The group holding :math:`S_{n+1}`."""
        join_index = self.application.n + 1
        for group in self.groups:
            if join_index in group.stages:
                return group
        raise InvalidMappingError("no group contains the join stage")
