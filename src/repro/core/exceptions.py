"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
distinguishing model errors (bad instances) from mapping errors (invalid
assignments) and solver errors (infeasible thresholds, unsupported variants).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidApplicationError",
    "InvalidPlatformError",
    "InvalidMappingError",
    "InfeasibleProblemError",
    "UnsupportedVariantError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class InvalidApplicationError(ReproError):
    """An application graph violates the model (e.g. non-positive work)."""


class InvalidPlatformError(ReproError):
    """A platform description violates the model (e.g. non-positive speed)."""


class InvalidMappingError(ReproError):
    """A mapping violates the rules of Section 3.4 of the paper.

    Examples: overlapping processor sets, a data-parallelized interval of
    length >= 2 in a pipeline, or a fork root stage data-parallelized together
    with independent stages.
    """


class InfeasibleProblemError(ReproError):
    """No mapping satisfies the requested threshold(s)."""


class UnsupportedVariantError(ReproError):
    """The requested solver does not handle this problem variant.

    Raised e.g. when a polynomial algorithm that requires a homogeneous
    application is invoked on a heterogeneous one.  The caller should fall
    back to an exact solver or a heuristic (the variant is NP-hard).
    """
