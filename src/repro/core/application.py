"""Application graphs: pipeline, fork and fork-join workflows.

The paper restricts attention to two archetype workflow graphs (Section 3.1):

* an *n*-stage **pipeline** :math:`S_1 \\to S_2 \\to \\dots \\to S_n`
  (Figure 1), and
* an *(n+1)*-stage **fork**: a root :math:`S_0` feeding *n* independent
  stages :math:`S_1 .. S_n` (Figure 2),

plus the **fork-join** extension of Section 6.3 where a final stage
:math:`S_{n+1}` gathers all branch results.

An application is *homogeneous* when all its (branch) stages have equal work;
several polynomial results of the paper only hold for homogeneous
applications, so the classes expose :attr:`is_homogeneous`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from .exceptions import InvalidApplicationError
from .stage import Stage

__all__ = [
    "PipelineApplication",
    "ForkApplication",
    "ForkJoinApplication",
]

_REL_TOL = 1e-12


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(1.0, abs(a), abs(b))


def _build_stages(
    works: Sequence[float],
    data_sizes: Sequence[float] | None,
    first_index: int,
    dp_overheads: Sequence[float] | None = None,
) -> tuple[Stage, ...]:
    """Build consecutive stages from works and the chain of data sizes.

    ``data_sizes`` is the paper's :math:`\\delta` vector: ``data_sizes[k]`` is
    the size of the data flowing *into* stage ``k`` (0-based within
    ``works``), and ``data_sizes[len(works)]`` is the final output size.  If
    ``None``, all sizes default to zero (the simplified model).
    ``dp_overheads`` are the per-stage Amdahl overheads :math:`f_k`
    (Section 3.3 extension; default zero).
    """
    n = len(works)
    if data_sizes is None:
        data_sizes = [0.0] * (n + 1)
    if len(data_sizes) != n + 1:
        raise InvalidApplicationError(
            f"need {n + 1} data sizes for {n} stages, got {len(data_sizes)}"
        )
    if dp_overheads is None:
        dp_overheads = [0.0] * n
    if len(dp_overheads) != n:
        raise InvalidApplicationError(
            f"need {n} dp_overheads for {n} stages, got {len(dp_overheads)}"
        )
    return tuple(
        Stage(
            index=first_index + k,
            work=float(works[k]),
            input_size=float(data_sizes[k]),
            output_size=float(data_sizes[k + 1]),
            dp_overhead=float(dp_overheads[k]),
        )
        for k in range(n)
    )


@dataclass(frozen=True)
class PipelineApplication:
    """A linear pipeline :math:`S_1 \\to \\dots \\to S_n` (paper Figure 1).

    Stages are stored 0-based internally (``stages[0]`` is the paper's
    :math:`S_1`) but keep their 1-based paper index in :attr:`Stage.index`.
    """

    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise InvalidApplicationError("a pipeline needs at least one stage")
        for k, stage in enumerate(self.stages):
            if stage.index != k + 1:
                raise InvalidApplicationError(
                    f"pipeline stages must be numbered 1..n, got {stage.index} "
                    f"at position {k}"
                )
        for left, right in zip(self.stages, self.stages[1:]):
            if not _close(left.output_size, right.input_size):
                raise InvalidApplicationError(
                    f"data size mismatch between {left.label} (out "
                    f"{left.output_size}) and {right.label} (in {right.input_size})"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_works(
        cls,
        works: Sequence[float],
        data_sizes: Sequence[float] | None = None,
        dp_overheads: Sequence[float] | None = None,
    ) -> "PipelineApplication":
        """Build a pipeline from per-stage works (plus optional data sizes
        and Amdahl data-parallelization overheads)."""
        return cls(
            stages=_build_stages(
                works, data_sizes, first_index=1, dp_overheads=dp_overheads
            )
        )

    @classmethod
    def homogeneous(cls, n: int, work: float = 1.0) -> "PipelineApplication":
        """A *homogeneous pipeline*: ``n`` identical stages of given work."""
        if n < 1:
            raise InvalidApplicationError("n must be >= 1")
        return cls.from_works([work] * n)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of stages."""
        return len(self.stages)

    @property
    def works(self) -> tuple[float, ...]:
        """Per-stage works :math:`(w_1, ..., w_n)`."""
        return tuple(stage.work for stage in self.stages)

    @property
    def total_work(self) -> float:
        """Total work :math:`\\sum_k w_k` of one data set."""
        return sum(self.works)

    @property
    def is_homogeneous(self) -> bool:
        """True when every stage has the same work (paper: *hom. pipeline*)."""
        first = self.stages[0].work
        return all(_close(stage.work, first) for stage in self.stages)

    def interval_work(self, start: int, end: int) -> float:
        """Work of the interval of 0-based stages ``start..end`` inclusive."""
        if not 0 <= start <= end < self.n:
            raise IndexError(f"bad interval [{start}, {end}] for n={self.n}")
        return sum(stage.work for stage in self.stages[start : end + 1])

    def __iter__(self) -> Iterable[Stage]:
        return iter(self.stages)


@dataclass(frozen=True)
class ForkApplication:
    """A fork graph: root :math:`S_0` plus independent :math:`S_1..S_n`.

    Consecutive data sets traverse :math:`S_0` first; its output feeds all
    branch stages, which may run simultaneously (paper Figure 2).
    """

    root: Stage
    branches: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if self.root.index != 0:
            raise InvalidApplicationError("fork root must have index 0")
        if not self.branches:
            raise InvalidApplicationError("a fork needs at least one branch stage")
        for k, stage in enumerate(self.branches):
            if stage.index != k + 1:
                raise InvalidApplicationError(
                    f"fork branches must be numbered 1..n, got {stage.index}"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_works(
        cls,
        root_work: float,
        branch_works: Sequence[float],
        root_output_size: float = 0.0,
    ) -> "ForkApplication":
        """Build a fork from the root work and the branch works."""
        root = Stage(index=0, work=float(root_work), output_size=root_output_size)
        branches = tuple(
            Stage(index=k + 1, work=float(w), input_size=root_output_size)
            for k, w in enumerate(branch_works)
        )
        return cls(root=root, branches=branches)

    @classmethod
    def homogeneous(
        cls, n: int, root_work: float = 1.0, branch_work: float = 1.0
    ) -> "ForkApplication":
        """A *homogeneous fork*: root work :math:`w_0`, n equal branches."""
        if n < 1:
            raise InvalidApplicationError("n must be >= 1")
        return cls.from_works(root_work, [branch_work] * n)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of branch stages (the graph has ``n + 1`` stages total)."""
        return len(self.branches)

    @property
    def all_stages(self) -> tuple[Stage, ...]:
        """All stages, root first: :math:`(S_0, S_1, ..., S_n)`."""
        return (self.root, *self.branches)

    @property
    def branch_works(self) -> tuple[float, ...]:
        return tuple(stage.work for stage in self.branches)

    @property
    def total_work(self) -> float:
        """Total work of one data set: :math:`w_0 + \\sum_{k \\geq 1} w_k`."""
        return self.root.work + sum(self.branch_works)

    @property
    def is_homogeneous(self) -> bool:
        """True when every *branch* has the same work (paper: *hom. fork*).

        The paper's homogeneous fork allows the root weight :math:`w_0` to
        differ from the common branch weight :math:`w`.
        """
        first = self.branches[0].work
        return all(_close(stage.work, first) for stage in self.branches)

    def stage(self, index: int) -> Stage:
        """Return stage by paper index (0 = root, 1..n = branches)."""
        if index == 0:
            return self.root
        if 1 <= index <= self.n:
            return self.branches[index - 1]
        raise IndexError(f"no stage {index} in fork with n={self.n}")


@dataclass(frozen=True)
class ForkJoinApplication(ForkApplication):
    """Fork-join graph of Section 6.3: a final :math:`S_{n+1}` joins results.

    Every complexity result of the fork carries over; the polynomial
    algorithms are extended with extra loops over the join group (see
    :mod:`repro.algorithms.forkjoin`).
    """

    join: Stage = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.join is None:
            raise InvalidApplicationError("fork-join needs a join stage")
        if self.join.index != self.n + 1:
            raise InvalidApplicationError(
                f"join stage must have index n+1 = {self.n + 1}, "
                f"got {self.join.index}"
            )

    @classmethod
    def from_works(  # type: ignore[override]
        cls,
        root_work: float,
        branch_works: Sequence[float],
        join_work: float,
        root_output_size: float = 0.0,
    ) -> "ForkJoinApplication":
        root = Stage(index=0, work=float(root_work), output_size=root_output_size)
        branches = tuple(
            Stage(index=k + 1, work=float(w), input_size=root_output_size)
            for k, w in enumerate(branch_works)
        )
        join = Stage(index=len(branches) + 1, work=float(join_work))
        return cls(root=root, branches=branches, join=join)

    @classmethod
    def homogeneous(  # type: ignore[override]
        cls,
        n: int,
        root_work: float = 1.0,
        branch_work: float = 1.0,
        join_work: float = 1.0,
    ) -> "ForkJoinApplication":
        if n < 1:
            raise InvalidApplicationError("n must be >= 1")
        return cls.from_works(root_work, [branch_work] * n, join_work)

    @property
    def all_stages(self) -> tuple[Stage, ...]:
        return (self.root, *self.branches, self.join)

    @property
    def total_work(self) -> float:
        return self.root.work + sum(self.branch_works) + self.join.work

    def stage(self, index: int) -> Stage:
        if index == self.n + 1:
            return self.join
        return super().stage(index)
