"""Vectorized batch evaluation of candidate mappings (numpy kernel).

:func:`repro.core.costs.evaluate` prices one mapping at a time, rebuilding
the per-stage work/overhead tables and walking the groups in Python on every
call.  That is the right single source of truth, but it is far too slow for
callers that score *many* candidate mappings of the same instance — the
local-search neighbourhood (hundreds of candidates per round), the random
baseline portfolio, and the branch-and-bound benchmarks.

:class:`BatchEvaluator` precomputes the instance tables once and evaluates a
whole list of mappings in a handful of numpy operations:

1. all groups of all candidate mappings are flattened into parallel arrays
   ``(work, dp_overhead, min_speed, sum_speed, k, is_dp)`` — per-subset and
   per-stage-set lookups are memoized across candidates, so repeated groups
   (the common case in a neighbourhood) cost one dict hit;
2. per-group periods and delays are computed in one vectorized shot::

       period = where(is_dp, overhead + work / sum_speed,
                             work / (k * min_speed))
       delay  = where(is_dp, overhead + work / sum_speed, work / min_speed)

3. per-mapping aggregation uses ``np.maximum.reduceat`` / ``np.add.reduceat``
   over the flattened group arrays (mappings hold contiguous group runs).

The formulas mirror :mod:`repro.core.costs` exactly — including the fork
flexible model, the fork-join branch/join phases and the Amdahl
``dp_overhead`` extension — and the equivalence is pinned down by the
property tests in ``tests/core/test_batch_eval.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .application import ForkApplication, ForkJoinApplication
from .costs import FLOAT_TOL, evaluate
from .exceptions import ReproError
from .mapping import AssignmentKind, ForkJoinMapping, ForkMapping, PipelineMapping

__all__ = [
    "BatchEvaluator",
    "batch_evaluate",
    "feasible_argmin",
    "last_improvement_scan",
]


def last_improvement_scan(
    values: np.ndarray, start: float, tol: float = FLOAT_TOL
) -> tuple[int | None, float]:
    """Replay the sequential strict-improvement incumbent scan, vectorized.

    The exact engines accept a candidate only when it beats the running
    incumbent by more than ``tol`` (``value < best - tol``), and the
    *last* accepted candidate wins.  That recurrence is order-sensitive —
    a plain ``argmin`` would pick a different representative among
    near-ties — so batch scoring must replay it faithfully.  The
    vectorized form rests on one fact: every accepted candidate also
    strictly improves the running minimum of everything seen before it
    (the incumbent never exceeds that minimum by more than ``tol``), so
    the accumulated-minimum prefilter keeps every possible update and the
    exact scalar recurrence only runs over that short candidate list.

    Returns ``(index, incumbent)``: the index of the last accepted
    candidate (``None`` when nothing improves) and the final incumbent
    value.  Infeasible candidates should be masked to ``inf`` upstream.
    """
    m = len(values)
    if m == 0:
        return None, start
    running = np.empty(m)
    running[0] = start
    if m > 1:
        np.minimum(np.minimum.accumulate(values[:-1]), start, out=running[1:])
    best = start
    pick: int | None = None
    for i in np.nonzero(values < running)[0]:
        v = values[i]
        if v < best - tol:
            best = float(v)
            pick = int(i)
    return pick, best


def feasible_argmin(
    periods: np.ndarray,
    latencies: np.ndarray,
    values: np.ndarray,
    period_bound: float | None = None,
    latency_bound: float | None = None,
) -> int | None:
    """Index of the smallest feasible value, or ``None`` when none is.

    Shared selection step of the batch-scored heuristics: candidates whose
    period/latency exceed a threshold (with the global ``FLOAT_TOL``
    semantics) are masked out before the argmin.
    """
    infeasible = np.zeros(len(values), dtype=bool)
    if period_bound is not None:
        infeasible |= periods > period_bound * (1 + FLOAT_TOL)
    if latency_bound is not None:
        infeasible |= latencies > latency_bound * (1 + FLOAT_TOL)
    masked = np.where(infeasible, np.inf, values)
    pick = int(np.argmin(masked))
    return None if not np.isfinite(masked[pick]) else pick


class BatchEvaluator:
    """Evaluate arrays of candidate mappings of one ``(application, platform)``.

    All mappings passed to :meth:`evaluate` must share the application and
    platform given at construction (this is what lets the stage tables and
    processor-subset metrics be hoisted out of the per-candidate loop).
    """

    def __init__(self, application, platform) -> None:
        self.application = application
        self.platform = platform
        stages = (
            application.all_stages
            if isinstance(application, ForkApplication)
            else application.stages
        )
        self._works = {stage.index: stage.work for stage in stages}
        self._overheads = {stage.index: stage.dp_overhead for stage in stages}
        self._speeds = platform.speeds
        self._is_forkjoin = isinstance(application, ForkJoinApplication)
        self._is_fork = isinstance(application, ForkApplication)
        self._join_index = application.n + 1 if self._is_forkjoin else None
        # memo caches shared across evaluate() calls
        self._subset_cache: dict[tuple[int, ...], tuple[float, float, int]] = {}
        self._stageset_cache: dict[
            tuple[int, ...], tuple[float, float, float, float]
        ] = {}

    # ------------------------------------------------------------------
    # memoized per-group lookups
    # ------------------------------------------------------------------
    def _subset_metrics(self, procs: tuple[int, ...]) -> tuple[float, float, int]:
        """(min_speed, sum_speed, k) of a processor subset, memoized."""
        got = self._subset_cache.get(procs)
        if got is None:
            speeds = [self._speeds[u] for u in procs]
            got = (min(speeds), sum(speeds), len(speeds))
            self._subset_cache[procs] = got
        return got

    def _stageset_metrics(
        self, stages: tuple[int, ...]
    ) -> tuple[float, float, float, float]:
        """(work, overhead, branch_work, branch_overhead) of a stage set.

        ``branch_*`` exclude the root and join stages (fork-join phases);
        they are zero-cost to compute for pipelines and plain forks too.
        """
        got = self._stageset_cache.get(stages)
        if got is None:
            work = sum(self._works[i] for i in stages)
            overhead = sum(self._overheads[i] for i in stages)
            branch = [
                i for i in stages if i != 0 and i != self._join_index
            ]
            branch_work = sum(self._works[i] for i in branch)
            branch_overhead = sum(self._overheads[i] for i in branch)
            got = (work, overhead, branch_work, branch_overhead)
            self._stageset_cache[stages] = got
        return got

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, mappings: Sequence) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(periods, latencies)`` arrays for the candidate mappings."""
        m = len(mappings)
        if m == 0:
            return np.empty(0), np.empty(0)

        counts = np.fromiter(
            (len(mp.groups) for mp in mappings), dtype=np.intp, count=m
        )
        total = int(counts.sum())
        work = np.empty(total)
        overhead = np.empty(total)
        branch_work = np.empty(total)
        branch_overhead = np.empty(total)
        min_speed = np.empty(total)
        sum_speed = np.empty(total)
        ks = np.empty(total)
        is_dp = np.zeros(total, dtype=bool)
        is_root = np.zeros(total, dtype=bool)
        is_join = np.zeros(total, dtype=bool)
        root_w0_term = np.empty(m)  # t0 of each mapping (fork shapes)
        join_time = np.empty(m)

        join_index = self._join_index
        j = 0
        for mi, mapping in enumerate(mappings):
            for group in mapping.groups:
                w, f, bw, bf = self._stageset_metrics(group.stages)
                ms, ss, k = self._subset_metrics(group.processors)
                dp = group.kind is AssignmentKind.DATA_PARALLEL
                work[j] = w
                overhead[j] = f
                branch_work[j] = bw
                branch_overhead[j] = bf
                min_speed[j] = ms
                sum_speed[j] = ss
                ks[j] = k
                is_dp[j] = dp
                if self._is_fork:
                    if 0 in group.stages:
                        is_root[j] = True
                        w0 = self._works[0]
                        if dp:
                            # a data-parallel root group holds S0 alone
                            root_w0_term[mi] = self._overheads[0] + w0 / ss
                        else:
                            root_w0_term[mi] = w0 / ms
                    if join_index is not None and join_index in group.stages:
                        is_join[j] = True
                        wj = self._works[join_index]
                        if dp:
                            join_time[mi] = (
                                (self._overheads[join_index] + wj / ss)
                                if wj > 0
                                else 0.0
                            )
                        else:
                            join_time[mi] = wj / ms
                j += 1

        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])

        dp_time = np.where(work > 0, overhead + work / sum_speed, 0.0)
        g_period = np.where(is_dp, dp_time, work / (ks * min_speed))
        g_delay = np.where(is_dp, dp_time, work / min_speed)

        periods = np.maximum.reduceat(g_period, starts)

        if not self._is_fork:
            latencies = np.add.reduceat(g_delay, starts)
            return periods, latencies

        t0 = root_w0_term  # per-mapping root completion time
        t0_g = np.repeat(t0, counts)  # broadcast to group granularity
        if self._is_forkjoin:
            # phase 2: every group runs its branch stages from t0
            dp_phase = np.where(
                branch_work > 0, branch_overhead + branch_work / sum_speed, 0.0
            )
            phase = np.where(is_dp, dp_phase, branch_work / min_speed)
            done = np.where(is_root | (branch_work > 0), t0_g + phase, t0_g)
            branches_done = np.maximum.reduceat(done, starts)
            latencies = branches_done + join_time
            return periods, latencies

        # plain fork: max(root delay, t0 + max non-root delay)
        root_delay = np.maximum.reduceat(
            np.where(is_root, g_delay, -np.inf), starts
        )
        others = np.maximum.reduceat(
            np.where(is_root, -np.inf, g_delay), starts
        )
        latencies = np.where(
            np.isneginf(others), root_delay, np.maximum(root_delay, t0 + others)
        )
        return periods, latencies

    # ------------------------------------------------------------------
    def cross_check(self, mappings: Sequence, rtol: float = 1e-9) -> None:
        """Assert the kernel agrees with :func:`repro.core.costs.evaluate`.

        Used by the simulator-validation benchmark and the property tests as
        a guard against formula drift between the scalar and vector paths.
        """
        periods, latencies = self.evaluate(mappings)
        for mapping, bp, bl in zip(mappings, periods, latencies):
            period, latency = evaluate(mapping)
            if not (
                np.isclose(bp, period, rtol=rtol)
                and np.isclose(bl, latency, rtol=rtol)
            ):
                raise ReproError(
                    f"batch evaluator disagrees with costs.evaluate: "
                    f"({bp}, {bl}) vs ({period}, {latency}) "
                    f"for {mapping.describe()}"
                )


def batch_evaluate(mappings: Sequence) -> tuple[np.ndarray, np.ndarray]:
    """One-shot convenience: evaluate mappings sharing an instance.

    Builds a throwaway :class:`BatchEvaluator` from the first mapping; use
    the class directly when evaluating repeatedly for the same instance.
    """
    if not mappings:
        return np.empty(0), np.empty(0)
    first = mappings[0]
    if not isinstance(first, (PipelineMapping, ForkMapping, ForkJoinMapping)):
        raise ReproError(f"cannot batch-evaluate {type(first).__name__}")
    return BatchEvaluator(first.application, first.platform).evaluate(mappings)
