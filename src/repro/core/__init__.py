"""Core model: applications, platforms, mappings and cost evaluation.

This subpackage implements the framework of Section 3 of the paper:
application graphs (pipeline / fork / fork-join), target platforms
(homogeneous / heterogeneous), interval mappings with replication and
data-parallelism, the simplified cost model of Section 3.4 and the
communication-aware model of Section 3.3.
"""

from .application import ForkApplication, ForkJoinApplication, PipelineApplication
from .batch_eval import BatchEvaluator, batch_evaluate
from .comm_costs import (
    CommunicationModel,
    OnePortInterval,
    interval_costs,
    pipeline_latency_with_comm,
    pipeline_period_with_comm,
)
from .costs import (
    FLOAT_TOL,
    evaluate,
    fork_latency,
    fork_period,
    forkjoin_latency,
    forkjoin_period,
    group_delay,
    group_period,
    pipeline_latency,
    pipeline_period,
)
from .exceptions import (
    InfeasibleProblemError,
    InvalidApplicationError,
    InvalidMappingError,
    InvalidPlatformError,
    ReproError,
    UnsupportedVariantError,
)
from .mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from .platform import IN, OUT, Interconnect, Platform, Processor
from .stage import Stage
from .validation import (
    is_valid,
    validate,
    validate_fork_mapping,
    validate_forkjoin_mapping,
    validate_pipeline_mapping,
)

__all__ = [
    "Stage",
    "PipelineApplication",
    "ForkApplication",
    "ForkJoinApplication",
    "Processor",
    "Interconnect",
    "Platform",
    "IN",
    "OUT",
    "AssignmentKind",
    "GroupAssignment",
    "PipelineMapping",
    "ForkMapping",
    "ForkJoinMapping",
    "FLOAT_TOL",
    "group_period",
    "group_delay",
    "pipeline_period",
    "pipeline_latency",
    "fork_period",
    "fork_latency",
    "forkjoin_period",
    "forkjoin_latency",
    "evaluate",
    "BatchEvaluator",
    "batch_evaluate",
    "CommunicationModel",
    "OnePortInterval",
    "interval_costs",
    "pipeline_period_with_comm",
    "pipeline_latency_with_comm",
    "validate",
    "is_valid",
    "validate_pipeline_mapping",
    "validate_fork_mapping",
    "validate_forkjoin_mapping",
    "ReproError",
    "InvalidApplicationError",
    "InvalidPlatformError",
    "InvalidMappingError",
    "InfeasibleProblemError",
    "UnsupportedVariantError",
]
