"""General cost model with communication (Section 3.3, Equations 1-2).

The paper *defines* — but deliberately does not solve — a model where
interval ``I_j = [d_j, e_j]`` of a pipeline is mapped on a single processor
``alloc(j)`` and pays linear communication costs on its input and output:

.. math::
   T_{period} = \\max_{1 \\leq j \\leq m} \\Big\\{
       \\frac{\\delta_{d_j - 1}}{b_{alloc(j-1), alloc(j)}}
       + \\frac{\\sum_{i=d_j}^{e_j} w_i}{s_{alloc(j)}}
       + \\frac{\\delta_{e_j}}{b_{alloc(j), alloc(j+1)}} \\Big\\}   \\tag{1}

.. math::
   T_{latency} = \\sum_{1 \\leq j \\leq m} \\Big\\{ \\dots \\Big\\}   \\tag{2}

with ``alloc(0) = in`` and ``alloc(m+1) = out``.  Summing the three terms per
processor corresponds to the *strict one-port* model (receive, compute and
send serialized); we also provide a fully-overlapped variant (max of the
three terms) which models the *bounded multi-port* model with overlap, the
other extreme discussed in Section 3.2.

Communication between intervals mapped (unusually) on the same processor is
free, as is communication of zero-size data.

This module exists because the paper argues the simplified model is the
tractable core of these formulas; providing both lets the examples quantify
what the simplification ignores.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from .application import PipelineApplication
from .exceptions import InvalidMappingError, InvalidPlatformError
from .platform import IN, OUT, Platform

__all__ = [
    "CommunicationModel",
    "OnePortInterval",
    "interval_costs",
    "pipeline_period_with_comm",
    "pipeline_latency_with_comm",
]


class CommunicationModel(enum.Enum):
    """How a processor's receive / compute / send phases combine."""

    #: strict one-port: the three phases are serialized (sum).
    ONE_PORT_STRICT = "one-port-strict"
    #: fully overlapped multi-port: phases overlap (max).
    MULTI_PORT_OVERLAP = "multi-port-overlap"


@dataclass(frozen=True)
class OnePortInterval:
    """One interval of a communication-aware pipeline mapping.

    ``start``/``end`` are 1-based paper stage indices (inclusive);
    ``processor`` is a 0-based platform index.
    """

    start: int
    end: int
    processor: int


def _transfer_time(
    platform: Platform, size: float, src: int, dst: int
) -> float:
    if size == 0.0 or src == dst:
        return 0.0
    if platform.interconnect is None:
        raise InvalidPlatformError(
            "this platform has no interconnect description; build it with a "
            "bandwidth (e.g. Platform.homogeneous(p, bandwidth=...)) to use "
            "the communication-aware model"
        )
    return size / platform.interconnect.link(src, dst)


def interval_costs(
    application: PipelineApplication,
    platform: Platform,
    intervals: Sequence[OnePortInterval],
    model: CommunicationModel = CommunicationModel.ONE_PORT_STRICT,
) -> list[float]:
    """Per-interval cycle times (the braces of Eq. 1-2), in interval order."""
    if not intervals:
        raise InvalidMappingError("need at least one interval")
    expected = 1
    for itv in intervals:
        if itv.start != expected or itv.end < itv.start:
            raise InvalidMappingError(
                f"intervals must partition 1..n; got [{itv.start},{itv.end}] "
                f"expected start {expected}"
            )
        expected = itv.end + 1
    if expected != application.n + 1:
        raise InvalidMappingError("intervals do not cover all stages")

    costs: list[float] = []
    for j, itv in enumerate(intervals):
        prev_proc = IN if j == 0 else intervals[j - 1].processor
        next_proc = OUT if j == len(intervals) - 1 else intervals[j + 1].processor
        in_size = application.stages[itv.start - 1].input_size
        out_size = application.stages[itv.end - 1].output_size
        recv = _transfer_time(platform, in_size, prev_proc, itv.processor)
        send = _transfer_time(platform, out_size, itv.processor, next_proc)
        compute = (
            application.interval_work(itv.start - 1, itv.end - 1)
            / platform.processors[itv.processor].speed
        )
        if model is CommunicationModel.ONE_PORT_STRICT:
            costs.append(recv + compute + send)
        else:
            costs.append(max(recv, compute, send))
    return costs


def pipeline_period_with_comm(
    application: PipelineApplication,
    platform: Platform,
    intervals: Sequence[OnePortInterval],
    model: CommunicationModel = CommunicationModel.ONE_PORT_STRICT,
) -> float:
    """Equation (1): max per-interval cycle time."""
    return max(interval_costs(application, platform, intervals, model))


def pipeline_latency_with_comm(
    application: PipelineApplication,
    platform: Platform,
    intervals: Sequence[OnePortInterval],
    model: CommunicationModel = CommunicationModel.ONE_PORT_STRICT,
) -> float:
    """Equation (2): sum of per-interval cycle times."""
    return sum(interval_costs(application, platform, intervals, model))
