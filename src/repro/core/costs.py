"""Simplified-model cost evaluation (Section 3.4 of the paper).

All communication costs are neglected.  For a group of total work :math:`W`
mapped on processors of speeds :math:`s_1..s_k`:

* **replicated**: period :math:`W / (k \\cdot \\min_u s_u)`, delay
  :math:`t_{max} = W / \\min_u s_u` (round-robin over data sets, bounded by
  the slowest processor);
* **data-parallel**: period = delay = :math:`F + W / \\sum_u s_u`, where
  :math:`F` is the group's fixed sequential overhead — the Amdahl's-law
  term of Section 3.3 (:attr:`repro.core.stage.Stage.dp_overhead`, summed
  over member stages).  The paper's simplified model, and therefore every
  theorem, takes :math:`F = 0`; non-zero overheads are a documented
  extension supported by the evaluator, the brute-force solvers and the
  simulator (the per-theorem polynomial solvers require :math:`F = 0`).

Graph-level metrics:

* **pipeline**: :math:`T_{period} = \\max_j \\mathrm{period}_j`,
  :math:`T_{latency} = \\sum_j \\mathrm{delay}_j`;
* **fork** (flexible model): non-root groups start as soon as :math:`S_0`
  completes, i.e.

  .. math::
     T_{latency} = \\max\\Big(t_{max}(1),\\;
         t_0 + \\max_{r \\geq 2} t_{max}(r)\\Big)

  where :math:`t_0` is the root-stage completion time — :math:`w_0 / \\min_u
  s_u` for a replicated root group, :math:`f_0 + w_0 / \\sum_u s_u` for a
  data-parallel one (which then holds :math:`S_0` alone);
* **fork-join** (Section 6.3, our flexible model documented in DESIGN.md):
  the join group first runs its own branch stages, the join work starts once
  *every* group finished its branch stages, and the period simply adds the
  join work to its group's load.

These functions are the single source of truth: every solver, the brute
force reference and the discrete-event simulator are validated against them.
"""

from __future__ import annotations

from collections.abc import Sequence

from .application import ForkApplication, ForkJoinApplication
from .exceptions import ReproError
from .mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)

__all__ = [
    "FLOAT_TOL",
    "group_period",
    "group_delay",
    "pipeline_period",
    "pipeline_latency",
    "fork_period",
    "fork_latency",
    "forkjoin_period",
    "forkjoin_latency",
    "evaluate",
]

#: Comparison tolerance used throughout the solvers (floating-point costs).
FLOAT_TOL = 1e-9


def _checked_min_speed(speeds: Sequence[float]) -> float:
    """Validate a group's speeds and return the minimum.

    Raising :class:`ReproError` here turns the otherwise-cryptic
    ``ZeroDivisionError`` / ``min() arg is an empty sequence`` failures of
    malformed groups into actionable messages at the model boundary.
    """
    if len(speeds) == 0:
        raise ReproError(
            "group cost needs at least one processor speed (empty speeds "
            "sequence)"
        )
    s_min = min(speeds)
    if s_min <= 0:
        raise ReproError(
            f"group speeds must be positive, got {s_min!r} in {list(speeds)!r}"
        )
    return s_min


def group_period(
    work: float,
    speeds: Sequence[float],
    kind: AssignmentKind,
    dp_overhead: float = 0.0,
) -> float:
    """Period of one group: minimum interval between consecutive data sets."""
    s_min = _checked_min_speed(speeds)
    if kind is AssignmentKind.DATA_PARALLEL:
        return dp_overhead + work / sum(speeds)
    return work / (len(speeds) * s_min)


def group_delay(
    work: float,
    speeds: Sequence[float],
    kind: AssignmentKind,
    dp_overhead: float = 0.0,
) -> float:
    """Traversal delay of one group for a single data set.

    For a replicated group this is the time of the slowest processor
    (:math:`t_{max}` in the paper); for a data-parallel group it equals the
    period.
    """
    s_min = _checked_min_speed(speeds)
    if kind is AssignmentKind.DATA_PARALLEL:
        return dp_overhead + work / sum(speeds)
    return work / s_min


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _stages_of(app):
    return app.all_stages if isinstance(app, ForkApplication) else app.stages


def _works_table(mapping: PipelineMapping | ForkMapping) -> dict[int, float]:
    return {stage.index: stage.work for stage in _stages_of(mapping.application)}


def _overheads_table(mapping) -> dict[int, float]:
    return {
        stage.index: stage.dp_overhead
        for stage in _stages_of(mapping.application)
    }


def _group_overhead(mapping, group: GroupAssignment) -> float:
    """Fixed sequential overhead paid by a data-parallel group (the f_i of
    its member stages, each paid once per data set)."""
    if group.kind is not AssignmentKind.DATA_PARALLEL:
        return 0.0
    table = _overheads_table(mapping)
    return sum(table[i] for i in group.stages)


def _group_speeds(mapping, group: GroupAssignment) -> tuple[float, ...]:
    return mapping.platform.subset_speeds(group.processors)


def _group_metrics(mapping, group: GroupAssignment) -> tuple[float, float]:
    """(period, delay) of a group within a mapping."""
    work = group.work(_works_table(mapping))
    speeds = _group_speeds(mapping, group)
    overhead = _group_overhead(mapping, group)
    return (
        group_period(work, speeds, group.kind, overhead),
        group_delay(work, speeds, group.kind, overhead),
    )


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------
def pipeline_period(mapping: PipelineMapping) -> float:
    """:math:`T_{period}` of a pipeline mapping (max group period)."""
    return max(_group_metrics(mapping, g)[0] for g in mapping.groups)


def pipeline_latency(mapping: PipelineMapping) -> float:
    """:math:`T_{latency}` of a pipeline mapping (sum of group delays)."""
    return sum(_group_metrics(mapping, g)[1] for g in mapping.groups)


# ----------------------------------------------------------------------
# fork
# ----------------------------------------------------------------------
def fork_period(mapping: ForkMapping) -> float:
    """:math:`T_{period}` of a fork mapping (max group period)."""
    return max(_group_metrics(mapping, g)[0] for g in mapping.groups)


def _root_completion_time(mapping: ForkMapping) -> float:
    """Time :math:`t_0` at which the root stage completes."""
    root = mapping.root_group
    speeds = _group_speeds(mapping, root)
    w0 = mapping.application.root.work
    if root.kind is AssignmentKind.DATA_PARALLEL:
        # a data-parallel root group holds S0 alone (validation rule)
        return mapping.application.root.dp_overhead + w0 / sum(speeds)
    return w0 / min(speeds)


def fork_latency(mapping: ForkMapping) -> float:
    """:math:`T_{latency}` of a fork mapping under the flexible model."""
    root = mapping.root_group
    t_root_group = _group_metrics(mapping, root)[1]
    others = mapping.non_root_groups
    if not others:
        return t_root_group
    t0 = _root_completion_time(mapping)
    t_rest = max(_group_metrics(mapping, g)[1] for g in others)
    return max(t_root_group, t0 + t_rest)


# ----------------------------------------------------------------------
# fork-join (Section 6.3)
# ----------------------------------------------------------------------
def forkjoin_period(mapping: ForkJoinMapping) -> float:
    """:math:`T_{period}` of a fork-join mapping (max group period).

    The join work counts toward its group's load exactly like any stage.
    """
    return max(_group_metrics(mapping, g)[0] for g in mapping.groups)


def _phase_time(
    work: float,
    speeds: Sequence[float],
    kind: AssignmentKind,
    dp_overhead: float,
) -> float:
    """Time for a group to process ``work`` of one data set (one phase)."""
    if kind is AssignmentKind.DATA_PARALLEL:
        return (dp_overhead + work / sum(speeds)) if work > 0 else 0.0
    return work / min(speeds)


def forkjoin_latency(mapping: ForkJoinMapping) -> float:
    """:math:`T_{latency}` of a fork-join mapping (flexible model).

    Timeline for one data set:

    1. the root group processes :math:`S_0`, finishing at :math:`t_0`;
    2. every group processes its branch stages: the root group right after
       :math:`S_0` (no restart), the others starting at :math:`t_0`;
    3. once **all** branch stages are complete, the join group processes
       :math:`S_{n+1}` at its effective speed.
    """
    app: ForkJoinApplication = mapping.application
    works = {stage.index: stage.work for stage in app.all_stages}
    overheads = {stage.index: stage.dp_overhead for stage in app.all_stages}
    join_index = app.n + 1

    root = mapping.root_group
    join = mapping.join_group
    t0 = _root_completion_time(mapping)

    branches_done = 0.0
    for group in mapping.groups:
        speeds = _group_speeds(mapping, group)
        branch_stages = [i for i in group.stages if i != 0 and i != join_index]
        branch_work = sum(works[i] for i in branch_stages)
        overhead = sum(overheads[i] for i in branch_stages)
        phase = _phase_time(branch_work, speeds, group.kind, overhead)
        done = t0 + phase if (group is root or branch_work > 0) else t0
        branches_done = max(branches_done, done)

    join_speeds = _group_speeds(mapping, join)
    join_time = _phase_time(
        works[join_index], join_speeds, join.kind, overheads[join_index]
    )
    return branches_done + join_time


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def evaluate(mapping) -> tuple[float, float]:
    """Return ``(period, latency)`` of any mapping type."""
    if isinstance(mapping, ForkJoinMapping):
        return forkjoin_period(mapping), forkjoin_latency(mapping)
    if isinstance(mapping, ForkMapping):
        return fork_period(mapping), fork_latency(mapping)
    if isinstance(mapping, PipelineMapping):
        return pipeline_period(mapping), pipeline_latency(mapping)
    raise TypeError(f"cannot evaluate {type(mapping).__name__}")
