"""Model-rule validation for mappings (Section 3.4 constraints).

The :mod:`repro.core.mapping` classes check *structural* coherence (groups
partition the stages, processors are disjoint).  This module checks the
*model* rules that define which mappings the paper's optimization problems
admit:

* pipeline: only intervals of length 1 may be data-parallelized ("we do not
  allow stage intervals of length at least 2 to be data-parallelized");
* fork: the root :math:`S_0` may not be data-parallelized together with
  other stages (but ``{S_0}`` alone may be); any set of independent branch
  stages may share a data-parallel group;
* fork-join: the join :math:`S_{n+1}` obeys the same rule as the root —
  it may only be data-parallelized alone;
* when the problem forbids data-parallelism altogether, no group may be
  data-parallel.

Each check raises :class:`~repro.core.exceptions.InvalidMappingError` with a
message naming the violated rule, or returns silently.
"""

from __future__ import annotations

from .exceptions import InvalidMappingError
from .mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    PipelineMapping,
)

__all__ = [
    "validate_pipeline_mapping",
    "validate_fork_mapping",
    "validate_forkjoin_mapping",
    "validate",
    "is_valid",
]


def _check_data_parallel_allowed(groups, allow_data_parallel: bool) -> None:
    if allow_data_parallel:
        return
    for group in groups:
        if group.kind is AssignmentKind.DATA_PARALLEL:
            raise InvalidMappingError(
                f"data-parallelism is not allowed in this problem variant, "
                f"but group {group.describe()} uses it"
            )


def validate_pipeline_mapping(
    mapping: PipelineMapping, allow_data_parallel: bool = True
) -> None:
    """Check the pipeline rules of Section 3.4."""
    _check_data_parallel_allowed(mapping.groups, allow_data_parallel)
    for group in mapping.groups:
        if group.kind is AssignmentKind.DATA_PARALLEL and len(group.stages) > 1:
            raise InvalidMappingError(
                "pipeline intervals of length >= 2 cannot be data-parallelized "
                f"(group {group.describe()})"
            )


def validate_fork_mapping(
    mapping: ForkMapping, allow_data_parallel: bool = True
) -> None:
    """Check the fork rules of Section 3.4."""
    _check_data_parallel_allowed(mapping.groups, allow_data_parallel)
    for group in mapping.groups:
        if (
            group.kind is AssignmentKind.DATA_PARALLEL
            and 0 in group.stages
            and len(group.stages) > 1
        ):
            raise InvalidMappingError(
                "the fork root cannot be data-parallelized together with "
                f"independent stages (group {group.describe()})"
            )


def validate_forkjoin_mapping(
    mapping: ForkJoinMapping, allow_data_parallel: bool = True
) -> None:
    """Check the fork-join rules (Section 6.3 + Section 3.4)."""
    validate_fork_mapping(mapping, allow_data_parallel)
    join_index = mapping.application.n + 1
    for group in mapping.groups:
        if (
            group.kind is AssignmentKind.DATA_PARALLEL
            and join_index in group.stages
            and len(group.stages) > 1
        ):
            raise InvalidMappingError(
                "the join stage cannot be data-parallelized together with "
                f"other stages (group {group.describe()})"
            )


def validate(mapping, allow_data_parallel: bool = True) -> None:
    """Dispatch to the right validator for the mapping type."""
    if isinstance(mapping, ForkJoinMapping):
        validate_forkjoin_mapping(mapping, allow_data_parallel)
    elif isinstance(mapping, ForkMapping):
        validate_fork_mapping(mapping, allow_data_parallel)
    elif isinstance(mapping, PipelineMapping):
        validate_pipeline_mapping(mapping, allow_data_parallel)
    else:
        raise TypeError(f"cannot validate {type(mapping).__name__}")


def is_valid(mapping, allow_data_parallel: bool = True) -> bool:
    """Boolean twin of :func:`validate`."""
    try:
        validate(mapping, allow_data_parallel)
    except InvalidMappingError:
        return False
    return True
