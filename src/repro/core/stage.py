"""Workflow stages.

A stage is the atomic unit of the application graphs of the paper: it
performs ``work`` floating-point operations per data set, receives an input
of size ``input_size`` and emits an output of size ``output_size`` (the
:math:`\\delta` values of Section 3.1).  Data sizes are only used by the
communication-aware cost model (:mod:`repro.core.comm_costs`); the simplified
model of Section 3.4 ignores them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exceptions import InvalidApplicationError

__all__ = ["Stage"]


@dataclass(frozen=True, slots=True)
class Stage:
    """One stage :math:`S_k` of a workflow graph.

    Parameters
    ----------
    index:
        Position of the stage in its graph.  For pipelines stages are
        numbered ``1..n`` as in the paper; for forks the root is ``0``.
    work:
        Number of computations :math:`w_k` (flops) required per data set.
        Must be positive: the paper's stages always perform work, and a
        zero-work stage would make replication groups degenerate.
    input_size:
        Size :math:`\\delta_{k-1}` of the input received from the previous
        stage (or the outside world).  Ignored by the simplified model.
    output_size:
        Size :math:`\\delta_k` of the output.  Ignored by the simplified
        model.
    dp_overhead:
        Fixed sequential overhead :math:`f_k` paid *only* when the stage is
        data-parallelized (Section 3.3: "we may assume that a fraction of
        the computations is inherently sequential ... introduce a fixed
        overhead f_i"; the Amdahl's-law term).  The paper's simplified
        model and all its theorems assume ``dp_overhead == 0``; the cost
        evaluator, brute-force solvers and simulator support non-zero
        overheads as a documented extension.
    name:
        Optional human-readable label used in reports and traces.
    """

    index: int
    work: float
    input_size: float = 0.0
    output_size: float = 0.0
    dp_overhead: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise InvalidApplicationError(
                f"stage {self.index}: work must be positive, got {self.work!r}"
            )
        if self.input_size < 0 or self.output_size < 0:
            raise InvalidApplicationError(
                f"stage {self.index}: data sizes must be non-negative"
            )
        if self.dp_overhead < 0:
            raise InvalidApplicationError(
                f"stage {self.index}: dp_overhead must be non-negative"
            )

    @property
    def label(self) -> str:
        """Display name: the explicit ``name`` if given, else ``S<index>``."""
        return self.name or f"S{self.index}"

    def time_on(self, speed: float) -> float:
        """Time for a processor of the given speed to execute this stage."""
        return self.work / speed
