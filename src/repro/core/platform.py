"""Target platforms: clusters of (possibly different-speed) processors.

The paper targets a fully interconnected clique of ``p`` processors
:math:`P_1..P_p` where :math:`P_u` has speed :math:`s_u` (Section 3.2).  A
platform is *homogeneous* when all speeds are equal, *heterogeneous*
otherwise.  The simplified model (Section 3.4) ignores the interconnect; the
general model attaches a bandwidth :math:`b_{u,v}` to every processor pair,
plus two virtual processors ``Pin``/``Pout`` for the outside world, which we
expose through an optional :class:`Interconnect`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .exceptions import InvalidPlatformError

__all__ = ["Processor", "Interconnect", "Platform", "IN", "OUT"]

#: Virtual processor indices for the outside world (general model only).
IN = -1
OUT = -2

_REL_TOL = 1e-12


@dataclass(frozen=True, slots=True)
class Processor:
    """One processor :math:`P_u` with speed :math:`s_u`.

    ``index`` is 0-based.  Executing ``X`` operations takes ``X / speed``
    time units (linear cost model).
    """

    index: int
    speed: float

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise InvalidPlatformError(
                f"processor {self.index}: speed must be positive, got {self.speed!r}"
            )

    @property
    def label(self) -> str:
        return f"P{self.index + 1}"


@dataclass(frozen=True)
class Interconnect:
    """Bandwidths of the (virtual) clique, for the general model.

    ``bandwidth[u][v]`` is :math:`b_{u,v}`; sending a message of size ``X``
    over the link takes ``X / b_{u,v}`` time units.  ``in_bandwidths[u]`` /
    ``out_bandwidths[u]`` are the links from ``Pin`` to :math:`P_u` and from
    :math:`P_u` to ``Pout``.  The simplified model never consults this class.
    """

    bandwidth: tuple[tuple[float, ...], ...]
    in_bandwidths: tuple[float, ...]
    out_bandwidths: tuple[float, ...]

    def __post_init__(self) -> None:
        p = len(self.bandwidth)
        for row in self.bandwidth:
            if len(row) != p:
                raise InvalidPlatformError("bandwidth matrix must be square")
            for b in row:
                if b <= 0:
                    raise InvalidPlatformError("bandwidths must be positive")
        if len(self.in_bandwidths) != p or len(self.out_bandwidths) != p:
            raise InvalidPlatformError(
                "in/out bandwidth vectors must have one entry per processor"
            )
        for b in (*self.in_bandwidths, *self.out_bandwidths):
            if b <= 0:
                raise InvalidPlatformError("bandwidths must be positive")

    @classmethod
    def uniform(cls, p: int, bandwidth: float = 1.0) -> "Interconnect":
        """All links share one bandwidth (homogeneous interconnect)."""
        row = (float(bandwidth),) * p
        return cls(
            bandwidth=tuple(row for _ in range(p)),
            in_bandwidths=row,
            out_bandwidths=row,
        )

    def link(self, u: int, v: int) -> float:
        """Bandwidth between endpoints; endpoints may be :data:`IN`/:data:`OUT`."""
        if u == IN:
            return self.in_bandwidths[v]
        if v == OUT:
            return self.out_bandwidths[u]
        return self.bandwidth[u][v]


@dataclass(frozen=True)
class Platform:
    """A cluster of processors, optionally with an interconnect description."""

    processors: tuple[Processor, ...]
    interconnect: Interconnect | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.processors:
            raise InvalidPlatformError("a platform needs at least one processor")
        for k, proc in enumerate(self.processors):
            if proc.index != k:
                raise InvalidPlatformError(
                    f"processors must be numbered 0..p-1, got {proc.index} at {k}"
                )
        if self.interconnect is not None and len(
            self.interconnect.bandwidth
        ) != len(self.processors):
            raise InvalidPlatformError("interconnect size mismatch")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls, p: int, speed: float = 1.0, bandwidth: float | None = None
    ) -> "Platform":
        """``p`` identical processors (paper: *Homogeneous platform*)."""
        if p < 1:
            raise InvalidPlatformError("p must be >= 1")
        inter = None if bandwidth is None else Interconnect.uniform(p, bandwidth)
        return cls(
            processors=tuple(Processor(index=u, speed=speed) for u in range(p)),
            interconnect=inter,
        )

    @classmethod
    def heterogeneous(
        cls,
        speeds: Sequence[float],
        interconnect: Interconnect | None = None,
    ) -> "Platform":
        """Processors with the given speeds (paper: *Heterogeneous platform*)."""
        return cls(
            processors=tuple(
                Processor(index=u, speed=float(s)) for u, s in enumerate(speeds)
            ),
            interconnect=interconnect,
        )

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of processors."""
        return len(self.processors)

    @property
    def speeds(self) -> tuple[float, ...]:
        return tuple(proc.speed for proc in self.processors)

    @property
    def speed_array(self) -> np.ndarray:
        """Speeds as a numpy vector (for vectorized cost evaluation)."""
        return np.array(self.speeds, dtype=float)

    @property
    def total_speed(self) -> float:
        """Aggregate compute capacity :math:`\\sum_u s_u`."""
        return sum(self.speeds)

    @property
    def is_homogeneous(self) -> bool:
        first = self.processors[0].speed
        return all(
            abs(proc.speed - first) <= _REL_TOL * max(1.0, first)
            for proc in self.processors
        )

    @property
    def fastest(self) -> Processor:
        """The fastest processor (ties broken by lowest index)."""
        return max(self.processors, key=lambda proc: (proc.speed, -proc.index))

    def sorted_by_speed(self, descending: bool = False) -> tuple[Processor, ...]:
        """Processors sorted by speed (stable; ties keep index order)."""
        return tuple(
            sorted(self.processors, key=lambda proc: proc.speed, reverse=descending)
        )

    def subset_speeds(self, indices: Sequence[int]) -> tuple[float, ...]:
        """Speeds of the given processor indices (order preserved)."""
        return tuple(self.processors[u].speed for u in indices)

    def min_speed(self, indices: Sequence[int]) -> float:
        return min(self.subset_speeds(indices))

    def sum_speed(self, indices: Sequence[int]) -> float:
        return sum(self.subset_speeds(indices))
