"""Aggregation of campaign results: summaries, gaps, Pareto comparisons.

Everything here consumes the plain-dict result rows produced by
:mod:`repro.campaign.runner` (live, or re-loaded from a JSONL results
file), so reports can be regenerated without re-solving anything.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

from ..analysis.report import format_table
from ..core.exceptions import ReproError
from .profile import percentile

__all__ = [
    "summarize",
    "timing_breakdown",
    "heuristic_gap",
    "pareto_comparison",
    "pareto_fronts_doc",
    "save_pareto_fronts",
    "load_pareto_fronts",
]

#: ``kind`` discriminator / format version of the Pareto-front artifact.
PARETO_DOC_KIND = "pareto-fronts"
PARETO_DOC_VERSION = 1


def _rows_of(result_or_rows) -> list[dict]:
    rows = getattr(result_or_rows, "rows", result_or_rows)
    return list(rows)


def _group_key(row: dict) -> tuple:
    return (
        row["instance_id"],
        row["objective"],
        row.get("period_bound"),
        row.get("latency_bound"),
    )


# ----------------------------------------------------------------------
# summary table
# ----------------------------------------------------------------------
def _resolution_of(row: dict) -> str:
    """The row's resolution, derived for rows saved before the field."""
    resolution = row.get("resolution")
    if resolution is not None:
        return resolution
    if row.get("cached"):
        return "cached-ok" if row["status"] == "ok" else "cached-error"
    return "solved"


def summarize(result_or_rows, title: str = "campaign summary") -> str:
    """One line per (solver, objective): counts, values, time, cache use.

    The ``cached-ok / cached-err / solved / retried`` columns break the
    task count down by how each row was obtained — on a resumed
    ``retry_errors`` run this is the at-a-glance answer to "what was
    re-solved and what came from the cache".  ``crashed`` counts tasks
    quarantined after killing their worker process; ``budget`` counts
    anytime rows whose solve budget ran out
    (``execution.status == "budget_exhausted"``).
    """
    rows = _rows_of(result_or_rows)
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault((row["solver"], row["objective"]), []).append(row)
    table = []
    for (solver, objective), members in sorted(groups.items()):
        ok = [r for r in members if r["status"] == "ok"]
        values = [r["value"] for r in ok]
        seconds = sum(r["seconds"] for r in members)
        resolutions = [_resolution_of(r) for r in members]
        table.append([
            solver,
            objective,
            str(len(members)),
            str(len(ok)),
            str(len(members) - len(ok)),
            str(resolutions.count("cached-ok")),
            str(resolutions.count("cached-error")),
            str(resolutions.count("solved")),
            str(resolutions.count("retried")),
            str(resolutions.count("crashed")),
            str(sum(
                1 for r in members
                if (r.get("execution") or {}).get("status")
                == "budget_exhausted"
            )),
            f"{statistics.mean(values):.4g}" if values else "-",
            f"{statistics.median(values):.4g}" if values else "-",
            f"{seconds:.3f}",
        ])
    return format_table(
        ["solver", "objective", "tasks", "ok", "errors", "cached-ok",
         "cached-err", "solved", "retried", "crashed", "budget",
         "mean value", "median value", "solve (s)"],
        table,
        title=title,
    )


# ----------------------------------------------------------------------
# per-engine timing breakdown
# ----------------------------------------------------------------------
def timing_breakdown(result_or_rows,
                     title: str = "engine timing breakdown") -> str:
    """One line per solving engine: wall time and search effort.

    Aggregates the volatile ``timing`` blocks
    (:class:`~repro.obs.solvestats.SolveStats`) of the rows that carry
    one — cached rows keep their original solve's block, so the table
    reports what the solves *cost when they ran*, not this run's cache
    lookups.  Returns ``""`` when no row has timing (results saved
    before the field existed); callers can print the result unguarded.
    """
    rows = _rows_of(result_or_rows)
    groups: dict[str, list[dict]] = {}
    for row in rows:
        timing = row.get("timing")
        if timing:
            groups.setdefault(timing.get("engine") or "-", []).append(timing)
    if not groups:
        return ""
    table = []
    for engine, timings in sorted(groups.items()):
        seconds = [t.get("seconds", 0.0) for t in timings]
        table.append([
            engine,
            str(len(timings)),
            f"{sum(seconds):.3f}",
            f"{1e3 * statistics.mean(seconds):.2f}",
            f"{1e3 * percentile(seconds, 0.95):.2f}",
            str(sum(t.get("nodes") or 0 for t in timings)),
            str(sum(t.get("pruned") or 0 for t in timings)),
            str(sum(t.get("memo_hits") or 0 for t in timings)),
        ])
    return format_table(
        ["engine", "rows", "total (s)", "mean (ms)", "p95 (ms)",
         "nodes", "pruned", "memo hits"],
        table,
        title=title,
    )


# ----------------------------------------------------------------------
# heuristic-gap statistics
# ----------------------------------------------------------------------
def heuristic_gap(
    result_or_rows,
    baseline: str,
    title: str = "heuristic gap vs baseline",
) -> tuple[dict, str]:
    """Per-solver value ratios against a baseline solver.

    Rows are matched by (instance, objective, bounds); for every non-
    baseline solver the ratio ``value / baseline_value`` is collected over
    the instances where both solves succeeded.  Returns ``(stats, table)``
    where ``stats[solver]`` holds ``count / mean / median / max`` ratios —
    the standard quality summary of a heuristic-vs-exact campaign.
    """
    rows = _rows_of(result_or_rows)
    base: dict[tuple, dict] = {}
    for row in rows:
        if row["solver"] == baseline and row["status"] == "ok":
            base[_group_key(row)] = row
    if not base:
        raise ReproError(
            f"no successful rows for baseline solver {baseline!r}"
        )
    ratios: dict[str, list[float]] = {}
    for row in rows:
        if row["solver"] == baseline or row["status"] != "ok":
            continue
        anchor = base.get(_group_key(row))
        if anchor is None or not anchor["value"]:
            continue
        ratios.setdefault(row["solver"], []).append(
            row["value"] / anchor["value"]
        )
    stats: dict[str, dict] = {}
    table = []
    for solver, values in sorted(ratios.items()):
        stats[solver] = {
            "count": len(values),
            "mean": statistics.mean(values),
            "median": statistics.median(values),
            "max": max(values),
        }
        table.append([
            solver,
            str(len(values)),
            f"{stats[solver]['mean']:.4f}",
            f"{stats[solver]['median']:.4f}",
            f"{stats[solver]['max']:.4f}",
        ])
    text = format_table(
        ["solver", "instances", "mean ratio", "median ratio", "max ratio"],
        table,
        title=f"{title} ({baseline!r} = 1.0)",
    )
    return stats, text


# ----------------------------------------------------------------------
# multi-instance Pareto comparison
# ----------------------------------------------------------------------
def pareto_comparison(
    instances,
    num_points: int = 16,
    exact_fallback: bool = False,
    engine: str = "bnb",
    cache=None,
    workers: int = 0,
    title: str = "Pareto fronts",
) -> tuple[dict, str]:
    """Period/latency trade-off curves for several instances side by side.

    ``instances`` is an iterable of ``(instance_id, ProblemSpec)`` pairs;
    each front is traced through the campaign runner (sharing ``cache`` and
    ``workers``), so overlapping comparisons re-use threshold solves.
    Returns ``(fronts, table)`` with ``fronts[instance_id]`` the list of
    non-dominated :class:`~repro.algorithms.problem.Solution` objects.
    """
    from ..analysis.pareto import pareto_front

    fronts: dict[str, list] = {}
    table = []
    for iid, spec in instances:
        front = pareto_front(
            spec,
            num_points=num_points,
            exact_fallback=exact_fallback,
            engine=engine,
            cache=cache,
            workers=workers,
        )
        fronts[iid] = front
        periods = [s.period for s in front]
        latencies = [s.latency for s in front]
        table.append([
            iid,
            str(len(front)),
            f"{min(periods):.4g}",
            f"{max(periods):.4g}",
            f"{min(latencies):.4g}",
            f"{max(latencies):.4g}",
        ])
    text = format_table(
        ["instance", "points", "min period", "max period",
         "min latency", "max latency"],
        table,
        title=title,
    )
    return fronts, text


# ----------------------------------------------------------------------
# machine-readable Pareto-front artifacts (for plotting pipelines)
# ----------------------------------------------------------------------
def pareto_fronts_doc(fronts: dict, num_points: int | None = None) -> dict:
    """Serialize ``{instance_id: [Solution, ...]}`` fronts to a JSON doc.

    Points keep full float precision (JSON round-trips Python floats
    exactly) and carry the winning mapping document, so a plotting
    pipeline can annotate points — or re-validate them — without
    re-solving.
    """
    from ..serialization import mapping_to_dict

    doc: dict = {"kind": PARETO_DOC_KIND, "version": PARETO_DOC_VERSION}
    if num_points is not None:
        doc["num_points"] = num_points
    doc["fronts"] = {
        iid: [
            {
                "period": sol.period,
                "latency": sol.latency,
                "algorithm": sol.meta.get("algorithm"),
                "mapping": mapping_to_dict(sol.mapping),
            }
            for sol in front
        ]
        for iid, front in fronts.items()
    }
    return doc


def save_pareto_fronts(path: str | Path, fronts: dict,
                       num_points: int | None = None) -> dict:
    """Write the fronts artifact to ``path``; returns the document."""
    doc = pareto_fronts_doc(fronts, num_points=num_points)
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def load_pareto_fronts(path: str | Path) -> dict:
    """Read an artifact written by :func:`save_pareto_fronts`."""
    path = Path(path)
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or doc.get("kind") != PARETO_DOC_KIND:
        raise ReproError(f"{path} is not a {PARETO_DOC_KIND!r} document")
    if doc.get("version") != PARETO_DOC_VERSION:
        raise ReproError(
            f"unsupported {PARETO_DOC_KIND} version {doc.get('version')!r} "
            f"(this library reads version {PARETO_DOC_VERSION})"
        )
    return doc
