"""Campaign subsystem: declarative experiment grids at scale.

Turns "solve one instance" into "run an experiment campaign":

* :mod:`repro.campaign.spec` — versioned, JSON-round-trippable
  :class:`CampaignSpec` describing instances x objectives x solvers;
* :mod:`repro.campaign.cache` — content-addressed persistent
  :class:`ResultCache` with pluggable storage backends (sharded JSONL,
  a single sqlite database, or a remote solver service over HTTP),
  keyed by canonical instance+config hashes so re-runs and overlapping
  campaigns re-use every solve; superseded records are reclaimed by
  ``compact()``, which also takes age/size eviction policies;
* :mod:`repro.campaign.runner` — process-pool executor with chunked
  fan-out, per-task failure isolation and deterministic result rows
  (``workers=0`` serial mode is the bit-identical reference);
  ``retry_errors=True`` resumes a partially-failed campaign re-solving
  only the cached error rows;
* :mod:`repro.campaign.report` — summary tables, per-engine timing
  breakdowns, heuristic-gap statistics and multi-instance Pareto
  comparisons over result rows;
* :mod:`repro.campaign.profile` — latency-percentile / search-effort
  profiles aggregated from the ``timing`` blocks a warm cache already
  holds (see ``docs/OBSERVABILITY.md``);
* :mod:`repro.campaign.chaos` — fault-injection wrappers
  (:class:`ChaosBackend`) for exercising the fault-tolerance layer: the
  crash-isolating runner, the :class:`CircuitBreakerBackend` remote-cache
  breaker and its spill journal (see ``docs/ROBUSTNESS.md``).

Exposed on the CLI as ``python -m repro campaign run / report / pareto /
cache / profile``.

Quick start::

    from repro.campaign import CampaignSpec, ResultCache, run_campaign

    spec = CampaignSpec(
        name="demo",
        instances=({"type": "random", "graph": "pipeline", "count": 50,
                    "seed": 7, "n": [4, 6], "p": [3, 5]},),
        objectives=("period",),
        solvers=({"name": "exact", "mode": "auto", "exact_fallback": True},
                 {"name": "random", "mode": "random", "seed": 1}),
    )
    result = run_campaign(spec, cache=ResultCache(".repro-cache"), workers=4)
"""

from .cache import (
    CACHE_BACKENDS,
    CACHE_VERSION,
    CacheBackend,
    CircuitBreakerBackend,
    HttpCacheBackend,
    JsonlBackend,
    ResultCache,
    SqliteBackend,
)
from .chaos import ChaosBackend, ChaosError
from .profile import (
    collect_timings,
    percentile,
    profile_doc,
    profile_groups,
    profile_table,
)
from .report import (
    heuristic_gap,
    load_pareto_fronts,
    pareto_comparison,
    pareto_fronts_doc,
    save_pareto_fronts,
    summarize,
    timing_breakdown,
)
from .runner import (
    VOLATILE_FIELDS,
    CampaignResult,
    execute_tasks,
    load_rows,
    run_campaign,
    save_rows,
    strip_volatile,
)
from .spec import SPEC_VERSION, CampaignSpec, SolverConfig, Task

__all__ = [
    "SPEC_VERSION",
    "CACHE_VERSION",
    "CACHE_BACKENDS",
    "CampaignSpec",
    "SolverConfig",
    "Task",
    "CacheBackend",
    "JsonlBackend",
    "SqliteBackend",
    "HttpCacheBackend",
    "CircuitBreakerBackend",
    "ChaosBackend",
    "ChaosError",
    "ResultCache",
    "CampaignResult",
    "VOLATILE_FIELDS",
    "strip_volatile",
    "execute_tasks",
    "run_campaign",
    "save_rows",
    "load_rows",
    "summarize",
    "timing_breakdown",
    "heuristic_gap",
    "pareto_comparison",
    "pareto_fronts_doc",
    "save_pareto_fronts",
    "load_pareto_fronts",
    "percentile",
    "collect_timings",
    "profile_groups",
    "profile_doc",
    "profile_table",
]
