"""Declarative experiment campaigns: what to solve, with which solvers.

A :class:`CampaignSpec` is a versioned, JSON-round-trippable description of
a grid of *instances* x *objectives* x *solver configurations*.  Expanding
a spec yields the flat, deterministic list of :class:`Task` rows that
:mod:`repro.campaign.runner` executes (in any order) and re-assembles.

Instance sources (the ``instances`` list) come in three shapes::

    {"type": "explicit", "application": {...}, "platform": {...},
     "allow_data_parallel": false, "id": "optional-name"}
    {"type": "scenario", "name": "image-pipeline"}
    {"type": "random", "graph": "pipeline" | "fork" | "forkjoin",
     "count": 20, "seed": 7, "n": 5 | [4, 7], "p": 4 | [3, 6],
     "work_low": 1, "work_high": 20, "speed_low": 1, "speed_high": 10,
     "homogeneous_app": false, "homogeneous_platform": false,
     "allow_data_parallel": false}

Random families draw through :mod:`repro.generators` from an explicit seed,
so a spec document *is* the experiment: the same file always expands to the
same instances, hence the same cache keys.

Objectives are ``{"objective": "period" | "latency",
"period_bound": K | null, "latency_bound": K | null}`` (a bare string is
accepted as shorthand).  Solver configurations are :class:`SolverConfig`.
"""

from __future__ import annotations

import functools
import json
import random
from dataclasses import dataclass, field, replace

from ..algorithms.budget import Budget
from ..core.exceptions import ReproError
from ..generators import (
    random_fork,
    random_forkjoin,
    random_pipeline,
    random_platform,
)
from ..serialization import (
    application_to_dict,
    content_hash,
    normalized_instance_dict,
    platform_to_dict,
)

__all__ = [
    "SPEC_VERSION",
    "SolverConfig",
    "Task",
    "CampaignSpec",
    "canonical_solver_dict",
]

#: Version of the campaign spec document format (checked on load).
SPEC_VERSION = 1

_MODES = ("auto", "exact", "heuristic", "random")
_ENGINES = ("bnb", "enumerate", "milp")


@dataclass(frozen=True)
class SolverConfig:
    """One solver column of the campaign grid.

    ``mode`` selects the route:

    * ``"auto"`` — :func:`repro.solve` (polynomial algorithm when one
      exists; ``exact_fallback`` enables the exponential exact solvers for
      NP-hard cells, searched with ``engine``);
    * ``"exact"`` — force the exhaustive reference
      (:func:`repro.algorithms.brute_force.optimal` with ``engine``) even
      on polynomial cells — the ground-truth column of agreement and
      heuristic-gap campaigns;
    * ``"heuristic"`` — the heuristic portfolio (pipeline period portfolio,
      fork-latency LPT), seeded by ``seed``;
    * ``"random"`` — best of ``samples`` random valid mappings, the honesty
      baseline, seeded by ``seed``.

    ``max_seconds`` / ``max_nodes`` cap exact solves (modes ``"auto"`` and
    ``"exact"``) with a :class:`repro.Budget`; exhausted solves come back
    as anytime rows (``execution.status == "budget_exhausted"``) instead
    of running forever.  Budget knobs join the cache key, so a budgeted
    row never aliases an exact one.

    ``engine`` is one of ``"bnb"``, ``"enumerate"`` or ``"milp"`` (the
    MILP formulation of :mod:`repro.algorithms.milp`, which needs its
    optional backend installed on the workers).  The engine already keys
    the cache for exact-capable modes, so selecting ``"milp"`` never
    aliases a combinatorial row and pre-existing keys are untouched.
    """

    name: str
    mode: str = "auto"
    exact_fallback: bool = False
    engine: str = "bnb"
    seed: int = 0
    samples: int = 64
    max_seconds: float | None = None
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ReproError(
                f"unknown solver mode {self.mode!r}; choose from {_MODES}"
            )
        if self.engine not in _ENGINES:
            raise ReproError(
                f"unknown exact engine {self.engine!r}; choose from {_ENGINES}"
            )
        if self.samples < 1:
            raise ReproError("samples must be >= 1")
        # validate the budget knobs eagerly (Budget.__post_init__ raises)
        Budget.from_mapping(
            {"max_seconds": self.max_seconds, "max_nodes": self.max_nodes}
        )

    def budget(self) -> "Budget | None":
        """The solve :class:`repro.Budget`, or ``None`` when unbudgeted."""
        return Budget.from_mapping(
            {"max_seconds": self.max_seconds, "max_nodes": self.max_nodes}
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "mode": self.mode,
            "exact_fallback": self.exact_fallback,
            "engine": self.engine,
            "seed": self.seed,
            "samples": self.samples,
            "max_seconds": self.max_seconds,
            "max_nodes": self.max_nodes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolverConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown solver config fields {sorted(unknown)}")
        if "name" not in data:
            raise ReproError("solver config needs a 'name'")
        return cls(**data)


def canonical_solver_dict(cfg: dict) -> dict:
    """The result-determining subset of a solver config document.

    The display ``name`` and the knobs irrelevant to the selected mode
    (e.g. ``samples`` for an ``"auto"`` solve) are dropped, so two configs
    that cannot produce different results share one cache key.
    """
    mode = cfg.get("mode", "auto")
    out: dict = {"mode": mode}
    if mode == "auto":
        out["exact_fallback"] = bool(cfg.get("exact_fallback", False))
        out["engine"] = cfg.get("engine", "bnb")
    elif mode == "exact":
        out["engine"] = cfg.get("engine", "bnb")
    if mode in ("auto", "exact"):
        # budget knobs change the result, so they key — but only when set,
        # keeping every pre-budget cache key byte-identical
        for knob in ("max_seconds", "max_nodes"):
            if cfg.get(knob) is not None:
                out[knob] = cfg[knob]
    if mode == "heuristic":
        out["seed"] = cfg.get("seed", 0)
    elif mode == "random":
        out["seed"] = cfg.get("seed", 0)
        out["samples"] = cfg.get("samples", 64)
    return out


@dataclass(frozen=True)
class Task:
    """One fully-specified solve: instance x objective x solver.

    ``key`` is the content-addressed cache key: it hashes the *normalized*
    instance document together with every field that can change the result
    (objective, bounds, the canonical solver config), so equivalent
    hand-written and generated documents hit the same cache row while any
    change of objective, bound or result-relevant solver knob misses.
    The normalized form deliberately preserves processor/branch order
    (unlike :func:`repro.serialization.instance_digest`): cached rows
    carry mapping documents whose indices must match the instance they
    are served for.
    """

    index: int
    instance_id: str
    instance: dict  # {"kind": "instance", ...}
    objective: str
    period_bound: float | None
    latency_bound: float | None
    solver: dict  # SolverConfig document

    @functools.cached_property
    def key(self) -> str:
        # cached: the normalization round-trip + sha256 is pure but not
        # free, and the orchestration loop reads the key more than once
        try:
            instance = normalized_instance_dict(self.instance)
        except Exception:  # noqa: BLE001 — poisoned docs must still key
            # an invalid instance document cannot be normalized; hash it
            # raw so the task still gets a stable key and its failure is
            # recorded as an error row instead of killing the campaign
            instance = {"raw": self.instance}
        return content_hash({
            "instance": instance,
            "objective": self.objective,
            "period_bound": self.period_bound,
            "latency_bound": self.latency_bound,
            "solver": canonical_solver_dict(self.solver),
        })

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "instance_id": self.instance_id,
            "instance": self.instance,
            "objective": self.objective,
            "period_bound": self.period_bound,
            "latency_bound": self.latency_bound,
            "solver": self.solver,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Task":
        return cls(**data)


def _normalize_objective(entry) -> dict:
    if isinstance(entry, str):
        entry = {"objective": entry}
    objective = entry.get("objective")
    if objective not in ("period", "latency"):
        raise ReproError(
            f"objective must be 'period' or 'latency', got {objective!r}"
        )
    unknown = set(entry) - {"objective", "period_bound", "latency_bound"}
    if unknown:
        raise ReproError(f"unknown objective fields {sorted(unknown)}")
    return {
        "objective": objective,
        "period_bound": entry.get("period_bound"),
        "latency_bound": entry.get("latency_bound"),
    }


def _span(value, what: str) -> tuple[int, int]:
    if isinstance(value, int):
        return value, value
    if (
        isinstance(value, (list, tuple)) and len(value) == 2
        and all(isinstance(v, int) for v in value)
    ):
        return value[0], value[1]
    raise ReproError(f"{what} must be an int or [min, max], got {value!r}")


_SOURCE_FIELDS = {
    "explicit": {"type", "application", "platform", "allow_data_parallel",
                 "id"},
    "scenario": {"type", "name"},
    "random": {"type", "graph", "count", "seed", "n", "p",
               "work_low", "work_high", "speed_low", "speed_high",
               "homogeneous_app", "homogeneous_platform",
               "allow_data_parallel"},
}


def _check_source_fields(source: dict, stype: str) -> None:
    # a spec file IS the experiment: a typo'd knob must fail loudly, not
    # silently fall back to a default and poison the cache with wrong rows
    unknown = set(source) - _SOURCE_FIELDS[stype]
    if unknown:
        raise ReproError(
            f"unknown fields {sorted(unknown)} in {stype!r} instance "
            f"source (known: {sorted(_SOURCE_FIELDS[stype])})"
        )


def _expand_random(source: dict) -> list[tuple[str, dict]]:
    graph = source.get("graph", "pipeline")
    makers = {
        "pipeline": random_pipeline,
        "fork": random_fork,
        "forkjoin": random_forkjoin,
    }
    if graph not in makers:
        raise ReproError(f"unknown graph {graph!r} in random instance source")
    if "seed" not in source:
        raise ReproError("random instance source needs an explicit 'seed'")
    count = source.get("count", 1)
    seed = source["seed"]
    n_lo, n_hi = _span(source.get("n", 5), "n")
    p_lo, p_hi = _span(source.get("p", 4), "p")
    rng = random.Random(seed)
    out = []
    for i in range(count):
        app = makers[graph](
            rng,
            rng.randint(n_lo, n_hi),
            low=source.get("work_low", 1),
            high=source.get("work_high", 20),
            homogeneous=source.get("homogeneous_app", False),
        )
        plat = random_platform(
            rng,
            rng.randint(p_lo, p_hi),
            low=source.get("speed_low", 1),
            high=source.get("speed_high", 10),
            homogeneous=source.get("homogeneous_platform", False),
        )
        doc = {
            "kind": "instance",
            "application": application_to_dict(app),
            "platform": platform_to_dict(plat),
            "allow_data_parallel": bool(
                source.get("allow_data_parallel", False)
            ),
        }
        out.append((f"{graph}-s{seed}-{i:03d}", doc))
    return out


def _expand_source(source: dict) -> list[tuple[str, dict]]:
    stype = source.get("type")
    if stype in _SOURCE_FIELDS:
        _check_source_fields(source, stype)
    if stype == "explicit":
        doc = {
            "kind": "instance",
            "application": source["application"],
            "platform": source["platform"],
            "allow_data_parallel": bool(
                source.get("allow_data_parallel", False)
            ),
        }
        return [(source.get("id") or f"explicit-{content_hash(doc)[:8]}", doc)]
    if stype == "scenario":
        from ..generators import get_scenario

        sc = get_scenario(source["name"])
        doc = {
            "kind": "instance",
            "application": application_to_dict(sc.application),
            "platform": platform_to_dict(sc.platform),
            "allow_data_parallel": sc.allow_data_parallel,
        }
        return [(sc.name, doc)]
    if stype == "random":
        return _expand_random(source)
    raise ReproError(
        f"unknown instance source type {stype!r}; "
        "choose from ('explicit', 'scenario', 'random')"
    )


@dataclass(frozen=True)
class CampaignSpec:
    """A full experiment campaign: instances x objectives x solvers."""

    name: str
    instances: tuple = ()
    objectives: tuple = ("period",)
    solvers: tuple = field(
        default_factory=lambda: (SolverConfig(name="auto"),)
    )
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if self.version != SPEC_VERSION:
            raise ReproError(
                f"unsupported campaign spec version {self.version!r} "
                f"(this library reads version {SPEC_VERSION})"
            )
        if not self.instances:
            raise ReproError("campaign needs at least one instance source")
        if not self.solvers:
            raise ReproError("campaign needs at least one solver config")
        object.__setattr__(
            self,
            "objectives",
            tuple(_normalize_objective(o) for o in self.objectives),
        )
        object.__setattr__(self, "instances", tuple(self.instances))
        object.__setattr__(
            self,
            "solvers",
            tuple(
                s if isinstance(s, SolverConfig) else SolverConfig.from_dict(s)
                for s in self.solvers
            ),
        )
        names = [s.name for s in self.solvers]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate solver names in {names}")

    # -------------------------------------------------------------- expand
    def expand_instances(self) -> list[tuple[str, dict]]:
        """Flatten the instance sources into ``(instance_id, doc)`` pairs."""
        out: list[tuple[str, dict]] = []
        seen: dict[str, int] = {}
        for source in self.instances:
            for iid, doc in _expand_source(dict(source)):
                if iid in seen:
                    seen[iid] += 1
                    iid = f"{iid}#{seen[iid]}"
                else:
                    seen[iid] = 0
                out.append((iid, doc))
        return out

    def tasks(self) -> list[Task]:
        """The flat task grid, in deterministic order."""
        out: list[Task] = []
        index = 0
        for iid, doc in self.expand_instances():
            for obj in self.objectives:
                for solver in self.solvers:
                    out.append(Task(
                        index=index,
                        instance_id=iid,
                        instance=doc,
                        objective=obj["objective"],
                        period_bound=obj["period_bound"],
                        latency_bound=obj["latency_bound"],
                        solver=solver.to_dict(),
                    ))
                    index += 1
        return out

    # -------------------------------------------------------------- json
    def to_dict(self) -> dict:
        return {
            "kind": "campaign",
            "version": self.version,
            "name": self.name,
            "instances": [dict(s) for s in self.instances],
            "objectives": [dict(o) for o in self.objectives],
            "solvers": [s.to_dict() for s in self.solvers],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        if data.get("kind") != "campaign":
            raise ReproError(
                f"not a campaign document: {data.get('kind')!r}"
            )
        return cls(
            name=data.get("name", "campaign"),
            instances=tuple(data.get("instances", ())),
            objectives=tuple(data.get("objectives", ("period",))),
            solvers=tuple(data.get("solvers", ({"name": "auto"},))),
            version=data.get("version", SPEC_VERSION),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def loads(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def with_solvers(self, *solvers: SolverConfig) -> "CampaignSpec":
        return replace(self, solvers=tuple(solvers))
