"""Sharded campaign executor: process-pool fan-out over a task grid.

:func:`execute_tasks` is the engine: it resolves each
:class:`~repro.campaign.spec.Task` against the result cache, fans the
misses out to a :class:`~concurrent.futures.ProcessPoolExecutor` in
contiguous chunks (amortizing pickling over many small solves), and
re-assembles rows in task order.  Guarantees:

* **determinism** — rows are keyed by task index and sorted on return;
  ``workers=0`` (serial, in-process) and any ``workers=N`` produce
  identical rows up to the :data:`VOLATILE_FIELDS` (timing, cache flags),
  because every task is fully specified by its content (heuristic RNGs are
  seeded per task, never shared);
* **failure isolation** — a task that raises records an error row
  (``status="error"`` with the exception type and message) and the
  campaign continues; a poisoned instance can never kill the run;
* **crash isolation** — a task that kills its worker process outright
  (OOM, segfault, ``SIGKILL``) breaks only its chunk: the lost tasks are
  re-executed in fresh single-worker pools with per-task bisection until
  the killer is found and quarantined as an error row
  (``resolution="crashed"``, never cached); every surviving row stays
  bit-identical to a serial fault-free run;
* **single-writer cache** — workers only compute; the parent process
  resolves hits before dispatch and writes misses after collection, so
  the JSONL cache needs no cross-process locking.

Result rows are plain JSON dicts::

    {"index": 3, "instance_id": "pipeline-s7-001", "key": "<sha256>",
     "objective": "period", "period_bound": null, "latency_bound": null,
     "solver": "exact",
     "status": "ok" | "error",
     "period": 1.5, "latency": 9.0, "value": 1.5,
     "mapping": {...}, "algorithm": "bnb",
     "error": null, "error_type": null,
     "execution": {"status": "completed" | "budget_exhausted" | "error"
                   | "crashed", ...},
     "timing": {"seconds": 0.004, "engine": "bnb", "status": "completed",
                "nodes": 310, "pruned": 88, "memo_hits": 0, ...},
     "seconds": 0.004, "cached": false,
     "resolution": "cached-ok" | "cached-error" | "solved" | "retried"
                   | "crashed"}

``resolution`` records *how* the row was obtained on this run:

* ``"cached-ok"`` / ``"cached-error"`` — served from the result cache
  (an ok row, or a previously cached deterministic failure);
* ``"solved"`` — computed fresh (cache miss or no cache);
* ``"retried"`` — the cache held an error row for this key but
  ``retry_errors`` forced a re-solve (resuming a partially-failed
  campaign after e.g. a solver fix; the re-put overwrites the old row);
* ``"crashed"`` — the task killed its worker process; quarantined as an
  error row after bisection (transient by definition, never cached).

``timing`` is the per-solve :class:`~repro.obs.solvestats.SolveStats`
block (wall seconds, search effort, instance shape).  It is volatile —
wall time and memo hits legitimately differ between runs — and it rides
*inside* the cached payload, so a warm cache doubles as a profiling data
set (``campaign profile`` aggregates it without re-solving anything).

``execution`` is the shared *execution report*: how the solve itself
went.  ``"completed"`` is a normal exact/heuristic result;
``"budget_exhausted"`` is an anytime incumbent (the report then carries
``lower_bound`` / ``gap`` / ``budget`` / ``reason``, and
``interrupted="task-timeout"`` when the runner's ``task_timeout`` — not
the task's own budget — cut the solve short; such rows are not cached
because the timeout is runner state, not task content); ``"error"`` /
``"crashed"`` mirror the row status for failed tasks.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import random
import signal
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from ..algorithms.budget import Budget
from ..algorithms.problem import Objective
from ..algorithms.registry import solve
from ..algorithms.solve_context import ContextCache
from ..core.application import ForkApplication
from ..core.exceptions import ReproError
from ..obs.solvestats import SolveStats
from ..obs.tracing import NULL_TRACER, new_trace_id
from ..serialization import mapping_to_dict, spec_from_dict
from .spec import CampaignSpec, Task

__all__ = [
    "VOLATILE_FIELDS",
    "strip_volatile",
    "CampaignResult",
    "execute_tasks",
    "run_campaign",
    "save_rows",
    "load_rows",
]

#: Row fields that legitimately differ between runs (timing, cache state).
#: Everything else is deterministic and must be identical serial vs parallel.
#: ``timing`` is the per-solve :class:`~repro.obs.solvestats.SolveStats`
#: block — wall seconds and context-dependent memo hits make it volatile
#: by nature (cache keys never see it: keys hash task *content* only).
VOLATILE_FIELDS = ("seconds", "cached", "resolution", "timing")


def strip_volatile(row: dict) -> dict:
    """The deterministic part of a result row."""
    return {k: v for k, v in row.items() if k not in VOLATILE_FIELDS}


# ----------------------------------------------------------------------
# per-task solving (runs inside workers; must stay importable/top-level)
# ----------------------------------------------------------------------
#: Fault-injection seam for the crash-isolation tests: a worker solving a
#: task whose ``instance_id`` equals this env var SIGKILLs itself.  Only
#: worker processes die (the serial reference path is immune), and env
#: vars propagate through both fork and spawn start methods.
_FAULT_KILL_ENV = "REPRO_FAULT_KILL_INSTANCE"


def _maybe_inject_fault(task: Task) -> None:
    target = os.environ.get(_FAULT_KILL_ENV)
    if (
        target
        and task.instance_id == target
        and multiprocessing.parent_process() is not None
    ):
        os.kill(os.getpid(), signal.SIGKILL)


def _task_budget(cfg: dict, task_timeout: float | None) -> Budget | None:
    """The effective solve budget: config budget tightened by the runner's
    per-task timeout (exact paths only — heuristics are fast by design)."""
    if cfg.get("mode", "auto") not in ("auto", "exact"):
        return None
    cfg_budget = Budget.from_mapping(cfg)
    if task_timeout is None:
        return cfg_budget
    return Budget(max_seconds=task_timeout).merged(cfg_budget)


def _dispatch(spec, task: Task, context=None, budget: Budget | None = None):
    objective = Objective(task.objective)
    cfg = task.solver
    mode = cfg.get("mode", "auto")
    if mode == "auto":
        return solve(
            spec,
            objective,
            period_bound=task.period_bound,
            latency_bound=task.latency_bound,
            exact_fallback=cfg.get("exact_fallback", False),
            engine=cfg.get("engine", "bnb"),
            context=context,
            budget=budget,
        )
    if mode == "exact":
        from ..algorithms.brute_force import optimal

        return optimal(
            spec,
            objective,
            period_bound=task.period_bound,
            latency_bound=task.latency_bound,
            engine=cfg.get("engine", "bnb"),
            context=context,
            budget=budget,
        )
    if mode == "heuristic":
        if task.period_bound is not None or task.latency_bound is not None:
            raise ReproError("heuristic mode does not support bounds")
        app, platform = spec.application, spec.platform
        if isinstance(app, ForkApplication):
            if objective is not Objective.LATENCY:
                raise ReproError(
                    "fork heuristic (LPT) only targets latency"
                )
            from ..heuristics import fork_latency_lpt

            return fork_latency_lpt(app, platform)
        if objective is not Objective.PERIOD:
            raise ReproError(
                "pipeline heuristic (portfolio) only targets period"
            )
        from ..heuristics import pipeline_period_portfolio

        return pipeline_period_portfolio(
            app, platform, random.Random(cfg.get("seed", 0))
        )
    if mode == "random":
        from ..heuristics import best_of_random

        return best_of_random(
            spec.application,
            spec.platform,
            random.Random(cfg.get("seed", 0)),
            objective,
            samples=cfg.get("samples", 64),
            allow_data_parallel=spec.allow_data_parallel,
            period_bound=task.period_bound,
            latency_bound=task.latency_bound,
        )
    raise ReproError(f"unknown solver mode {mode!r}")


def _execution_report(meta: dict, cfg: dict,
                      task_timeout: float | None) -> tuple[dict, bool]:
    """The row's execution report; returns ``(report, cacheable)``.

    A budget-exhausted report carries the anytime fields.  When the
    exhaustion was (or may have been) driven by the runner's
    ``task_timeout`` rather than the task's own budget, the row is marked
    ``interrupted="task-timeout"`` and declared uncacheable: the timeout
    is runner state, not task content, so caching it would alias the
    untimed key.
    """
    status = meta.get("status", "completed")
    report: dict = {"status": status}
    if status != "budget_exhausted":
        return report, True
    report.update(
        lower_bound=meta.get("lower_bound"),
        gap=meta.get("gap"),
        budget=meta.get("budget"),
        reason=meta.get("budget_reason"),
    )
    cfg_seconds = cfg.get("max_seconds")
    if (
        task_timeout is not None
        and meta.get("budget_reason") == "max_seconds"
        and (cfg_seconds is None or task_timeout < cfg_seconds)
    ):
        report["interrupted"] = "task-timeout"
        return report, False
    return report, True


def solve_task(task: Task, context_cache: ContextCache | None = None,
               task_timeout: float | None = None) -> tuple[dict, float]:
    """Solve one task; returns ``(payload, seconds)``.

    The payload is the deterministic, cacheable part of the result row.
    Every exception is converted into an error payload — failure isolation
    lives here, as close to the solve as possible.

    ``context_cache`` shares per-instance
    :class:`~repro.algorithms.solve_context.SolveContext` state between
    tasks of the same instance — the hot path of a bi-criteria threshold
    sweep, where every task is the same instance under a different bound.
    Rows are bit-identical with or without it.

    ``task_timeout`` converts a runaway exact solve into a budgeted row
    (see :func:`_task_budget`) instead of hanging the campaign.
    """
    _maybe_inject_fault(task)
    t0 = time.perf_counter()
    spec = None
    try:
        if context_cache is not None:
            context = context_cache.for_document(task.instance)
            spec = context.spec
        else:
            context = None
            spec = spec_from_dict(task.instance)
        budget = _task_budget(task.solver, task_timeout)
        solution = _dispatch(spec, task, context, budget)
        execution, cacheable = _execution_report(
            solution.meta, task.solver, task_timeout
        )
        seconds = time.perf_counter() - t0
        payload = {
            "status": "ok",
            "period": solution.period,
            "latency": solution.latency,
            "value": solution.objective_value(Objective(task.objective)),
            "mapping": mapping_to_dict(solution.mapping),
            "algorithm": solution.meta.get("algorithm"),
            "error": None,
            "error_type": None,
            "execution": execution,
            "timing": SolveStats.from_solution(
                solution, spec=spec, seconds=seconds,
                objective=task.objective,
            ).to_dict(),
        }
        if not cacheable:
            payload["_cacheable"] = False
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        seconds = time.perf_counter() - t0
        payload = {
            "status": "error",
            "period": None,
            "latency": None,
            "value": None,
            "mapping": None,
            "algorithm": None,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "execution": {"status": "error"},
            "timing": SolveStats(
                seconds=seconds, status="error", objective=task.objective,
                graph=spec.graph_kind.value if spec is not None else None,
                n=spec.application.n if spec is not None else None,
                p=spec.platform.p if spec is not None else None,
            ).to_dict(),
            # only deterministic failures (model/solver semantics, all
            # ReproError subclasses) may be cached; a transient error
            # (MemoryError, OSError, ...) must be retried on the next run
            "_cacheable": isinstance(exc, ReproError),
        }
    return payload, seconds


def _run_chunk(
    tasks: list[Task], context_cache: ContextCache | None = None,
    task_timeout: float | None = None,
) -> list[tuple[int, dict, float]]:
    """Worker entry point: solve a contiguous chunk of tasks.

    Workers receive no ``context_cache`` (contexts do not travel across
    process boundaries) and build a per-chunk one instead — chunks are
    contiguous, so the threshold tasks of one sweep still share state.
    """
    if context_cache is None:
        context_cache = ContextCache()
    out = []
    for task in tasks:
        payload, seconds = solve_task(task, context_cache, task_timeout)
        out.append((task.index, payload, seconds))
    return out


def _quarantined_payload() -> dict:
    """The error payload recorded for a task that killed its worker."""
    return {
        "status": "error",
        "period": None,
        "latency": None,
        "value": None,
        "mapping": None,
        "algorithm": None,
        "error": "worker process died while solving this task "
                 "(killed, crashed, or out of memory)",
        "error_type": "WorkerCrashError",
        "execution": {"status": "crashed"},
    }


# ----------------------------------------------------------------------
# orchestration (parent process only)
# ----------------------------------------------------------------------
def _compose_row(task: Task, payload: dict, seconds: float,
                 cached: bool, resolution: str) -> dict:
    row = {
        "index": task.index,
        "instance_id": task.instance_id,
        "key": task.key,
        "objective": task.objective,
        "period_bound": task.period_bound,
        "latency_bound": task.latency_bound,
        "solver": task.solver.get("name"),
    }
    row.update(payload)
    row["seconds"] = seconds
    row["cached"] = cached
    row["resolution"] = resolution
    return row


def execute_tasks(
    tasks: list[Task],
    cache=None,
    workers: int = 0,
    chunk_size: int | None = None,
    progress=None,
    retry_errors: bool = False,
    context_cache: ContextCache | None = None,
    task_timeout: float | None = None,
    tracer=NULL_TRACER,
    trace: str | None = None,
) -> list[dict]:
    """Execute a task list; returns result rows in task order.

    ``workers=0`` (or 1) runs serially in-process — the reference
    execution every parallel run must reproduce bit-identically (up to
    :data:`VOLATILE_FIELDS`).  ``cache`` is an optional
    :class:`~repro.campaign.cache.ResultCache`; hits skip the solve
    entirely, misses are written back after collection.  ``progress`` is
    an optional ``callable(done, total)``.

    ``retry_errors`` resumes a partially-failed campaign: cached rows
    with ``status="error"`` are treated as misses and re-solved (the
    re-put overwrites the old row).  Deterministic ``ReproError`` rows
    are re-run too — a solver fix can change the verdict — while ok rows
    keep coming from the cache.

    ``context_cache`` shares per-instance solver state
    (:class:`~repro.algorithms.solve_context.SolveContext`) between tasks
    of the same instance; one is created automatically, so a serial
    threshold sweep amortizes its search tables out of the box.  Pass
    your own to extend the sharing across several ``execute_tasks`` calls
    (as :func:`repro.analysis.pareto.pareto_front` does).  Parallel runs
    ship no contexts to workers — each chunk builds its own — and stay
    row-identical to serial runs.

    ``task_timeout`` caps each exact solve's wall-clock seconds (see
    :func:`solve_task`).  A worker process that dies outright loses only
    its chunk: the lost tasks are re-run in fresh single-worker pools
    with bisection until the killer task is quarantined as an error row
    (``resolution="crashed"``); surviving rows are unaffected.

    ``tracer`` (a :class:`~repro.obs.tracing.Tracer`) records cache-get /
    solve / cache-put spans stamped with ``trace``.  Parallel runs emit
    solve spans when the chunk lands in the parent — workers never touch
    the trace file — using each payload's measured wall seconds.
    """
    if context_cache is None:
        context_cache = ContextCache()
    rows: dict[int, dict] = {}
    misses: list[Task] = []
    retrying: set[int] = set()
    for task in tasks:
        if cache is None:
            payload = None
        elif tracer.active:
            t0 = time.perf_counter()
            payload = cache.get(task.key)
            tracer.emit("cache-get", time.perf_counter() - t0,
                        trace=trace, key=task.key,
                        hit=payload is not None)
        else:
            payload = cache.get(task.key)
        if payload is not None and retry_errors \
                and payload.get("status") == "error":
            retrying.add(task.index)
            payload = None
        if payload is not None:
            resolution = (
                "cached-ok" if payload.get("status") == "ok"
                else "cached-error"
            )
            rows[task.index] = _compose_row(task, payload, 0.0, True,
                                            resolution)
        else:
            misses.append(task)
    done = len(rows)
    if progress is not None and done:
        progress(done, len(tasks))

    by_index = {task.index: task for task in misses}

    # rows are written back (and progress reported) as each chunk lands,
    # never deferred to the end — an interrupted campaign keeps every
    # completed solve in the cache, so the re-run resumes where it died
    def consume(chunk_result) -> None:
        nonlocal done
        for index, payload, seconds in chunk_result:
            task = by_index[index]
            cacheable = payload.pop("_cacheable", True)
            resolution = "retried" if index in retrying else "solved"
            rows[index] = _compose_row(task, payload, seconds, False,
                                       resolution)
            if tracer.active:
                timing = payload.get("timing") or {}
                tracer.emit("solve", seconds, trace=trace, key=task.key,
                            engine=timing.get("engine"),
                            status=timing.get("status"))
            if cache is not None and cacheable:
                if tracer.active:
                    t0 = time.perf_counter()
                    cache.put(task.key, payload)
                    tracer.emit("cache-put", time.perf_counter() - t0,
                                trace=trace, key=task.key)
                else:
                    cache.put(task.key, payload)
        done += len(chunk_result)
        if progress is not None:
            progress(done, len(tasks))

    def quarantine(task: Task) -> None:
        nonlocal done
        rows[task.index] = _compose_row(
            task, _quarantined_payload(), 0.0, False, "crashed"
        )
        done += 1
        if progress is not None:
            progress(done, len(tasks))

    def rescue_lost(lost: list[Task]) -> None:
        """Re-run tasks whose pool died, bisecting to isolate the killer.

        Each candidate group gets a fresh single-worker pool; a group
        that completes is consumed normally, a crashed singleton is the
        killer (quarantined), a crashed group splits in half.  Cost is
        O(log k) extra pool spawns per killer — the killer-free tasks
        re-run at most that many times but only their *final, successful*
        run is consumed, so determinism is untouched.
        """
        stack = [sorted(lost, key=lambda t: t.index)]
        while stack:
            group = stack.pop()
            rescue = ProcessPoolExecutor(max_workers=1)
            try:
                consume(rescue.submit(
                    _run_chunk, group, None, task_timeout
                ).result())
            except BrokenProcessPool:
                if len(group) == 1:
                    quarantine(group[0])
                else:
                    mid = len(group) // 2
                    stack.append(group[mid:])
                    stack.append(group[:mid])
            finally:
                rescue.shutdown()

    if misses:
        if workers <= 1:
            for task in misses:
                consume(_run_chunk([task], context_cache, task_timeout))
        else:
            if chunk_size is None:
                chunk_size = max(1, math.ceil(len(misses) / (workers * 4)))
            chunks = [
                misses[i:i + chunk_size]
                for i in range(0, len(misses), chunk_size)
            ]
            executor = ProcessPoolExecutor(max_workers=workers)
            lost: list[Task] = []
            try:
                futmap = {
                    executor.submit(_run_chunk, c, None, task_timeout): c
                    for c in chunks
                }
                for future in as_completed(futmap):
                    try:
                        consume(future.result())
                    except BrokenProcessPool:
                        # a dead worker breaks the whole pool: every
                        # unfinished chunk lands here; collect and rescue
                        lost.extend(futmap[future])
            finally:
                executor.shutdown()
            if lost:
                rescue_lost(lost)
    return [rows[task.index] for task in tasks]


@dataclass
class CampaignResult:
    """Ordered result rows of one campaign run, plus run statistics."""

    name: str
    rows: list[dict]
    stats: dict = field(default_factory=dict)

    @property
    def ok_rows(self) -> list[dict]:
        return [r for r in self.rows if r["status"] == "ok"]

    @property
    def error_rows(self) -> list[dict]:
        return [r for r in self.rows if r["status"] == "error"]


def run_campaign(
    spec: CampaignSpec,
    cache=None,
    workers: int = 0,
    chunk_size: int | None = None,
    progress=None,
    retry_errors: bool = False,
    task_timeout: float | None = None,
    tracer=NULL_TRACER,
) -> CampaignResult:
    """Expand a :class:`CampaignSpec` and execute its full grid.

    With an active ``tracer`` the whole run shares one trace id: every
    cache-get / solve / cache-put span carries it, plus a final
    ``campaign`` span with the run statistics.
    """
    tasks = spec.tasks()
    trace = new_trace_id() if tracer.active else None
    t0 = time.perf_counter()
    rows = execute_tasks(
        tasks, cache=cache, workers=workers,
        chunk_size=chunk_size, progress=progress,
        retry_errors=retry_errors, task_timeout=task_timeout,
        tracer=tracer, trace=trace,
    )
    wall = time.perf_counter() - t0
    stats = {
        "tasks": len(tasks),
        "ok": sum(1 for r in rows if r["status"] == "ok"),
        "errors": sum(1 for r in rows if r["status"] == "error"),
        "cache_hits": sum(1 for r in rows if r["cached"]),
        "retried": sum(1 for r in rows if r["resolution"] == "retried"),
        "crashed": sum(1 for r in rows if r["resolution"] == "crashed"),
        "budget_exhausted": sum(
            1 for r in rows
            if r.get("execution", {}).get("status") == "budget_exhausted"
        ),
        "workers": workers,
        "seconds": wall,
    }
    if tracer.active:
        tracer.emit("campaign", wall, trace=trace, name=spec.name,
                    tasks=stats["tasks"], ok=stats["ok"],
                    errors=stats["errors"],
                    cache_hits=stats["cache_hits"], workers=workers)
    return CampaignResult(name=spec.name, rows=rows, stats=stats)


# ----------------------------------------------------------------------
# result persistence (JSONL: one meta line, then one line per row)
# ----------------------------------------------------------------------
def save_rows(path: str | Path, result: CampaignResult) -> None:
    """Write a campaign result to a JSONL file (meta line first)."""
    path = Path(path)
    with path.open("w") as fh:
        meta = {
            "kind": "campaign-result",
            "name": result.name,
            "stats": result.stats,
        }
        fh.write(json.dumps(meta, separators=(",", ":")) + "\n")
        for row in result.rows:
            fh.write(json.dumps(row, separators=(",", ":")) + "\n")


def load_rows(path: str | Path) -> CampaignResult:
    """Read a campaign result written by :func:`save_rows`."""
    path = Path(path)
    with path.open() as fh:
        first = fh.readline()
        meta = json.loads(first) if first.strip() else {}
        if meta.get("kind") != "campaign-result":
            raise ReproError(f"{path} is not a campaign result file")
        rows = [json.loads(line) for line in fh if line.strip()]
    return CampaignResult(
        name=meta.get("name", "campaign"),
        rows=rows,
        stats=meta.get("stats", {}),
    )
