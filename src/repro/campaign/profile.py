"""Solve-time profiling from cached ``timing`` blocks.

Every campaign row (and every ``/v1/solve`` response) carries a volatile
``timing`` block — the :class:`~repro.obs.solvestats.SolveStats` of the
solve that produced it — and the block rides *inside* the cached
payload.  A warm result cache is therefore a profiling data set:
``campaign profile`` aggregates it into per-``(engine, n, p)``
latency percentiles and search-effort totals without re-solving
anything.

:func:`collect_timings` pulls the blocks out of a cache or a row list,
:func:`profile_groups` aggregates them, :func:`profile_doc` wraps the
aggregate in a versioned JSON artifact, and :func:`profile_table`
renders the human view.
"""

from __future__ import annotations

import statistics

from ..analysis.report import format_table
from ..core.exceptions import ReproError

__all__ = [
    "percentile",
    "collect_timings",
    "profile_groups",
    "profile_doc",
    "profile_table",
]

#: ``kind`` discriminator / format version of the profile artifact.
PROFILE_DOC_KIND = "solve-profile"
PROFILE_DOC_VERSION = 1


def percentile(values, q: float) -> float:
    """The ``q``-quantile (0..1) by the nearest-rank method.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.0
    >>> percentile([1.0, 2.0, 3.0, 4.0], 0.95)
    4.0
    >>> percentile([7.0], 0.99)
    7.0
    """
    if not values:
        raise ReproError("percentile of an empty sequence")
    ordered = sorted(values)
    rank = max(1, round(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def collect_timings(cache=None, rows=None) -> list[dict]:
    """Every ``timing`` block found in a cache and/or result rows.

    ``cache`` is a :class:`~repro.campaign.cache.ResultCache` (all keys
    are scanned); ``rows`` is an iterable of result-row dicts (as stored
    in a results JSONL).  Rows without a block — errors from before the
    field existed, quarantined crashes — are skipped.
    """
    timings: list[dict] = []
    if cache is not None:
        for key in cache.keys():
            payload = cache.get(key)
            timing = (payload or {}).get("timing")
            if timing:
                timings.append(timing)
    if rows is not None:
        for row in rows:
            timing = row.get("timing")
            if timing:
                timings.append(timing)
    return timings


def _group_key(timing: dict) -> tuple:
    return (
        timing.get("engine") or "-",
        timing.get("n") if timing.get("n") is not None else -1,
        timing.get("p") if timing.get("p") is not None else -1,
    )


def profile_groups(timings: list[dict]) -> list[dict]:
    """Aggregate timing blocks per ``(engine, n, p)`` group.

    Each group reports the sample count, wall-second percentiles
    (p50/p95/p99 by nearest rank) and totals of the search-effort
    counters the engines maintained (nodes / pruned / memo hits).
    Groups are sorted by engine, then instance size.
    """
    buckets: dict[tuple, list[dict]] = {}
    for timing in timings:
        buckets.setdefault(_group_key(timing), []).append(timing)
    groups = []
    for (engine, n, p), members in sorted(buckets.items()):
        seconds = [t.get("seconds", 0.0) for t in members]
        groups.append({
            "engine": engine,
            "n": None if n == -1 else n,
            "p": None if p == -1 else p,
            "count": len(members),
            "seconds_total": sum(seconds),
            "p50": percentile(seconds, 0.50),
            "p95": percentile(seconds, 0.95),
            "p99": percentile(seconds, 0.99),
            "mean": statistics.mean(seconds),
            "nodes": sum(t.get("nodes") or 0 for t in members),
            "pruned": sum(t.get("pruned") or 0 for t in members),
            "memo_hits": sum(t.get("memo_hits") or 0 for t in members),
        })
    return groups


def profile_doc(timings: list[dict]) -> dict:
    """The machine-readable profile artifact (``--out`` of the CLI verb)."""
    return {
        "kind": PROFILE_DOC_KIND,
        "version": PROFILE_DOC_VERSION,
        "samples": len(timings),
        "groups": profile_groups(timings),
    }


def profile_table(timings: list[dict],
                  title: str = "solve profile") -> str:
    """Human-readable percentile table; ``""`` when nothing to report."""
    groups = profile_groups(timings)
    if not groups:
        return ""
    table = [
        [
            g["engine"],
            "-" if g["n"] is None else str(g["n"]),
            "-" if g["p"] is None else str(g["p"]),
            str(g["count"]),
            f"{1e3 * g['p50']:.2f}",
            f"{1e3 * g['p95']:.2f}",
            f"{1e3 * g['p99']:.2f}",
            str(g["nodes"]),
            str(g["pruned"]),
            str(g["memo_hits"]),
        ]
        for g in groups
    ]
    return format_table(
        ["engine", "n", "p", "solves", "p50 (ms)", "p95 (ms)", "p99 (ms)",
         "nodes", "pruned", "memo hits"],
        table,
        title=title,
    )
