"""Fault-injection wrappers for cache backends (chaos testing).

:class:`ChaosBackend` wraps any :class:`~repro.campaign.cache.CacheBackend`
and injects *transport-shaped* failures (:class:`ChaosError`, a
``ConnectionError``) according to a configurable schedule:

* ``failure_rate`` — independent per-call failure probability, drawn
  from a seeded private RNG (deterministic per construction);
* ``fail_after`` / ``recover_after`` — a deterministic outage window on
  the call counter: calls ``fail_after < n <= recover_after`` fail
  (``recover_after=None`` means the outage never ends);
* ``latency`` — seconds of ``time.sleep`` added to every delegated call.

``ops`` restricts injection to a subset of operations (default: loads,
stores and key listings; ``storage_stats``/``compact``/``close`` pass
through so tests can always inspect the wrapped store).

Because :class:`ChaosError` is a ``ConnectionError``, the
:class:`~repro.campaign.cache.CircuitBreakerBackend` classifies injected
failures as transport failures — exactly the seam the breaker and
journal-replay tests drive.  Exported for future chaos tests; not used
by any production path.
"""

from __future__ import annotations

import random
import time

from ..core.exceptions import ReproError
from .cache import CacheBackend

__all__ = ["ChaosError", "ChaosBackend"]


class ChaosError(ConnectionError):
    """An injected transport failure (never raised by real backends)."""


class ChaosBackend(CacheBackend):
    """A cache backend that fails on purpose.

    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro.campaign.cache import JsonlBackend
    >>> inner = JsonlBackend(Path(tempfile.mkdtemp()))
    >>> chaos = ChaosBackend(inner, fail_after=1)   # outage after 1 call
    >>> chaos.load("ab" * 32) is None               # call 1: passes (miss)
    True
    >>> chaos.load("ab" * 32)                       # call 2: the outage
    Traceback (most recent call last):
        ...
    repro.campaign.chaos.ChaosError: injected failure on 'load' (call 2)
    """

    #: Operations eligible for injection by default.
    DEFAULT_OPS = ("load", "store", "keys")

    def __init__(self, inner: CacheBackend,
                 failure_rate: float = 0.0,
                 fail_after: int | None = None,
                 recover_after: int | None = None,
                 latency: float = 0.0,
                 ops: tuple[str, ...] = DEFAULT_OPS,
                 seed: int = 0) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ReproError("failure_rate must be within [0, 1]")
        if recover_after is not None and fail_after is None:
            raise ReproError("recover_after needs fail_after")
        if (fail_after is not None and recover_after is not None
                and recover_after < fail_after):
            raise ReproError("recover_after must be >= fail_after")
        self.inner = inner
        self.name = inner.name
        self.failure_rate = failure_rate
        self.fail_after = fail_after
        self.recover_after = recover_after
        self.latency = latency
        self.ops = tuple(ops)
        self.calls = 0
        self.injected = 0
        self._rng = random.Random(seed)

    def _chaos(self, op: str) -> None:
        """Count the call; raise :class:`ChaosError` when scheduled."""
        if op not in self.ops:
            return
        self.calls += 1
        if self.latency:
            time.sleep(self.latency)
        windowed = (
            self.fail_after is not None
            and self.calls > self.fail_after
            and (self.recover_after is None
                 or self.calls <= self.recover_after)
        )
        if windowed or (
            self.failure_rate and self._rng.random() < self.failure_rate
        ):
            self.injected += 1
            raise ChaosError(
                f"injected failure on {op!r} (call {self.calls})"
            )

    # -------------------------------------------------------------- api
    def load(self, key: str) -> dict | None:
        self._chaos("load")
        return self.inner.load(key)

    def store(self, key: str, row: dict) -> None:
        self._chaos("store")
        self.inner.store(key, row)

    def keys(self) -> list[str]:
        self._chaos("keys")
        return self.inner.keys()

    def storage_stats(self) -> dict:
        self._chaos("storage_stats")
        return self.inner.storage_stats()

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        self._chaos("compact")
        return self.inner.compact(max_age_days=max_age_days,
                                  max_bytes=max_bytes)

    def close(self) -> None:
        self.inner.close()
