"""Content-addressed persistent result cache with pluggable backends.

Rows are keyed by the :class:`~repro.campaign.spec.Task` content hash.
:class:`ResultCache` is the public surface the runner talks to; the
actual storage lives in a backend selected by name:

``"jsonl"`` (default)
    256 append-only JSONL shards under ``root/`` named by the first two
    hex characters of the key, e.g. ``root/a3.jsonl``.  Each line is one
    ``{"version": 1, "key": ..., "row": {...}}`` record; a shard is
    loaded into memory on first access and appended to on every put, so
    re-runs and overlapping campaigns resolve repeat keys without
    re-solving.  A duplicate key keeps the *latest* appended record,
    making re-puts an overwrite; :meth:`ResultCache.compact` rewrites the
    shards dropping the superseded lines.

``"sqlite"``
    A single ``root/cache.sqlite`` database with one row per key
    (``INSERT OR REPLACE``), for long-lived or shared cache directories
    where 256 growing shard files are unwieldy.  Same keys, same record
    version, same semantics — the two backends are interchangeable and
    pass one contract test suite.

Both degrade gracefully: unreadable lines and records with a different
format version are skipped on load — a corrupt or stale record is a
cache miss, never an error.  The runner is the single writer (workers
return rows to the parent process, which writes), so no cross-process
locking is needed.

Rows returned by :meth:`ResultCache.get` are owned by the caller: they
never alias the store's internal state, so mutating a hit (or the dict
passed to :meth:`ResultCache.put`) cannot poison later hits for the same
key.
"""

from __future__ import annotations

import copy
import json
import sqlite3
from pathlib import Path

from ..core.exceptions import ReproError

__all__ = [
    "CACHE_VERSION",
    "CACHE_BACKENDS",
    "CacheBackend",
    "JsonlBackend",
    "SqliteBackend",
    "ResultCache",
]

#: Version of the on-disk cache record format.  Bump to invalidate
#: everything previously stored (old records are skipped on load).
CACHE_VERSION = 1


class CacheBackend:
    """Storage protocol behind :class:`ResultCache`.

    Implementations map content-hash keys to JSON-serializable row
    dicts.  ``load`` must return a row the caller owns (no aliasing with
    any internal state) or ``None``; ``store`` must not keep a live
    reference to the caller's dict.  ``compact`` reclaims space left by
    superseded or stale records and reports what it did.
    """

    name: str

    def load(self, key: str) -> dict | None:
        raise NotImplementedError

    def store(self, key: str, row: dict) -> None:
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def storage_stats(self) -> dict:
        raise NotImplementedError

    def compact(self) -> dict:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class JsonlBackend(CacheBackend):
    """Sharded append-only JSONL store (the original cache format)."""

    name = "jsonl"

    def __init__(self, root: Path) -> None:
        self.root = root
        self._shards: dict[str, dict[str, dict]] = {}

    # -------------------------------------------------------------- shards
    def _shard_name(self, key: str) -> str:
        return key[:2]

    def _shard_path(self, name: str) -> Path:
        return self.root / f"{name}.jsonl"

    def _read_records(self, path: Path):
        """Yield ``(key, row)`` for every well-formed line of a shard."""
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("version") != CACHE_VERSION
                    or "key" not in record
                    or "row" not in record
                ):
                    continue
                yield record["key"], record["row"]

    def _load_shard(self, name: str) -> dict[str, dict]:
        shard = self._shards.get(name)
        if shard is not None:
            return shard
        shard = {}
        path = self._shard_path(name)
        if path.exists():
            for key, row in self._read_records(path):
                shard[key] = row
        self._shards[name] = shard
        return shard

    # -------------------------------------------------------------- api
    def load(self, key: str) -> dict | None:
        row = self._load_shard(self._shard_name(key)).get(key)
        # deep copy: the caller owns the result, the in-memory shard row
        # must stay pristine for later hits of the same key
        return copy.deepcopy(row) if row is not None else None

    def store(self, key: str, row: dict) -> None:
        name = self._shard_name(key)
        record = {"version": CACHE_VERSION, "key": key, "row": row}
        line = json.dumps(record, separators=(",", ":"))
        # parse our own serialization back: the in-memory row can never
        # alias the caller's dict, and memory matches what a cold reload
        # of the shard would see
        self._load_shard(name)[key] = json.loads(line)["row"]
        with self._shard_path(name).open("a") as fh:
            fh.write(line + "\n")

    def keys(self) -> list[str]:
        out: list[str] = []
        for path in sorted(self.root.glob("*.jsonl")):
            out.extend(self._load_shard(path.stem))
        return out

    def storage_stats(self) -> dict:
        shards = lines = live = stale = size = 0
        for path in sorted(self.root.glob("*.jsonl")):
            shards += 1
            size += path.stat().st_size
            with path.open() as fh:
                lines += sum(1 for line in fh if line.strip())
            live += len(self._load_shard(path.stem))
        # superseded duplicates plus corrupt / version-mismatched records
        stale = lines - live
        return {
            "backend": self.name,
            "keys": live,
            "files": shards,
            "bytes": size,
            "stale_records": stale,
        }

    def compact(self) -> dict:
        """Rewrite every shard keeping one line per key; report savings."""
        before = after = dropped = 0
        for path in sorted(self.root.glob("*.jsonl")):
            before += path.stat().st_size
            with path.open() as fh:
                total_lines = sum(1 for line in fh if line.strip())
            live = self._load_shard(path.stem)
            dropped += total_lines - len(live)
            tmp = path.with_suffix(".jsonl.tmp")
            with tmp.open("w") as fh:
                for key, row in live.items():
                    record = {"version": CACHE_VERSION, "key": key,
                              "row": row}
                    fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            tmp.replace(path)
            after += path.stat().st_size
        return {
            "backend": self.name,
            "bytes_before": before,
            "bytes_after": after,
            "bytes_reclaimed": before - after,
            "records_dropped": dropped,
        }


class SqliteBackend(CacheBackend):
    """Single-file sqlite store: one row per key, re-puts replace."""

    name = "sqlite"

    def __init__(self, root: Path) -> None:
        self.root = root
        self.path = root / "cache.sqlite"
        self._db = sqlite3.connect(self.path)
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS rows ("
            " key TEXT PRIMARY KEY,"
            " version INTEGER NOT NULL,"
            " row TEXT NOT NULL)"
        )
        self._db.commit()

    def load(self, key: str) -> dict | None:
        cur = self._db.execute(
            "SELECT row FROM rows WHERE key = ? AND version = ?",
            (key, CACHE_VERSION),
        )
        hit = cur.fetchone()
        if hit is None:
            return None
        try:
            row = json.loads(hit[0])
        except ValueError:
            return None  # corrupt record degrades to a miss
        return row if isinstance(row, dict) else None

    def store(self, key: str, row: dict) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO rows (key, version, row) VALUES (?, ?, ?)",
            (key, CACHE_VERSION, json.dumps(row, separators=(",", ":"))),
        )
        # commit per put: an interrupted campaign keeps every completed
        # solve, mirroring the JSONL backend's append-per-put durability
        self._db.commit()

    def keys(self) -> list[str]:
        cur = self._db.execute(
            "SELECT key FROM rows WHERE version = ? ORDER BY key",
            (CACHE_VERSION,),
        )
        return [key for (key,) in cur.fetchall()]

    def storage_stats(self) -> dict:
        live = self._db.execute(
            "SELECT COUNT(*) FROM rows WHERE version = ?", (CACHE_VERSION,)
        ).fetchone()[0]
        total = self._db.execute("SELECT COUNT(*) FROM rows").fetchone()[0]
        return {
            "backend": self.name,
            "keys": live,
            "files": 1,
            "bytes": self.path.stat().st_size,
            "stale_records": total - live,
        }

    def compact(self) -> dict:
        """Drop stale-version rows and VACUUM; report bytes reclaimed."""
        before = self.path.stat().st_size
        cur = self._db.execute(
            "DELETE FROM rows WHERE version != ?", (CACHE_VERSION,)
        )
        dropped = cur.rowcount
        self._db.commit()
        self._db.execute("VACUUM")
        after = self.path.stat().st_size
        return {
            "backend": self.name,
            "bytes_before": before,
            "bytes_after": after,
            "bytes_reclaimed": before - after,
            "records_dropped": dropped,
        }

    def close(self) -> None:
        self._db.close()


#: Registered backend names -> constructors (``root: Path`` argument).
CACHE_BACKENDS = {
    JsonlBackend.name: JsonlBackend,
    SqliteBackend.name: SqliteBackend,
}


class ResultCache:
    """Content-addressed store mapping content hashes to result rows.

    ``backend`` selects the storage format (see :data:`CACHE_BACKENDS`);
    an already-constructed :class:`CacheBackend` is also accepted.  The
    cache counts hits/misses/puts and guarantees that returned rows never
    alias internal state.
    """

    def __init__(self, root: str | Path, backend: str | CacheBackend = "jsonl") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if isinstance(backend, CacheBackend):
            self._backend = backend
        else:
            try:
                factory = CACHE_BACKENDS[backend]
            except KeyError:
                raise ReproError(
                    f"unknown cache backend {backend!r}; "
                    f"choose from {sorted(CACHE_BACKENDS)}"
                ) from None
            self._backend = factory(self.root)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @property
    def backend(self) -> str:
        """Name of the storage backend in use."""
        return self._backend.name

    # -------------------------------------------------------------- api
    def get(self, key: str) -> dict | None:
        """The cached row for ``key``, or ``None`` (counts hit/miss).

        The returned dict (including any nested containers) is owned by
        the caller — mutating it cannot affect later hits.
        """
        row = self._backend.load(key)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, key: str, row: dict) -> None:
        """Store ``row`` under ``key`` (written to disk immediately)."""
        self._backend.store(key, row)
        self.puts += 1

    def __contains__(self, key: str) -> bool:
        return self._backend.load(key) is not None

    def __len__(self) -> int:
        """Number of distinct keys currently stored."""
        return len(self._backend.keys())

    def keys(self) -> list[str]:
        return self._backend.keys()

    @property
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    # -------------------------------------------------------------- ops
    def storage_stats(self) -> dict:
        """On-disk shape: key count, files, bytes, stale records."""
        return self._backend.storage_stats()

    def compact(self) -> dict:
        """Reclaim space held by superseded / stale records."""
        return self._backend.compact()

    def close(self) -> None:
        self._backend.close()
