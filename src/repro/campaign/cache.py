"""Content-addressed persistent result cache (sharded JSONL).

Rows are keyed by the :class:`~repro.campaign.spec.Task` content hash and
stored under ``root/`` in 256 JSONL shards named by the first two hex
characters of the key, e.g. ``root/a3.jsonl``.  Each line is one
``{"version": 1, "key": ..., "row": {...}}`` record; a shard is loaded
into memory on first access and appended to on every put, so re-runs and
overlapping campaigns resolve repeat keys without re-solving.

The runner is the single writer (workers return rows to the parent
process, which writes), so no cross-process locking is needed.  Unreadable
lines and records with a different format version are skipped on load —
a corrupt or stale shard degrades to cache misses, never to an error.
A duplicate key keeps the *latest* appended record, making re-puts an
overwrite.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["CACHE_VERSION", "ResultCache"]

#: Version of the on-disk cache record format.  Bump to invalidate
#: everything previously stored (old records are skipped on load).
CACHE_VERSION = 1


class ResultCache:
    """Sharded JSONL store mapping content hashes to result rows."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._shards: dict[str, dict[str, dict]] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -------------------------------------------------------------- shards
    def _shard_name(self, key: str) -> str:
        return key[:2]

    def _shard_path(self, name: str) -> Path:
        return self.root / f"{name}.jsonl"

    def _load(self, name: str) -> dict[str, dict]:
        shard = self._shards.get(name)
        if shard is not None:
            return shard
        shard = {}
        path = self._shard_path(name)
        if path.exists():
            with path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if (
                        not isinstance(record, dict)
                        or record.get("version") != CACHE_VERSION
                        or "key" not in record
                        or "row" not in record
                    ):
                        continue
                    shard[record["key"]] = record["row"]
        self._shards[name] = shard
        return shard

    # -------------------------------------------------------------- api
    def get(self, key: str) -> dict | None:
        """The cached row for ``key``, or ``None`` (counts hit/miss)."""
        row = self._load(self._shard_name(key)).get(key)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(row)

    def put(self, key: str, row: dict) -> None:
        """Store ``row`` under ``key`` (appended to disk immediately)."""
        name = self._shard_name(key)
        self._load(name)[key] = dict(row)
        record = {"version": CACHE_VERSION, "key": key, "row": row}
        with self._shard_path(name).open("a") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.puts += 1

    def __contains__(self, key: str) -> bool:
        return self._load(self._shard_name(key)).get(key) is not None

    def __len__(self) -> int:
        """Number of distinct keys currently on disk (loads all shards)."""
        total = 0
        for path in self.root.glob("*.jsonl"):
            total += len(self._load(path.stem))
        return total

    @property
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}
