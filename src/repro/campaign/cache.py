"""Content-addressed persistent result cache with pluggable backends.

Rows are keyed by the :class:`~repro.campaign.spec.Task` content hash.
:class:`ResultCache` is the public surface the runner talks to; the
actual storage lives in a backend selected by name:

``"jsonl"`` (default)
    256 append-only JSONL shards under ``root/`` named by the first two
    hex characters of the key, e.g. ``root/a3.jsonl``.  Each line is one
    ``{"version": 1, "key": ..., "row": {...}}`` record; a shard is
    loaded into memory on first access and appended to on every put, so
    re-runs and overlapping campaigns resolve repeat keys without
    re-solving.  A duplicate key keeps the *latest* appended record,
    making re-puts an overwrite; :meth:`ResultCache.compact` rewrites the
    shards dropping the superseded lines.

``"sqlite"``
    A single ``root/cache.sqlite`` database with one row per key
    (``INSERT OR REPLACE``), for long-lived or shared cache directories
    where 256 growing shard files are unwieldy.  Same keys, same record
    version, same semantics — the local backends are interchangeable and
    pass one contract test suite.

``"http"``
    A remote cache: every ``load``/``store`` is a ``GET``/``PUT`` against
    a running solver service (``python -m repro serve``, see
    :mod:`repro.service`), so many campaign runners on a shared cluster
    share one warm cache.  Construct with
    ``ResultCache(url="http://host:port", backend="http")`` — no local
    directory is involved; storage and eviction happen server-side.

The local backends degrade gracefully: unreadable lines and records with
a different format version are skipped on load — a corrupt or stale
record is a cache miss, never an error.  Torn lines (a crash mid-append)
are counted as ``corrupt_lines`` in :meth:`ResultCache.storage_stats`
and repaired (dropped) by :meth:`ResultCache.compact`.

The remote backend degrades gracefully too:
:class:`CircuitBreakerBackend` (installed by
``ResultCache(url=..., backend="http", fallback_dir=...)``) wraps any
remote backend in a circuit breaker — after ``failure_threshold``
consecutive transport failures the breaker *opens*: gets degrade to
misses, puts spill to a local JSONL journal, and periodic *half-open*
probes (exponential backoff) test the remote; on recovery the journal is
replayed so the fleet cache is back-filled with everything solved during
the outage.  The runner is the single writer
(workers return rows to the parent process, which writes), so no
cross-process locking is needed.  Every stored record carries a write
timestamp, which :meth:`ResultCache.compact` can use for eviction
policies: ``max_age_days`` drops records older than the horizon (records
written before timestamps existed count as infinitely old), ``max_bytes``
evicts oldest-first until the store fits the budget (exact line sizes for
JSONL; stored-text length plus a fixed per-record overhead for sqlite).

Rows returned by :meth:`ResultCache.get` are owned by the caller: they
never alias the store's internal state, so mutating a hit (or the dict
passed to :meth:`ResultCache.put`) cannot poison later hits for the same
key.
"""

from __future__ import annotations

import copy
import json
import sqlite3
import time
from pathlib import Path

from ..core.exceptions import ReproError

__all__ = [
    "CACHE_VERSION",
    "CACHE_BACKENDS",
    "CacheBackend",
    "JsonlBackend",
    "SqliteBackend",
    "HttpCacheBackend",
    "CircuitBreakerBackend",
    "ResultCache",
]

#: Version of the on-disk cache record format.  Bump to invalidate
#: everything previously stored (old records are skipped on load).
CACHE_VERSION = 1

#: Estimated per-record sqlite overhead (key text + row/index bookkeeping)
#: used by the ``max_bytes`` eviction budget.
_SQLITE_RECORD_OVERHEAD = 64


def _now() -> float:
    """Record-timestamp clock (a seam so tests can pin time)."""
    return time.time()


class CacheBackend:
    """Storage protocol behind :class:`ResultCache`.

    Implementations map content-hash keys to JSON-serializable row
    dicts.  ``load`` must return a row the caller owns (no aliasing with
    any internal state) or ``None``; ``store`` must not keep a live
    reference to the caller's dict.  ``compact`` reclaims space left by
    superseded or stale records and reports what it did.
    """

    name: str

    def load(self, key: str) -> dict | None:
        raise NotImplementedError

    def store(self, key: str, row: dict) -> None:
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def storage_stats(self) -> dict:
        raise NotImplementedError

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class JsonlBackend(CacheBackend):
    """Sharded append-only JSONL store (the original cache format)."""

    name = "jsonl"

    def __init__(self, root: Path) -> None:
        self.root = root
        self._shards: dict[str, dict[str, dict]] = {}
        self._stamps: dict[str, dict[str, float]] = {}
        # non-empty on-disk lines per loaded shard, maintained
        # incrementally so storage_stats() never has to re-read files
        self._line_counts: dict[str, int] = {}
        # unparseable lines per shard (torn trailing line from a crash
        # mid-append, disk corruption): degraded to misses on load,
        # surfaced in storage_stats, repaired by compact
        self._corrupt_counts: dict[str, int] = {}

    # -------------------------------------------------------------- shards
    def _shard_name(self, key: str) -> str:
        return key[:2]

    def _shard_path(self, name: str) -> Path:
        return self.root / f"{name}.jsonl"

    def _load_shard(self, name: str) -> dict[str, dict]:
        shard = self._shards.get(name)
        if shard is not None:
            return shard
        shard = {}
        stamps: dict[str, float] = {}
        lines = corrupt = 0
        path = self._shard_path(name)
        if path.exists():
            with path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    lines += 1
                    try:
                        record = json.loads(line)
                    except ValueError:
                        corrupt += 1
                        continue
                    if (
                        not isinstance(record, dict)
                        or record.get("version") != CACHE_VERSION
                        or "key" not in record
                        or "row" not in record
                    ):
                        continue
                    shard[record["key"]] = record["row"]
                    # pre-timestamp records read as age 0.0 ("infinitely
                    # old"): under an age policy they are evicted first
                    stamps[record["key"]] = record.get("ts", 0.0)
        self._shards[name] = shard
        self._stamps[name] = stamps
        self._line_counts[name] = lines
        self._corrupt_counts[name] = corrupt
        return shard

    # -------------------------------------------------------------- api
    def load(self, key: str) -> dict | None:
        row = self._load_shard(self._shard_name(key)).get(key)
        # deep copy: the caller owns the result, the in-memory shard row
        # must stay pristine for later hits of the same key
        return copy.deepcopy(row) if row is not None else None

    def store(self, key: str, row: dict) -> None:
        name = self._shard_name(key)
        ts = _now()
        record = {"version": CACHE_VERSION, "key": key, "row": row, "ts": ts}
        line = json.dumps(record, separators=(",", ":"))
        # parse our own serialization back: the in-memory row can never
        # alias the caller's dict, and memory matches what a cold reload
        # of the shard would see
        self._load_shard(name)[key] = json.loads(line)["row"]
        self._stamps[name][key] = ts
        self._line_counts[name] += 1
        with self._shard_path(name).open("a") as fh:
            fh.write(line + "\n")

    def keys(self) -> list[str]:
        out: list[str] = []
        for path in sorted(self.root.glob("*.jsonl")):
            out.extend(self._load_shard(path.stem))
        return out

    def storage_stats(self) -> dict:
        shards = lines = live = corrupt = size = 0
        for path in sorted(self.root.glob("*.jsonl")):
            shards += 1
            size += path.stat().st_size
            # the line count is maintained in memory (set on first load,
            # bumped per put): repeated stats polls — e.g. a monitor
            # hitting a service's /v1/stats — cost stat() calls, not a
            # full re-read of every shard
            live += len(self._load_shard(path.stem))
            lines += self._line_counts[path.stem]
            corrupt += self._corrupt_counts[path.stem]
        # superseded duplicates plus version-mismatched records; torn /
        # unparseable lines are reported separately as corrupt_lines
        stale = lines - live - corrupt
        return {
            "backend": self.name,
            "keys": live,
            "files": shards,
            "bytes": size,
            "stale_records": stale,
            "corrupt_lines": corrupt,
        }

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        """Rewrite shards keeping one line per key; optionally evict.

        ``max_age_days`` drops records older than the horizon;
        ``max_bytes`` then evicts oldest-first until the rewritten store
        fits the budget.  Reports superseded/stale lines dropped, torn
        lines repaired, and policy evictions separately.
        """
        before = after = dropped = corrupt_dropped = evicted = 0
        names = [path.stem for path in sorted(self.root.glob("*.jsonl"))]
        for name in names:
            before += self._shard_path(name).stat().st_size
            self._load_shard(name)
            corrupt_dropped += self._corrupt_counts[name]
            dropped += (
                self._line_counts[name]
                - self._corrupt_counts[name]
                - len(self._shards[name])
            )

        def _record_line(name: str, key: str) -> str:
            return json.dumps(
                {"version": CACHE_VERSION, "key": key,
                 "row": self._shards[name][key],
                 "ts": self._stamps[name].get(key, 0.0)},
                separators=(",", ":"),
            )

        def _evict(name: str, key: str) -> None:
            nonlocal evicted
            del self._shards[name][key]
            self._stamps[name].pop(key, None)
            evicted += 1

        if max_age_days is not None:
            cutoff = _now() - max_age_days * 86400.0
            for name in names:
                stale = [key for key, ts in self._stamps[name].items()
                         if ts < cutoff]
                for key in stale:
                    _evict(name, key)
        if max_bytes is not None:
            # the budget needs the exact on-disk line sizes; keep only
            # the integer sizes, never a second encoded copy of the store
            sizes: dict[tuple[str, str], int] = {}
            total = 0
            for name in names:
                for key in self._shards[name]:
                    size = len(_record_line(name, key)) + 1
                    sizes[(name, key)] = size
                    total += size
            oldest_first = sorted(
                (self._stamps[name].get(key, 0.0), name, key)
                for name in names for key in self._shards[name]
            )
            for _, name, key in oldest_first:
                if total <= max_bytes:
                    break
                total -= sizes[(name, key)]
                _evict(name, key)
        # streaming rewrite, one shard at a time — peak memory stays one
        # encoded line, not a serialized copy of the whole store
        for name in names:
            path = self._shard_path(name)
            tmp = path.with_suffix(".jsonl.tmp")
            with tmp.open("w") as fh:
                for key in self._shards[name]:
                    fh.write(_record_line(name, key) + "\n")
            tmp.replace(path)
            self._line_counts[name] = len(self._shards[name])
            self._corrupt_counts[name] = 0  # torn lines are never rewritten
            after += path.stat().st_size
        return {
            "backend": self.name,
            "bytes_before": before,
            "bytes_after": after,
            "bytes_reclaimed": before - after,
            "records_dropped": dropped,
            "corrupt_dropped": corrupt_dropped,
            "records_evicted": evicted,
        }


class SqliteBackend(CacheBackend):
    """Single-file sqlite store: one row per key, re-puts replace."""

    name = "sqlite"

    def __init__(self, root: Path) -> None:
        self.root = root
        self.path = root / "cache.sqlite"
        # check_same_thread=False: the solver service calls the cache from
        # handler/pool threads; every caller that shares a backend across
        # threads (only the service today) serializes access with a lock
        self._db = sqlite3.connect(self.path, check_same_thread=False)
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS rows ("
            " key TEXT PRIMARY KEY,"
            " version INTEGER NOT NULL,"
            " row TEXT NOT NULL,"
            " ts REAL NOT NULL DEFAULT 0)"
        )
        columns = {
            info[1] for info in self._db.execute("PRAGMA table_info(rows)")
        }
        if "ts" not in columns:  # database from before record timestamps
            self._db.execute(
                "ALTER TABLE rows ADD COLUMN ts REAL NOT NULL DEFAULT 0"
            )
        self._db.commit()

    def load(self, key: str) -> dict | None:
        cur = self._db.execute(
            "SELECT row FROM rows WHERE key = ? AND version = ?",
            (key, CACHE_VERSION),
        )
        hit = cur.fetchone()
        if hit is None:
            return None
        try:
            row = json.loads(hit[0])
        except ValueError:
            return None  # corrupt record degrades to a miss
        return row if isinstance(row, dict) else None

    def store(self, key: str, row: dict) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO rows (key, version, row, ts) "
            "VALUES (?, ?, ?, ?)",
            (key, CACHE_VERSION, json.dumps(row, separators=(",", ":")),
             _now()),
        )
        # commit per put: an interrupted campaign keeps every completed
        # solve, mirroring the JSONL backend's append-per-put durability
        self._db.commit()

    def keys(self) -> list[str]:
        cur = self._db.execute(
            "SELECT key FROM rows WHERE version = ? ORDER BY key",
            (CACHE_VERSION,),
        )
        return [key for (key,) in cur.fetchall()]

    def storage_stats(self) -> dict:
        live = self._db.execute(
            "SELECT COUNT(*) FROM rows WHERE version = ?", (CACHE_VERSION,)
        ).fetchone()[0]
        total = self._db.execute("SELECT COUNT(*) FROM rows").fetchone()[0]
        return {
            "backend": self.name,
            "keys": live,
            "files": 1,
            "bytes": self.path.stat().st_size,
            "stale_records": total - live,
            # sqlite writes are transactional — a torn record cannot
            # exist structurally, so this is always 0 (shape parity)
            "corrupt_lines": 0,
        }

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        """Drop stale-version rows, apply eviction policies, VACUUM.

        The ``max_bytes`` budget is estimated as stored-text length plus
        :data:`_SQLITE_RECORD_OVERHEAD` per record (sqlite page layout is
        not byte-exact the way JSONL lines are); eviction is oldest-first,
        keeping the newest records that fit, mirroring the JSONL backend.
        """
        before = self.path.stat().st_size
        cur = self._db.execute(
            "DELETE FROM rows WHERE version != ?", (CACHE_VERSION,)
        )
        dropped = cur.rowcount
        evicted = 0
        if max_age_days is not None:
            cutoff = _now() - max_age_days * 86400.0
            cur = self._db.execute(
                "DELETE FROM rows WHERE ts < ?", (cutoff,)
            )
            evicted += cur.rowcount
        if max_bytes is not None:
            newest_first = self._db.execute(
                "SELECT key, LENGTH(row) FROM rows ORDER BY ts DESC, key DESC"
            ).fetchall()
            total, cut = 0, None
            for i, (_, size) in enumerate(newest_first):
                total += size + _SQLITE_RECORD_OVERHEAD
                if total > max_bytes:
                    cut = i
                    break
            if cut is not None:
                for key, _ in newest_first[cut:]:
                    self._db.execute("DELETE FROM rows WHERE key = ?", (key,))
                    evicted += 1
        self._db.commit()
        self._db.execute("VACUUM")
        after = self.path.stat().st_size
        return {
            "backend": self.name,
            "bytes_before": before,
            "bytes_after": after,
            "bytes_reclaimed": before - after,
            "records_dropped": dropped,
            "records_evicted": evicted,
        }

    def close(self) -> None:
        self._db.close()


class HttpCacheBackend(CacheBackend):
    """Remote cache speaking the solver-service HTTP API.

    ``url`` points at a running solver service (``python -m repro
    serve``, :mod:`repro.service`); ``load``/``store`` become
    ``GET``/``PUT`` requests against ``/v1/cache/<key>``, so a whole
    fleet of campaign runners shares one warm server-side cache.  The
    wrapped client retries transient transport errors with backoff; a
    404 is a plain miss.  ``compact`` forwards the eviction policy to
    the server, which applies it to its own storage backend.
    """

    name = "http"

    def __init__(self, url: str, timeout: float = 30.0,
                 retries: int = 3) -> None:
        from ..service.client import ServiceClient

        self._client = ServiceClient(url, timeout=timeout, retries=retries)
        self.url = self._client.url

    def load(self, key: str) -> dict | None:
        return self._client.cache_get(key)

    def store(self, key: str, row: dict) -> None:
        self._client.cache_put(key, row)

    def keys(self) -> list[str]:
        return self._client.keys()

    def storage_stats(self) -> dict:
        remote = self._client.stats()["cache"]["storage"]
        return {
            "backend": self.name,
            "url": self.url,
            "remote_backend": remote.get("backend"),
            "keys": remote.get("keys", 0),
            "files": remote.get("files", 0),
            "bytes": remote.get("bytes", 0),
            "stale_records": remote.get("stale_records", 0),
            "corrupt_lines": remote.get("corrupt_lines", 0),
        }

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        info = self._client.compact(max_age_days=max_age_days,
                                    max_bytes=max_bytes)
        return {**info, "backend": self.name,
                "remote_backend": info.get("backend")}


#: Lazily-resolved exception classes the breaker treats as *transport*
#: failures (anything else — e.g. an application-level ServiceError — is
#: the caller's problem and never trips the breaker).  Resolved inside a
#: function because importing :mod:`repro.service.client` at module top
#: would be circular (service.server imports this module).
_TRANSPORT_ERRORS: tuple | None = None


def _transport_errors() -> tuple:
    global _TRANSPORT_ERRORS
    if _TRANSPORT_ERRORS is None:
        from ..service.client import ServiceUnavailableError

        _TRANSPORT_ERRORS = (
            ServiceUnavailableError, ConnectionError, TimeoutError, OSError
        )
    return _TRANSPORT_ERRORS


class CircuitBreakerBackend(CacheBackend):
    """Degrade-gracefully wrapper for a remote (or flaky) cache backend.

    State machine:

    * **closed** — every call goes through; ``failure_threshold``
      *consecutive* transport failures open the breaker;
    * **open** — calls do not touch the remote at all: gets degrade to
      misses, puts spill to the local journal (or are dropped when no
      ``journal_dir`` was given), ``keys()`` returns ``[]``; after the
      current backoff elapses the next call becomes a half-open probe;
    * **half-open** — one probing call goes through; success closes the
      breaker (and replays the journal), failure re-opens it with the
      backoff doubled (capped at ``max_reset``).

    The journal is a plain JSONL file of ``{"key":..., "row":...}``
    entries appended while open and replayed — oldest first, directly to
    the wrapped backend — on the first successful call after recovery.
    A replay interrupted by a fresh outage keeps the unreplayed suffix.

    Only *transport* errors (connection refused/reset, timeouts,
    :class:`~repro.service.client.ServiceUnavailableError`) trip the
    breaker; application-level errors propagate to the caller untouched.
    """

    def __init__(self, inner: CacheBackend,
                 journal_dir: Path | None = None,
                 failure_threshold: int = 3,
                 reset_after: float = 1.0,
                 max_reset: float = 60.0) -> None:
        if failure_threshold < 1:
            raise ReproError("failure_threshold must be >= 1")
        self.inner = inner
        self.name = inner.name
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.max_reset = max_reset
        if journal_dir is None:
            self.journal_path = None
        else:
            journal_dir = Path(journal_dir)
            journal_dir.mkdir(parents=True, exist_ok=True)
            self.journal_path = journal_dir / "spill-journal.jsonl"
        self.state = "closed"
        self.consecutive_failures = 0
        self.failures = 0
        self.opens = 0
        self.spilled_puts = 0
        self.dropped_puts = 0
        self.degraded_gets = 0
        self.replayed_puts = 0
        self._backoff = reset_after
        self._retry_at = 0.0
        self._journal_entries = self._count_journal()

    # ---------------------------------------------------------- breaker
    def _count_journal(self) -> int:
        if self.journal_path is None or not self.journal_path.exists():
            return 0
        with self.journal_path.open() as fh:
            return sum(1 for line in fh if line.strip())

    def _allow(self) -> bool:
        """Whether the next call may touch the remote (half-open probes)."""
        if self.state == "open":
            if _now() >= self._retry_at:
                self.state = "half-open"
                return True
            return False
        return True

    def _on_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == "half-open":
            # failed probe: back off harder before the next one
            self._backoff = min(self._backoff * 2.0, self.max_reset)
            self.state = "open"
            self._retry_at = _now() + self._backoff
        elif (
            self.state == "closed"
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = "open"
            self.opens += 1
            self._backoff = self.reset_after
            self._retry_at = _now() + self._backoff

    def _on_success(self) -> None:
        self.consecutive_failures = 0
        self.state = "closed"
        self._backoff = self.reset_after
        if self._journal_entries:
            self._replay()

    def _spill(self, key: str, row: dict) -> None:
        if self.journal_path is None:
            self.dropped_puts += 1
            return
        entry = json.dumps({"key": key, "row": row}, separators=(",", ":"))
        with self.journal_path.open("a") as fh:
            fh.write(entry + "\n")
        self._journal_entries += 1
        self.spilled_puts += 1

    def _replay(self) -> None:
        """Replay journaled puts to the recovered remote, oldest first.

        Stores go straight to ``inner`` (not through :meth:`store` —
        that would re-spill on failure and recurse through
        :meth:`_on_success`).  A mid-replay transport failure keeps the
        unreplayed suffix journaled and trips the breaker again.
        """
        if self.journal_path is None or not self.journal_path.exists():
            self._journal_entries = 0
            return
        with self.journal_path.open() as fh:
            entries = [line for line in fh if line.strip()]
        done = 0
        try:
            for line in entries:
                entry = json.loads(line)
                self.inner.store(entry["key"], entry["row"])
                done += 1
        except _transport_errors():
            remaining = entries[done:]
            tmp = self.journal_path.with_suffix(".jsonl.tmp")
            with tmp.open("w") as fh:
                fh.writelines(remaining)
            tmp.replace(self.journal_path)
            self.replayed_puts += done
            self._journal_entries = len(remaining)
            self._on_failure()
            return
        self.journal_path.unlink()
        self.replayed_puts += done
        self._journal_entries = 0

    def breaker_state(self) -> dict:
        """The breaker's live state document (reported in stats)."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "failures": self.failures,
            "opens": self.opens,
            "retry_in": (
                max(0.0, self._retry_at - _now())
                if self.state == "open" else 0.0
            ),
            "journal_entries": self._journal_entries,
            "spilled_puts": self.spilled_puts,
            "dropped_puts": self.dropped_puts,
            "degraded_gets": self.degraded_gets,
            "replayed_puts": self.replayed_puts,
        }

    # -------------------------------------------------------------- api
    def load(self, key: str) -> dict | None:
        if not self._allow():
            self.degraded_gets += 1
            return None
        try:
            row = self.inner.load(key)
        except _transport_errors():
            self._on_failure()
            self.degraded_gets += 1
            return None
        self._on_success()
        return row

    def store(self, key: str, row: dict) -> None:
        if not self._allow():
            self._spill(key, row)
            return
        try:
            self.inner.store(key, row)
        except _transport_errors():
            self._on_failure()
            self._spill(key, row)
            return
        self._on_success()

    def keys(self) -> list[str]:
        if not self._allow():
            return []
        try:
            out = self.inner.keys()
        except _transport_errors():
            self._on_failure()
            return []
        self._on_success()
        return out

    def storage_stats(self) -> dict:
        stats = None
        if self._allow():
            try:
                stats = self.inner.storage_stats()
                self._on_success()
            except _transport_errors():
                self._on_failure()
        if stats is None:
            stats = {
                "backend": self.name,
                "keys": 0,
                "files": 0,
                "bytes": 0,
                "stale_records": 0,
                "corrupt_lines": 0,
                "degraded": True,
            }
        stats["breaker"] = self.breaker_state()
        return stats

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        if not self._allow():
            raise ReproError(
                "remote cache breaker is open (remote unreachable); "
                "compact cannot run while degraded"
            )
        try:
            info = self.inner.compact(max_age_days=max_age_days,
                                      max_bytes=max_bytes)
        except _transport_errors():
            self._on_failure()
            raise
        self._on_success()
        return info

    def close(self) -> None:
        self.inner.close()


#: Registered backend names -> constructors.  Local backends take the
#: cache directory (``root: Path``); the ``"http"`` backend takes the
#: solver-service URL instead (``ResultCache(url=..., backend="http")``).
CACHE_BACKENDS = {
    JsonlBackend.name: JsonlBackend,
    SqliteBackend.name: SqliteBackend,
    HttpCacheBackend.name: HttpCacheBackend,
}


class ResultCache:
    """Content-addressed store mapping content hashes to result rows.

    ``backend`` selects the storage format (see :data:`CACHE_BACKENDS`);
    an already-constructed :class:`CacheBackend` is also accepted.  The
    local backends need ``root`` (the cache directory); the remote
    ``"http"`` backend needs ``url`` instead (the solver-service
    address — ``ResultCache(url="http://host:8300", backend="http")``).
    The cache counts hits/misses/puts and guarantees that returned rows
    never alias internal state.

    ``fallback_dir`` arms a :class:`CircuitBreakerBackend` around a
    remote backend: when the remote becomes unreachable the cache
    degrades (gets miss, puts journal to ``fallback_dir``) instead of
    failing, and the journal is replayed on recovery.  It applies to the
    ``"http"`` backend and to caller-constructed backend instances; the
    local backends cannot lose transport, so pairing them with
    ``fallback_dir`` is an error.

    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp())       # jsonl by default
    >>> key = "ab" * 32                               # a task content hash
    >>> cache.get(key) is None                        # miss
    True
    >>> cache.put(key, {"status": "ok", "period": 1.5, "latency": 9.0})
    >>> cache.get(key)["period"]                      # hit — a fresh copy
    1.5
    >>> stats = cache.storage_stats()
    >>> stats["keys"], stats["counters"]["hits"], stats["counters"]["misses"]
    (1, 1, 1)
    """

    def __init__(self, root: str | Path | None = None,
                 backend: str | CacheBackend = "jsonl",
                 url: str | None = None,
                 fallback_dir: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        if fallback_dir is not None and not isinstance(backend, CacheBackend) \
                and backend != HttpCacheBackend.name:
            raise ReproError(
                "'fallback_dir' only applies to remote cache backends "
                f"(the {backend!r} backend has no transport to lose)"
            )
        if isinstance(backend, CacheBackend):
            self._backend = backend
        elif backend == HttpCacheBackend.name:
            if url is None:
                raise ReproError(
                    "the 'http' cache backend needs the solver-service "
                    "url: ResultCache(url='http://host:port', "
                    "backend='http')"
                )
            self._backend = HttpCacheBackend(url)
        else:
            if url is not None:
                raise ReproError(
                    f"'url' only applies to the 'http' cache backend, "
                    f"not {backend!r}"
                )
            try:
                factory = CACHE_BACKENDS[backend]
            except KeyError:
                raise ReproError(
                    f"unknown cache backend {backend!r}; "
                    f"choose from {sorted(CACHE_BACKENDS)}"
                ) from None
            if self.root is None:
                raise ReproError(
                    f"the {backend!r} cache backend needs a root directory"
                )
            self._backend = factory(self.root)
        if fallback_dir is not None \
                and not isinstance(self._backend, CircuitBreakerBackend):
            journal_dir = Path(fallback_dir)
            journal_dir.mkdir(parents=True, exist_ok=True)
            self._backend = CircuitBreakerBackend(
                self._backend, journal_dir=journal_dir
            )
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @property
    def backend(self) -> str:
        """Name of the storage backend in use."""
        return self._backend.name

    @property
    def breaker_state(self) -> str | None:
        """The circuit breaker's state (``"closed"`` / ``"half-open"`` /
        ``"open"``), or ``None`` when no breaker wraps the backend.

        Reads an in-memory attribute — unlike :meth:`storage_stats` it
        never touches the network, so a metrics scrape can poll it.
        """
        if isinstance(self._backend, CircuitBreakerBackend):
            return self._backend.state
        return None

    # -------------------------------------------------------------- api
    def get(self, key: str) -> dict | None:
        """The cached row for ``key``, or ``None`` (counts hit/miss).

        The returned dict (including any nested containers) is owned by
        the caller — mutating it cannot affect later hits.
        """
        row = self._backend.load(key)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, key: str, row: dict) -> None:
        """Store ``row`` under ``key`` (written to disk immediately)."""
        self._backend.store(key, row)
        self.puts += 1

    def __contains__(self, key: str) -> bool:
        return self._backend.load(key) is not None

    def __len__(self) -> int:
        """Number of distinct keys currently stored."""
        return len(self._backend.keys())

    def keys(self) -> list[str]:
        return self._backend.keys()

    @property
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    # -------------------------------------------------------------- ops
    def storage_stats(self) -> dict:
        """On-disk shape plus this cache's hit/miss/put counters.

        Every backend reports the same shape: ``backend`` / ``keys`` /
        ``files`` / ``bytes`` / ``stale_records`` storage fields, and a
        ``counters`` dict mirroring :attr:`stats` — the counters are
        *this instance's* (in-process) counts, for all three backends
        alike; a solver service reports its own cache's counters in
        ``/v1/stats``.
        """
        return {**self._backend.storage_stats(),
                "counters": dict(self.stats)}

    def compact(self, max_age_days: float | None = None,
                max_bytes: int | None = None) -> dict:
        """Reclaim superseded/stale records; optionally evict by policy.

        ``max_age_days`` drops records older than the horizon (records
        from before timestamps existed count as infinitely old);
        ``max_bytes`` evicts oldest-first until the store fits.
        """
        return self._backend.compact(max_age_days=max_age_days,
                                     max_bytes=max_bytes)

    def close(self) -> None:
        self._backend.close()
