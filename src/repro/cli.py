"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print the paper's Table 1 from the executable registry; with
    ``--validate``, empirically validate every cell first (slow).
``solve``
    Build an instance from flags and solve it (polynomial route when one
    exists; ``--exact`` falls back to the exponential exact solvers,
    ``--heuristic`` to the portfolio).
``scenario``
    Solve one of the named scenarios shipped with the library.
``simulate``
    Solve an instance, then stream data sets through the discrete-event
    simulator and report measured period/latency.
``campaign``
    The experiment service (see :mod:`repro.campaign`):

    * ``campaign run`` — execute a declarative campaign through the
      multiprocessing runner and result cache; ``--retry-errors``
      resumes a partially-failed campaign re-solving only error rows,
      ``--cache-backend {jsonl,sqlite,http}`` selects the cache storage
      (``http`` shares a remote solver-service cache via
      ``--cache-url``);
    * ``campaign report`` — aggregate a saved result file (summary,
      per-engine timing breakdown, optional heuristic-gap table);
    * ``campaign profile`` — aggregate the per-solve ``timing`` blocks
      a warm cache (and/or results file) already holds into
      p50/p95/p99 latency percentiles per (engine, n, p) — no
      re-solving;
    * ``campaign pareto`` — trace (period, latency) Pareto fronts of one
      or more instances (``--file`` / ``--scenario``) through the
      runner, sharing the cache/workers/engine knobs; ``--out`` writes
      the fronts as a machine-readable JSON artifact;
    * ``campaign cache stats`` / ``campaign cache compact`` — inspect a
      cache, or rewrite it dropping superseded records;
      ``compact --max-age-days / --max-bytes`` additionally evicts old
      records / shrinks the store oldest-first to a byte budget.
``serve``
    Run the HTTP solver service (:mod:`repro.service`): a threaded
    solve/cache server with single-flight request coalescing over a
    local cache directory.  Clients share solves through
    ``POST /v1/solve`` and the cache through ``GET/PUT /v1/cache/<key>``;
    ``GET /metrics`` serves Prometheus metrics, and ``--trace-log``
    appends per-request spans to a JSON-lines file.
``submit``
    POST one instance (same flags as ``solve``) to a running solver
    service and print the result.

Accepted ``--file`` shapes (see :mod:`repro.serialization`)
-----------------------------------------------------------
``solve`` / ``simulate`` read any of these JSON documents:

* ``{"kind": "pipeline" | "fork" | "fork-join", ...}`` — an application
  only; processor speeds must come from ``--speeds``;
* ``{"kind": "instance", "application": {...}, "platform": {...},
  "allow_data_parallel": ...}`` — a full problem instance; ``--speeds``
  is optional and overrides the embedded platform, ``--data-parallel``
  force-enables data-parallelism;
* ``{"kind": "mapping", "application": {...}, "platform": {...},
  "groups": [...]}`` — a mapping document; its application and platform
  halves are re-solved (the stored groups are ignored), with the same
  override rules as ``"instance"``.

Examples
--------
::

    python -m repro table1
    python -m repro solve --graph pipeline --works 14,4,2,4 --speeds 1,1,1 \\
        --data-parallel --objective latency
    python -m repro solve --graph fork --root-work 2 --works 5,5,5,5 \\
        --speeds 1,2,4 --objective period
    python -m repro solve --file instance.json --objective latency
    python -m repro scenario master-slave-fork --objective period
    python -m repro simulate --graph pipeline --works 6,2,8 --speeds 2,1 \\
        --objective period --data-sets 500
    python -m repro campaign run --spec campaign.json --workers 4 \\
        --cache-dir .repro-cache --out results.jsonl
    python -m repro campaign run --spec campaign.json --cache-dir .repro-cache \\
        --cache-backend sqlite --retry-errors
    python -m repro campaign report --results results.jsonl --baseline exact
    python -m repro campaign pareto --scenario image-pipeline --points 16
    python -m repro campaign pareto --file instance.json --exact --workers 4 \\
        --cache-dir .repro-cache --out fronts.json
    python -m repro campaign profile --cache-dir .repro-cache
    python -m repro campaign cache stats --cache-dir .repro-cache
    python -m repro campaign cache compact --cache-dir .repro-cache \\
        --max-age-days 30 --max-bytes 10000000
    python -m repro serve --port 8300 --cache-dir .repro-cache \\
        --cache-backend sqlite --solve-workers 4 --trace-log spans.jsonl
    python -m repro submit --url http://127.0.0.1:8300 --graph pipeline \\
        --works 14,4,2,4 --speeds 1,1,1 --objective period
    python -m repro campaign run --spec campaign.json \\
        --cache-backend http --cache-url http://127.0.0.1:8300
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from . import (
    ForkApplication,
    ForkJoinApplication,
    NPHardError,
    Objective,
    PipelineApplication,
    Platform,
    ProblemSpec,
    ReproError,
    classify,
    solve,
)

__all__ = ["main", "build_parser"]


def _floats(text: str) -> list[float]:
    try:
        return [float(x) for x in text.split(",") if x.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad number list {text!r}") from exc


def _add_instance_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--file", default=None,
        help="JSON document (application, instance or mapping — see the "
             "module docstring); overrides --graph/--works/--root-work/"
             "--join-work, and --speeds too when it carries a platform",
    )
    parser.add_argument(
        "--graph", choices=("pipeline", "fork", "forkjoin"), default="pipeline"
    )
    parser.add_argument(
        "--works", type=_floats, default=None,
        help="comma-separated stage works (fork: branch works)",
    )
    parser.add_argument("--root-work", type=float, default=1.0,
                        help="fork/fork-join root work w0")
    parser.add_argument("--join-work", type=float, default=1.0,
                        help="fork-join join work")
    parser.add_argument("--speeds", type=_floats, default=None,
                        help="comma-separated processor speeds (required "
                             "unless --file carries a platform)")
    parser.add_argument("--data-parallel", action="store_true",
                        help="allow data-parallel stages")
    parser.add_argument(
        "--objective", choices=("period", "latency"), default="period"
    )
    parser.add_argument("--period-bound", type=float, default=None)
    parser.add_argument("--latency-bound", type=float, default=None)


def _instance_doc_parts(doc: dict, allow_dp: bool):
    """``(application, platform, allow_dp)`` of an instance/mapping doc.

    Mapping documents never carry an ``allow_data_parallel`` field; a
    mapping that uses data-parallel groups implies the strategy was
    allowed for its instance.
    """
    from .serialization import application_from_dict, platform_from_dict

    app = application_from_dict(doc["application"])
    platform = platform_from_dict(doc["platform"])
    allow_dp = allow_dp or bool(doc.get("allow_data_parallel", False))
    if doc.get("kind") == "mapping":
        allow_dp = allow_dp or any(
            g.get("assignment") == "data-parallel"
            for g in doc.get("groups", ())
        )
    return app, platform, allow_dp


def _build_spec(args) -> ProblemSpec:
    platform = None
    allow_dp = args.data_parallel
    if args.file is not None:
        from .serialization import application_from_dict

        with open(args.file) as fh:
            doc = json.load(fh)
        if doc.get("kind") in ("instance", "mapping"):
            app, platform, allow_dp = _instance_doc_parts(doc, allow_dp)
        else:
            app = application_from_dict(doc)
    elif args.works is None:
        raise ReproError("provide --works or --file")
    elif args.graph == "pipeline":
        app = PipelineApplication.from_works(args.works)
    elif args.graph == "fork":
        app = ForkApplication.from_works(args.root_work, args.works)
    else:
        app = ForkJoinApplication.from_works(
            args.root_work, args.works, args.join_work
        )
    if args.speeds is not None:
        platform = Platform.heterogeneous(args.speeds)
    elif platform is None:
        raise ReproError(
            "provide --speeds or a platform-bearing --file "
            "(an 'instance' or 'mapping' document)"
        )
    return ProblemSpec(app, platform, allow_data_parallel=allow_dp)


def _objective(args) -> Objective:
    return Objective.PERIOD if args.objective == "period" else Objective.LATENCY


def _budget(args):
    """A :class:`~repro.algorithms.budget.Budget` from CLI flags, or None."""
    from .algorithms.budget import Budget

    return Budget.from_mapping({
        "max_seconds": getattr(args, "max_seconds", None),
        "max_nodes": getattr(args, "max_nodes", None),
    })


def _solve_spec(spec, args, out) -> object | None:
    objective = _objective(args)
    entry = classify(
        spec, objective,
        bicriteria=(args.period_bound is not None
                    or args.latency_bound is not None),
    )
    print(f"instance  : {spec.describe()}", file=out)
    print(f"complexity: {entry.describe()}", file=out)
    try:
        solution = solve(
            spec, objective,
            period_bound=args.period_bound,
            latency_bound=args.latency_bound,
            exact_fallback=getattr(args, "exact", False),
            engine=getattr(args, "engine", "bnb"),
            budget=_budget(args),
        )
    except NPHardError as exc:
        if getattr(args, "heuristic", False) and args.graph == "pipeline":
            from .heuristics import pipeline_period_portfolio

            solution = pipeline_period_portfolio(
                spec.application, spec.platform, random.Random(0)
            )
            print("(NP-hard: portfolio heuristic used)", file=out)
        else:
            print(f"NP-hard: {exc}", file=out)
            return None
    meta = getattr(solution, "meta", {}) or {}
    if meta.get("status") == "budget_exhausted":
        print(f"budget    : exhausted ({meta.get('budget_reason')}) after "
              f"{meta.get('nodes')} nodes — incumbent within "
              f"{meta.get('gap', float('inf')):.2%} of proven lower bound "
              f"{meta.get('lower_bound'):.6g}", file=out)
    elif meta.get("algorithm") == "milp":
        print(f"engine    : milp ({meta.get('backend')}) — "
              "proven optimal (gap 0.00%)", file=out)
    print(f"solution  : {solution.describe()}", file=out)
    return solution


def _cmd_table1(args, out) -> int:
    if args.validate:
        from .analysis.table1 import regenerate_table1

        text, validations = regenerate_table1(
            random.Random(args.seed), trials=args.trials
        )
        print(text, file=out)
        failed = [k for k, v in validations.items() if not v.ok]
        print(f"\nvalidated cells: {len(validations) - len(failed)}/"
              f"{len(validations)}", file=out)
        return 1 if failed else 0
    from .analysis.table1 import render_table1

    print(render_table1(), file=out)
    return 0


def _cmd_solve(args, out) -> int:
    solution = _solve_spec(_build_spec(args), args, out)
    return 0 if solution is not None else 2


def _cmd_scenario(args, out) -> int:
    from .generators import get_scenario

    scenario = get_scenario(args.name)
    print(f"scenario  : {scenario.name} — {scenario.description}", file=out)
    spec = ProblemSpec(
        scenario.application, scenario.platform, scenario.allow_data_parallel
    )
    solution = _solve_spec(spec, args, out)
    return 0 if solution is not None else 2


def _cmd_simulate(args, out) -> int:
    from .simulation import simulate

    spec = _build_spec(args)
    solution = _solve_spec(spec, args, out)
    if solution is None:
        return 2
    result = simulate(solution.mapping, num_data_sets=args.data_sets)
    print(f"simulated : {args.data_sets} data sets", file=out)
    print(f"  measured period : {result.measured_period:.6g} "
          f"(analytic {solution.period:.6g})", file=out)
    print(f"  max latency     : {result.max_latency:.6g} "
          f"(analytic {solution.latency:.6g})", file=out)
    print(f"  order inversions: {result.order_inversions}", file=out)
    return 0


def _open_cache(args):
    from .campaign import ResultCache

    backend = getattr(args, "cache_backend", "jsonl")
    url = getattr(args, "cache_url", None)
    cache_dir = getattr(args, "cache_dir", None)
    fallback_dir = getattr(args, "cache_fallback_dir", None)
    if backend == "http" or url is not None:
        if url is None:
            raise ReproError("--cache-backend http needs --cache-url "
                             "(the solver-service address)")
        if backend != "http":
            raise ReproError("--cache-url only applies to "
                             "--cache-backend http")
        if cache_dir is not None:
            raise ReproError(
                "--cache-dir does not apply to --cache-backend http "
                "(the cache lives server-side); drop it or use a "
                "local backend"
            )
        return ResultCache(url=url, backend="http",
                           fallback_dir=fallback_dir)
    if fallback_dir is not None:
        raise ReproError("--cache-fallback-dir only applies to "
                         "--cache-backend http (local backends have no "
                         "transport to lose)")
    if cache_dir is None:
        return None
    return ResultCache(cache_dir, backend=backend)


def _cmd_campaign_run(args, out) -> int:
    from .campaign import CampaignSpec, run_campaign, save_rows, summarize
    from .obs.tracing import NULL_TRACER, Tracer

    with open(args.spec) as fh:
        spec = CampaignSpec.from_dict(json.load(fh))
    cache = _open_cache(args)
    if args.retry_errors and cache is None:
        raise ReproError("--retry-errors needs --cache-dir (the error rows "
                         "to retry live in the cache)")
    tracer = Tracer(args.trace_log) if args.trace_log else NULL_TRACER
    try:
        result = run_campaign(
            spec, cache=cache, workers=args.workers,
            chunk_size=args.chunk_size, retry_errors=args.retry_errors,
            task_timeout=args.task_timeout, tracer=tracer,
        )
    finally:
        tracer.close()
    if args.trace_log:
        print(f"[spans -> {args.trace_log}]", file=out)
    if args.out is not None:
        save_rows(args.out, result)
        print(f"[rows -> {args.out}]", file=out)
    print(summarize(result, title=f"campaign {spec.name!r}"), file=out)
    s = result.stats
    cache_note = (
        f", {s['cache_hits']} from cache" if cache is not None else ""
    )
    retry_note = f", {s['retried']} retried" if args.retry_errors else ""
    crash_note = f", {s['crashed']} crashed" if s.get("crashed") else ""
    budget_note = (f", {s['budget_exhausted']} budget-exhausted"
                   if s.get("budget_exhausted") else "")
    print(
        f"{s['tasks']} tasks in {s['seconds']:.3f}s "
        f"({s['workers']} workers): {s['ok']} ok, "
        f"{s['errors']} errors{cache_note}{retry_note}"
        f"{crash_note}{budget_note}",
        file=out,
    )
    return 0


def _cmd_campaign_report(args, out) -> int:
    from .campaign import (
        heuristic_gap,
        load_rows,
        summarize,
        timing_breakdown,
    )

    result = load_rows(args.results)
    print(summarize(result, title=f"campaign {result.name!r}"), file=out)
    breakdown = timing_breakdown(result)
    if breakdown:
        print(breakdown, file=out)
    if args.baseline is not None:
        _, text = heuristic_gap(result, baseline=args.baseline)
        print(text, file=out)
    errors = result.error_rows
    if errors:
        print(f"{len(errors)} error rows, e.g.:", file=out)
        for row in errors[:5]:
            print(
                f"  {row['instance_id']} [{row['solver']}/{row['objective']}]"
                f" {row['error_type']}: {row['error']}",
                file=out,
            )
    return 0


def _pareto_instances(args) -> list[tuple[str, ProblemSpec]]:
    """The (instance_id, spec) pairs named by --file / --scenario."""
    from pathlib import Path

    instances: list[tuple[str, ProblemSpec]] = []
    for path in args.file or ():
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("kind") not in ("instance", "mapping"):
            raise ReproError(
                f"{path}: campaign pareto needs an 'instance' or 'mapping' "
                f"document (got kind={doc.get('kind')!r}); bare applications "
                "carry no platform"
            )
        app, platform, allow_dp = _instance_doc_parts(
            doc, args.data_parallel
        )
        spec = ProblemSpec(app, platform, allow_data_parallel=allow_dp)
        instances.append((Path(path).stem, spec))
    for name in args.scenario or ():
        from .generators import get_scenario

        sc = get_scenario(name)
        spec = ProblemSpec(
            sc.application, sc.platform,
            allow_data_parallel=sc.allow_data_parallel or args.data_parallel,
        )
        instances.append((sc.name, spec))
    if not instances:
        raise ReproError(
            "campaign pareto needs at least one --file or --scenario"
        )
    return instances


def _cmd_campaign_pareto(args, out) -> int:
    from .campaign import pareto_comparison, save_pareto_fronts

    fronts, table = pareto_comparison(
        _pareto_instances(args),
        num_points=args.points,
        exact_fallback=args.exact,
        engine=args.engine,
        cache=_open_cache(args),
        workers=args.workers,
    )
    print(table, file=out)
    for iid, front in fronts.items():
        print(f"\nfront {iid!r} ({len(front)} points):", file=out)
        for sol in front:
            # repr: shortest round-trippable form — downstream tooling can
            # parse the printed points back to the exact float values
            print(f"  period={sol.period!r} latency={sol.latency!r}",
                  file=out)
    if args.out is not None:
        save_pareto_fronts(args.out, fronts, num_points=args.points)
        print(f"\n[fronts -> {args.out}]", file=out)
    return 0


def _cmd_campaign_cache(args, out) -> int:
    cache = _open_cache(args)
    if cache is None:
        raise ReproError("campaign cache needs --cache-dir (or "
                         "--cache-backend http --cache-url URL)")
    where = args.cache_dir if args.cache_dir is not None else args.cache_url
    if args.cache_command == "stats":
        info = cache.storage_stats()
        print(f"cache {where} [{info['backend']}]", file=out)
        if info.get("remote_backend"):
            print(f"  remote backend: {info['remote_backend']}", file=out)
        print(f"  keys          : {info['keys']}", file=out)
        print(f"  files         : {info['files']}", file=out)
        print(f"  bytes         : {info['bytes']}", file=out)
        print(f"  stale records : {info['stale_records']}", file=out)
        return 0
    # compact
    info = cache.compact(max_age_days=args.max_age_days,
                         max_bytes=args.max_bytes)
    print(
        f"compacted {where} [{info['backend']}]: "
        f"{info['bytes_before']} -> {info['bytes_after']} bytes "
        f"({info['bytes_reclaimed']} reclaimed, "
        f"{info['records_dropped']} superseded records dropped, "
        f"{info.get('records_evicted', 0)} evicted by policy)",
        file=out,
    )
    return 0


def _cmd_campaign_profile(args, out) -> int:
    from .campaign import (
        collect_timings,
        load_rows,
        profile_doc,
        profile_table,
    )

    rows = load_rows(args.results).rows if args.results is not None else None
    cache = _open_cache(args)
    if cache is None and rows is None:
        raise ReproError(
            "campaign profile needs --cache-dir (or --cache-backend http "
            "--cache-url URL) and/or --results"
        )
    timings = collect_timings(cache=cache, rows=rows)
    if not timings:
        print("no timing blocks found (empty cache/results, or rows "
              "saved before the timing field existed)", file=out)
        return 2
    print(profile_table(timings), file=out)
    if args.out is not None:
        with open(args.out, "w") as fh:
            json.dump(profile_doc(timings), fh, indent=2)
            fh.write("\n")
        print(f"[profile -> {args.out}]", file=out)
    return 0


def _cmd_campaign(args, out) -> int:
    handlers = {
        "run": _cmd_campaign_run,
        "report": _cmd_campaign_report,
        "pareto": _cmd_campaign_pareto,
        "cache": _cmd_campaign_cache,
        "profile": _cmd_campaign_profile,
    }
    return handlers[args.campaign_command](args, out)


def _cmd_serve(args, out) -> int:
    from .service import serve

    return serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        solve_workers=args.solve_workers,
        verbose=args.verbose,
        out=out,
        cache_url=args.cache_url,
        cache_fallback_dir=args.cache_fallback_dir,
        trace_log=args.trace_log,
    )


def _cmd_submit(args, out) -> int:
    from .serialization import spec_to_dict
    from .service import ServiceClient

    spec = _build_spec(args)
    request = {
        "instance": spec_to_dict(spec),
        "objective": args.objective,
        "period_bound": args.period_bound,
        "latency_bound": args.latency_bound,
        "solver": {
            "name": "cli-submit",
            "mode": args.mode,
            "exact_fallback": args.exact,
            "engine": args.engine,
            "seed": args.seed,
            "samples": args.samples,
            "max_seconds": args.max_seconds,
            "max_nodes": args.max_nodes,
        },
    }
    client = ServiceClient(args.url, timeout=args.timeout)
    response = client.solve(request)
    row = response["row"]
    how = ("cache hit" if response["cached"]
           else "coalesced" if response["coalesced"] else "solved")
    print(f"service   : {client.url} ({how})", file=out)
    print(f"key       : {response['key']}", file=out)
    if row["status"] != "ok":
        print(f"error     : {row['error_type']}: {row['error']}", file=out)
        return 2
    execution = row.get("execution") or {}
    if execution.get("status") == "budget_exhausted":
        print(f"budget    : exhausted ({execution.get('reason')}) — "
              f"incumbent within {execution.get('gap', 0.0):.2%} of lower "
              f"bound {execution.get('lower_bound')!r}", file=out)
    print(f"solution  : period={row['period']!r} "
          f"latency={row['latency']!r} value={row['value']!r} "
          f"[{row['algorithm']}]", file=out)
    timing = row.get("timing") or {}
    if timing.get("seconds") is not None:
        nodes = timing.get("nodes")
        effort = f", {nodes} nodes" if nodes is not None else ""
        print(f"timing    : {1e3 * timing['seconds']:.2f} ms solve wall "
              f"time [{timing.get('engine') or '-'}{effort}]", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benoit & Robert (2007) workflow-mapping reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_budget_flags(p) -> None:
        p.add_argument("--max-seconds", type=float, default=None,
                       help="wall-clock budget for exact solves; on "
                            "exhaustion the best incumbent is returned "
                            "with a proven lower bound and gap")
        p.add_argument("--max-nodes", type=int, default=None,
                       help="search-node budget for exact solves "
                            "(deterministic anytime cutoff); a bounded "
                            "budget also lifts the exact-engine size guard")

    p_table = sub.add_parser("table1", help="print (and validate) Table 1")
    p_table.add_argument("--validate", action="store_true")
    p_table.add_argument("--trials", type=int, default=2)
    p_table.add_argument("--seed", type=int, default=2007)

    p_solve = sub.add_parser("solve", help="solve one instance")
    _add_instance_flags(p_solve)
    p_solve.add_argument("--exact", action="store_true",
                         help="exponential exact fallback for NP-hard cells")
    p_solve.add_argument("--engine", choices=("bnb", "enumerate", "milp"),
                         default="bnb",
                         help="exact search engine for --exact: pruned "
                              "branch-and-bound (default), flat enumeration, "
                              "or the MILP formulation (needs PuLP/CBC or "
                              "scipy installed)")
    p_solve.add_argument("--heuristic", action="store_true",
                         help="portfolio heuristic for NP-hard pipelines")
    _add_budget_flags(p_solve)

    p_scen = sub.add_parser("scenario", help="solve a named scenario")
    p_scen.add_argument("name")
    p_scen.add_argument(
        "--objective", choices=("period", "latency"), default="period"
    )
    p_scen.add_argument("--period-bound", type=float, default=None)
    p_scen.add_argument("--latency-bound", type=float, default=None)
    p_scen.add_argument("--exact", action="store_true")
    p_scen.add_argument("--engine", choices=("bnb", "enumerate", "milp"),
                        default="bnb")
    p_scen.add_argument("--heuristic", action="store_true")
    _add_budget_flags(p_scen)

    p_sim = sub.add_parser("simulate", help="solve then simulate")
    _add_instance_flags(p_sim)
    p_sim.add_argument("--exact", action="store_true")
    p_sim.add_argument("--engine", choices=("bnb", "enumerate", "milp"),
                       default="bnb")
    p_sim.add_argument("--heuristic", action="store_true")
    p_sim.add_argument("--data-sets", type=int, default=500)
    _add_budget_flags(p_sim)

    p_camp = sub.add_parser(
        "campaign", help="run / resume / aggregate experiment campaigns"
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def _add_cache_flags(p) -> None:
        p.add_argument("--cache-dir", default=None,
                       help="content-addressed result cache directory "
                            "(jsonl/sqlite backends)")
        p.add_argument("--cache-backend",
                       choices=("jsonl", "sqlite", "http"),
                       default="jsonl",
                       help="cache storage: 256 append-only JSONL shards "
                            "(default), a single sqlite database, or a "
                            "remote solver service (--cache-url)")
        p.add_argument("--cache-url", default=None,
                       help="solver-service address for "
                            "--cache-backend http, e.g. "
                            "http://127.0.0.1:8300")
        p.add_argument("--cache-fallback-dir", default=None,
                       help="arm a circuit breaker around the http cache: "
                            "while the service is unreachable, gets degrade "
                            "to misses and puts spill to a journal here, "
                            "replayed to the service on recovery")

    p_run = camp_sub.add_parser(
        "run", help="execute a campaign spec through the sharded runner"
    )
    p_run.add_argument("--spec", required=True,
                       help="campaign spec JSON file (see repro.campaign)")
    p_run.add_argument("--workers", type=int, default=0,
                       help="process-pool size; 0 = serial reference mode")
    p_run.add_argument("--chunk-size", type=int, default=None,
                       help="tasks per worker chunk (default: auto)")
    _add_cache_flags(p_run)
    p_run.add_argument("--retry-errors", action="store_true",
                       help="re-solve cached error rows (resume a "
                            "partially-failed campaign after a fix); ok "
                            "rows still come from the cache")
    p_run.add_argument("--task-timeout", type=float, default=None,
                       help="per-task wall-clock cap for exact solves: a "
                            "runaway task becomes an uncacheable "
                            "budget-exhausted row instead of hanging "
                            "the campaign")
    p_run.add_argument("--out", default=None,
                       help="write result rows to this JSONL file")
    p_run.add_argument("--trace-log", default=None,
                       help="append cache-get/solve/cache-put spans to "
                            "this JSON-lines file (one trace id per run)")

    p_rep = camp_sub.add_parser(
        "report", help="aggregate a saved campaign result file"
    )
    p_rep.add_argument("--results", required=True,
                       help="JSONL rows written by 'campaign run --out'")
    p_rep.add_argument("--baseline", default=None,
                       help="solver name to compute gap ratios against")

    p_par = camp_sub.add_parser(
        "pareto",
        help="trace (period, latency) Pareto fronts through the runner",
    )
    p_par.add_argument("--file", action="append", default=None,
                       help="instance/mapping JSON document (repeatable)")
    p_par.add_argument("--scenario", action="append", default=None,
                       help="named scenario (repeatable)")
    p_par.add_argument("--points", type=int, default=16,
                       help="period-threshold grid size (default 16)")
    p_par.add_argument("--data-parallel", action="store_true",
                       help="allow data-parallel stages")
    p_par.add_argument("--exact", action="store_true",
                       help="exponential exact fallback for NP-hard cells")
    p_par.add_argument("--engine", choices=("bnb", "enumerate", "milp"),
                       default="bnb")
    p_par.add_argument("--workers", type=int, default=0,
                       help="process-pool size for the threshold sweep")
    p_par.add_argument("--out", default=None,
                       help="write the fronts as a machine-readable JSON "
                            "artifact (full float precision + mappings)")
    _add_cache_flags(p_par)

    p_cache = camp_sub.add_parser(
        "cache", help="inspect / compact a result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_stats = cache_sub.add_parser(
        "stats", help="key count, file count, bytes, stale records"
    )
    _add_cache_flags(p_stats)
    p_compact = cache_sub.add_parser(
        "compact",
        help="drop superseded duplicate-key records (and optionally evict "
             "by age/size); report bytes reclaimed",
    )
    _add_cache_flags(p_compact)
    p_compact.add_argument(
        "--max-age-days", type=float, default=None,
        help="evict records older than this many days (records from "
             "before timestamps existed count as infinitely old)")
    p_compact.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest records until the store fits this byte budget")

    p_prof = camp_sub.add_parser(
        "profile",
        help="aggregate cached per-solve timing blocks into latency "
             "percentiles per (engine, n, p) — no re-solving",
    )
    _add_cache_flags(p_prof)
    p_prof.add_argument("--results", default=None,
                        help="also (or instead) read timing blocks from "
                             "this results JSONL file")
    p_prof.add_argument("--out", default=None,
                        help="write the machine-readable profile JSON "
                             "artifact here")

    p_serve = sub.add_parser(
        "serve", help="run the HTTP solve/cache server (repro.service)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8300,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="server-side result cache directory "
                              "(jsonl/sqlite backends)")
    p_serve.add_argument("--cache-backend",
                         choices=("jsonl", "sqlite", "http"),
                         default="jsonl",
                         help="server-side cache storage format; 'http' "
                              "makes this server a solving tier in front "
                              "of an upstream cache service (--cache-url)")
    p_serve.add_argument("--cache-url", default=None,
                         help="upstream cache-service address for "
                              "--cache-backend http")
    p_serve.add_argument("--cache-fallback-dir", default=None,
                         help="circuit-breaker spill journal directory "
                              "for --cache-backend http: while the "
                              "upstream is unreachable, gets degrade to "
                              "misses and puts spill here, replayed on "
                              "recovery (breaker state in /v1/stats)")
    p_serve.add_argument("--solve-workers", type=int, default=4,
                         help="solver thread-pool size")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every request to stderr")
    p_serve.add_argument("--trace-log", default=None,
                         help="append request/cache-get/coalesce-wait/"
                              "solve/cache-put spans to this JSON-lines "
                              "file (trace ids from X-Repro-Trace)")

    p_submit = sub.add_parser(
        "submit", help="POST one solve to a running solver service"
    )
    _add_instance_flags(p_submit)
    p_submit.add_argument("--url", required=True,
                          help="solver-service address, "
                               "e.g. http://127.0.0.1:8300")
    p_submit.add_argument("--mode",
                          choices=("auto", "exact", "heuristic", "random"),
                          default="auto", help="solver mode (SolverConfig)")
    p_submit.add_argument("--exact", action="store_true",
                          help="exact_fallback for --mode auto")
    p_submit.add_argument("--engine", choices=("bnb", "enumerate", "milp"),
                          default="bnb")
    p_submit.add_argument("--seed", type=int, default=0,
                          help="seed for heuristic/random modes")
    p_submit.add_argument("--samples", type=int, default=64,
                          help="sample count for --mode random")
    p_submit.add_argument("--timeout", type=float, default=120.0,
                          help="per-request timeout in seconds")
    _add_budget_flags(p_submit)
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "solve": _cmd_solve,
    "scenario": _cmd_scenario,
    "simulate": _cmd_simulate,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
