"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print the paper's Table 1 from the executable registry; with
    ``--validate``, empirically validate every cell first (slow).
``solve``
    Build an instance from flags and solve it (polynomial route when one
    exists; ``--exact`` falls back to the exponential exact solvers,
    ``--heuristic`` to the portfolio).
``scenario``
    Solve one of the named scenarios shipped with the library.
``simulate``
    Solve an instance, then stream data sets through the discrete-event
    simulator and report measured period/latency.

Examples
--------
::

    python -m repro table1
    python -m repro solve --graph pipeline --works 14,4,2,4 --speeds 1,1,1 \\
        --data-parallel --objective latency
    python -m repro solve --graph fork --root-work 2 --works 5,5,5,5 \\
        --speeds 1,2,4 --objective period
    python -m repro scenario master-slave-fork --objective period
    python -m repro simulate --graph pipeline --works 6,2,8 --speeds 2,1 \\
        --objective period --data-sets 500
"""

from __future__ import annotations

import argparse
import random
import sys

from . import (
    ForkApplication,
    ForkJoinApplication,
    NPHardError,
    Objective,
    PipelineApplication,
    Platform,
    ProblemSpec,
    ReproError,
    classify,
    solve,
)

__all__ = ["main", "build_parser"]


def _floats(text: str) -> list[float]:
    try:
        return [float(x) for x in text.split(",") if x.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad number list {text!r}") from exc


def _add_instance_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--file", default=None,
        help="JSON application file (see repro.serialization); overrides "
             "--graph/--works/--root-work/--join-work",
    )
    parser.add_argument(
        "--graph", choices=("pipeline", "fork", "forkjoin"), default="pipeline"
    )
    parser.add_argument(
        "--works", type=_floats, default=None,
        help="comma-separated stage works (fork: branch works)",
    )
    parser.add_argument("--root-work", type=float, default=1.0,
                        help="fork/fork-join root work w0")
    parser.add_argument("--join-work", type=float, default=1.0,
                        help="fork-join join work")
    parser.add_argument("--speeds", type=_floats, required=True,
                        help="comma-separated processor speeds")
    parser.add_argument("--data-parallel", action="store_true",
                        help="allow data-parallel stages")
    parser.add_argument(
        "--objective", choices=("period", "latency"), default="period"
    )
    parser.add_argument("--period-bound", type=float, default=None)
    parser.add_argument("--latency-bound", type=float, default=None)


def _build_spec(args) -> ProblemSpec:
    if args.file is not None:
        import json

        from .serialization import application_from_dict

        with open(args.file) as fh:
            app = application_from_dict(json.load(fh))
    elif args.works is None:
        raise ReproError("provide --works or --file")
    elif args.graph == "pipeline":
        app = PipelineApplication.from_works(args.works)
    elif args.graph == "fork":
        app = ForkApplication.from_works(args.root_work, args.works)
    else:
        app = ForkJoinApplication.from_works(
            args.root_work, args.works, args.join_work
        )
    platform = Platform.heterogeneous(args.speeds)
    return ProblemSpec(app, platform, allow_data_parallel=args.data_parallel)


def _objective(args) -> Objective:
    return Objective.PERIOD if args.objective == "period" else Objective.LATENCY


def _solve_spec(spec, args, out) -> object | None:
    objective = _objective(args)
    entry = classify(
        spec, objective,
        bicriteria=(args.period_bound is not None
                    or args.latency_bound is not None),
    )
    print(f"instance  : {spec.describe()}", file=out)
    print(f"complexity: {entry.describe()}", file=out)
    try:
        solution = solve(
            spec, objective,
            period_bound=args.period_bound,
            latency_bound=args.latency_bound,
            exact_fallback=getattr(args, "exact", False),
            engine=getattr(args, "engine", "bnb"),
        )
    except NPHardError as exc:
        if getattr(args, "heuristic", False) and args.graph == "pipeline":
            from .heuristics import pipeline_period_portfolio

            solution = pipeline_period_portfolio(
                spec.application, spec.platform, random.Random(0)
            )
            print("(NP-hard: portfolio heuristic used)", file=out)
        else:
            print(f"NP-hard: {exc}", file=out)
            return None
    print(f"solution  : {solution.describe()}", file=out)
    return solution


def _cmd_table1(args, out) -> int:
    if args.validate:
        from .analysis.table1 import regenerate_table1

        text, validations = regenerate_table1(
            random.Random(args.seed), trials=args.trials
        )
        print(text, file=out)
        failed = [k for k, v in validations.items() if not v.ok]
        print(f"\nvalidated cells: {len(validations) - len(failed)}/"
              f"{len(validations)}", file=out)
        return 1 if failed else 0
    from .analysis.table1 import render_table1

    print(render_table1(), file=out)
    return 0


def _cmd_solve(args, out) -> int:
    solution = _solve_spec(_build_spec(args), args, out)
    return 0 if solution is not None else 2


def _cmd_scenario(args, out) -> int:
    from .generators import get_scenario

    scenario = get_scenario(args.name)
    print(f"scenario  : {scenario.name} — {scenario.description}", file=out)
    spec = ProblemSpec(
        scenario.application, scenario.platform, scenario.allow_data_parallel
    )
    solution = _solve_spec(spec, args, out)
    return 0 if solution is not None else 2


def _cmd_simulate(args, out) -> int:
    from .simulation import simulate

    spec = _build_spec(args)
    solution = _solve_spec(spec, args, out)
    if solution is None:
        return 2
    result = simulate(solution.mapping, num_data_sets=args.data_sets)
    print(f"simulated : {args.data_sets} data sets", file=out)
    print(f"  measured period : {result.measured_period:.6g} "
          f"(analytic {solution.period:.6g})", file=out)
    print(f"  max latency     : {result.max_latency:.6g} "
          f"(analytic {solution.latency:.6g})", file=out)
    print(f"  order inversions: {result.order_inversions}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benoit & Robert (2007) workflow-mapping reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="print (and validate) Table 1")
    p_table.add_argument("--validate", action="store_true")
    p_table.add_argument("--trials", type=int, default=2)
    p_table.add_argument("--seed", type=int, default=2007)

    p_solve = sub.add_parser("solve", help="solve one instance")
    _add_instance_flags(p_solve)
    p_solve.add_argument("--exact", action="store_true",
                         help="exponential exact fallback for NP-hard cells")
    p_solve.add_argument("--engine", choices=("bnb", "enumerate"),
                         default="bnb",
                         help="exact search engine for --exact: pruned "
                              "branch-and-bound (default) or flat enumeration")
    p_solve.add_argument("--heuristic", action="store_true",
                         help="portfolio heuristic for NP-hard pipelines")

    p_scen = sub.add_parser("scenario", help="solve a named scenario")
    p_scen.add_argument("name")
    p_scen.add_argument(
        "--objective", choices=("period", "latency"), default="period"
    )
    p_scen.add_argument("--period-bound", type=float, default=None)
    p_scen.add_argument("--latency-bound", type=float, default=None)
    p_scen.add_argument("--exact", action="store_true")
    p_scen.add_argument("--engine", choices=("bnb", "enumerate"),
                        default="bnb")
    p_scen.add_argument("--heuristic", action="store_true")

    p_sim = sub.add_parser("simulate", help="solve then simulate")
    _add_instance_flags(p_sim)
    p_sim.add_argument("--exact", action="store_true")
    p_sim.add_argument("--engine", choices=("bnb", "enumerate"),
                       default="bnb")
    p_sim.add_argument("--heuristic", action="store_true")
    p_sim.add_argument("--data-sets", type=int, default=500)
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "solve": _cmd_solve,
    "scenario": _cmd_scenario,
    "simulate": _cmd_simulate,
}


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
