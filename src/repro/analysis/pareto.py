"""Bi-criteria trade-off curves (period vs latency).

The paper studies bi-criteria optimization as "minimize latency under a
period threshold" (and the converse).  Sweeping the threshold over the
achievable periods traces the Pareto front of a problem instance, which the
examples plot as text.

The sweep executes through the campaign runner
(:mod:`repro.campaign.runner`): the two extreme solves and the whole
threshold batch become content-addressed tasks, so a :class:`ResultCache`
makes repeat or overlapping fronts (e.g. the same instance at different
resolutions, or a re-run after a crash) resolve without re-solving, and
``workers=N`` fans the independent threshold solves out to processes.
"""

from __future__ import annotations

from ..algorithms.problem import Objective, ProblemSpec, Solution
from ..algorithms.registry import NPHardError
from ..core.costs import FLOAT_TOL
from ..core.exceptions import InfeasibleProblemError, ReproError
from ..serialization import mapping_from_dict, spec_to_dict

__all__ = ["pareto_front", "threshold_grid", "non_dominated"]


def threshold_grid(k_min: float, k_max: float, num_points: int) -> list[float]:
    """Geometric period-threshold grid from ``k_min`` to ``k_max``.

    Each point is computed directly as ``k_min * ratio**i`` (never by
    repeated multiplication, which accumulates float error over the
    grid) and the final threshold is pinned to exactly ``k_max`` — the
    sweep must always include the min-latency extreme, even for extreme
    ``k_max / k_min`` ratios where ``ratio**(n-1)`` rounds short.
    """
    if k_max <= k_min * (1 + FLOAT_TOL):
        return [k_min]
    num_points = max(2, num_points)
    ratio = (k_max / k_min) ** (1.0 / (num_points - 1))
    grid = [k_min * ratio ** i for i in range(num_points - 1)]
    grid.append(k_max)
    return grid


def non_dominated(solutions) -> list[Solution]:
    """The (period, latency) non-dominated subset, sorted by period.

    A solution is kept iff no other has (period <=, latency <=) with at
    least one strictly smaller (beyond :data:`FLOAT_TOL`).  Ties collapse
    to a single representative.  The result has strictly increasing
    period and strictly decreasing latency — a true staircase front.
    """
    front: list[Solution] = []
    best_latency = float("inf")
    for sol in sorted(solutions, key=lambda s: (s.period, s.latency)):
        if sol.latency < best_latency - FLOAT_TOL:
            front.append(sol)
            best_latency = sol.latency
    return front


def _solution_from_row(row: dict) -> Solution:
    return Solution(
        mapping=mapping_from_dict(row["mapping"]),
        period=row["period"],
        latency=row["latency"],
        meta={"algorithm": row.get("algorithm")},
    )


def _raise_row_error(row: dict) -> None:
    kind, message = row.get("error_type"), row.get("error", "")
    if kind == "NPHardError":
        raise NPHardError(message)
    if kind == "InfeasibleProblemError":
        raise InfeasibleProblemError(message)
    raise ReproError(f"{kind}: {message}")


def pareto_front(
    spec: ProblemSpec,
    num_points: int = 32,
    exact_fallback: bool = False,
    engine: str = "bnb",
    cache=None,
    workers: int = 0,
) -> list[Solution]:
    """Non-dominated (period, latency) solutions of an instance.

    Strategy: find the two extreme solutions (min period; min latency),
    then sweep period thresholds between them (geometric grid) and solve
    "min latency s.t. period <= K" at each; dominated points are dropped.
    Exact for the polynomial variants; uses the exponential exact solvers
    when ``exact_fallback`` is set, searched by ``engine`` (the pruned
    branch-and-bound default reaches well past the flat enumerator's old
    size limits).  ``cache`` (a :class:`repro.campaign.ResultCache`) and
    ``workers`` thread through to the campaign runner.
    """
    from ..campaign.runner import execute_tasks
    from ..campaign.spec import Task

    instance = spec_to_dict(spec)
    solver = {
        "name": "pareto",
        "mode": "auto",
        "exact_fallback": exact_fallback,
        "engine": engine,
    }

    def _task(index: int, objective: Objective,
              period_bound: float | None = None) -> Task:
        return Task(
            index=index,
            instance_id="pareto",
            instance=instance,
            objective=objective.value,
            period_bound=period_bound,
            latency_bound=None,
            solver=solver,
        )

    # two tasks never amortize a process pool: resolve the extremes
    # serially, save the fan-out for the threshold sweep below
    extremes = execute_tasks(
        [_task(0, Objective.PERIOD), _task(1, Objective.LATENCY)],
        cache=cache, workers=0,
    )
    for row in extremes:
        if row["status"] != "ok":
            _raise_row_error(row)
    lo, hi = (_solution_from_row(row) for row in extremes)

    thresholds = threshold_grid(lo.period, max(hi.period, lo.period),
                                num_points)

    sweep = execute_tasks(
        [
            _task(i, Objective.LATENCY, period_bound=bound * (1 + FLOAT_TOL))
            for i, bound in enumerate(thresholds)
        ],
        cache=cache, workers=workers,
    )

    candidates: list[Solution] = [lo, hi]
    for row in sweep:
        if row["status"] != "ok":
            if row.get("error_type") == "InfeasibleProblemError":
                continue
            _raise_row_error(row)
        candidates.append(_solution_from_row(row))
    # a full non-domination pass over every candidate: filtering against
    # front[-1] alone is wrong — a later (larger) threshold can admit a
    # solution with both smaller period and smaller latency than an
    # earlier point, which must then be evicted from the front
    return non_dominated(candidates)
