"""Bi-criteria trade-off curves (period vs latency).

The paper studies bi-criteria optimization as "minimize latency under a
period threshold" (and the converse).  Sweeping the threshold over the
achievable periods traces the Pareto front of a problem instance, which the
examples plot as text.
"""

from __future__ import annotations

from ..algorithms.problem import Objective, ProblemSpec, Solution
from ..algorithms.registry import solve
from ..core.costs import FLOAT_TOL
from ..core.exceptions import InfeasibleProblemError

__all__ = ["pareto_front"]


def pareto_front(
    spec: ProblemSpec,
    num_points: int = 32,
    exact_fallback: bool = False,
) -> list[Solution]:
    """Non-dominated (period, latency) solutions of an instance.

    Strategy: find the two extreme solutions (min period; min latency),
    then sweep period thresholds between them (geometric grid) and solve
    "min latency s.t. period <= K" at each; dominated points are dropped.
    Exact for the polynomial variants; uses the exponential exact solvers
    when ``exact_fallback`` is set (tiny instances only).
    """
    lo = solve(spec, Objective.PERIOD, exact_fallback=exact_fallback)
    hi = solve(spec, Objective.LATENCY, exact_fallback=exact_fallback)
    front: list[Solution] = []

    thresholds: list[float] = []
    k_min, k_max = lo.period, max(hi.period, lo.period)
    if k_max <= k_min * (1 + FLOAT_TOL):
        thresholds = [k_min]
    else:
        ratio = (k_max / k_min) ** (1.0 / max(1, num_points - 1))
        value = k_min
        for _ in range(num_points):
            thresholds.append(value)
            value *= ratio

    for bound in thresholds:
        try:
            sol = solve(
                spec,
                Objective.LATENCY,
                period_bound=bound * (1 + FLOAT_TOL),
                exact_fallback=exact_fallback,
            )
        except InfeasibleProblemError:
            continue
        if front and sol.latency >= front[-1].latency - FLOAT_TOL:
            continue
        front.append(sol)
    return front
