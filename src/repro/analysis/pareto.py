"""Bi-criteria trade-off curves (period vs latency).

The paper studies bi-criteria optimization as "minimize latency under a
period threshold" (and the converse).  Sweeping the threshold over the
achievable periods traces the Pareto front of a problem instance, which the
examples plot as text.

The sweep executes through the campaign runner
(:mod:`repro.campaign.runner`): the two extreme solves and the whole
threshold batch become content-addressed tasks, so a :class:`ResultCache`
makes repeat or overlapping fronts (e.g. the same instance at different
resolutions, or a re-run after a crash) resolve without re-solving, and
``workers=N`` fans the independent threshold solves out to processes.
"""

from __future__ import annotations

from ..algorithms.problem import Objective, ProblemSpec, Solution
from ..algorithms.registry import NPHardError
from ..core.costs import FLOAT_TOL
from ..core.exceptions import InfeasibleProblemError, ReproError
from ..serialization import mapping_from_dict, spec_to_dict

__all__ = ["pareto_front", "threshold_grid", "non_dominated"]


def threshold_grid(k_min: float, k_max: float, num_points: int) -> list[float]:
    """Geometric period-threshold grid from ``k_min`` to ``k_max``.

    Each point is computed directly as ``k_min * ratio**i`` (never by
    repeated multiplication, which accumulates float error over the
    grid) and the final threshold is pinned to exactly ``k_max`` — the
    sweep must always include the min-latency extreme, even for extreme
    ``k_max / k_min`` ratios where ``ratio**(n-1)`` rounds short.

    >>> threshold_grid(1.0, 8.0, 4)
    [1.0, 2.0, 4.0, 8.0]

    A degenerate range collapses to a single threshold:

    >>> threshold_grid(3.0, 3.0, 10)
    [3.0]
    """
    if k_max <= k_min * (1 + FLOAT_TOL):
        return [k_min]
    num_points = max(2, num_points)
    ratio = (k_max / k_min) ** (1.0 / (num_points - 1))
    grid = [k_min * ratio ** i for i in range(num_points - 1)]
    grid.append(k_max)
    return grid


def non_dominated(solutions) -> list[Solution]:
    """The (period, latency) non-dominated subset, sorted by period.

    A solution is kept iff no other has (period <=, latency <=) with at
    least one strictly smaller (beyond :data:`FLOAT_TOL`).  Ties collapse
    to a single representative.  The result has strictly increasing
    period and strictly decreasing latency — a true staircase front.

    Accepts anything with ``period`` / ``latency`` attributes:

    >>> from types import SimpleNamespace as Point
    >>> pts = [Point(period=2.0, latency=5.0),
    ...        Point(period=1.0, latency=9.0),
    ...        Point(period=3.0, latency=5.0)]   # dominated by (2.0, 5.0)
    >>> [(s.period, s.latency) for s in non_dominated(pts)]
    [(1.0, 9.0), (2.0, 5.0)]
    """
    front: list[Solution] = []
    best_latency = float("inf")
    for sol in sorted(solutions, key=lambda s: (s.period, s.latency)):
        if sol.latency < best_latency - FLOAT_TOL:
            front.append(sol)
            best_latency = sol.latency
    return front


def _solution_from_row(row: dict) -> Solution:
    return Solution(
        mapping=mapping_from_dict(row["mapping"]),
        period=row["period"],
        latency=row["latency"],
        meta={"algorithm": row.get("algorithm")},
    )


def _raise_row_error(row: dict) -> None:
    kind, message = row.get("error_type"), row.get("error", "")
    if kind == "NPHardError":
        raise NPHardError(message)
    if kind == "InfeasibleProblemError":
        raise InfeasibleProblemError(message)
    raise ReproError(f"{kind}: {message}")


def pareto_front(
    spec: ProblemSpec,
    num_points: int = 32,
    exact_fallback: bool = False,
    engine: str = "bnb",
    cache=None,
    workers: int = 0,
    context_cache=None,
) -> list[Solution]:
    """Non-dominated (period, latency) solutions of an instance.

    Strategy: find the two extreme solutions (min period; min latency),
    then sweep period thresholds between them (geometric grid) and solve
    "min latency s.t. period <= K" at each; dominated points are dropped.
    Exact for the polynomial variants; uses the exponential exact solvers
    when ``exact_fallback`` is set, searched by ``engine`` (the pruned
    branch-and-bound default reaches well past the flat enumerator's old
    size limits).  ``cache`` (a :class:`repro.campaign.ResultCache`) and
    ``workers`` thread through to the campaign runner.

    The sweep is *context-aware*: one
    :class:`~repro.algorithms.solve_context.ContextCache` is built per
    front (or passed in via ``context_cache``) and shared by the extreme
    solves and every threshold point, so the per-instance solver state —
    branch-and-bound search tables, the enumeration candidate list, the
    Theorem 8 DP memo — is built once instead of once per threshold.
    The returned front is bit-identical to per-point cold solves.

    The Section 2 pipeline on speeds (2, 2, 1) trades a 20% longer
    period for a 2-unit shorter latency (NP-hard Thm 9 cell, hence the
    exact fallback):

    >>> import repro
    >>> app = repro.PipelineApplication.from_works([14, 4, 2, 4])
    >>> spec = repro.ProblemSpec(app, repro.Platform.heterogeneous([2, 2, 1]))
    >>> front = pareto_front(spec, num_points=8, exact_fallback=True)
    >>> [(s.period, s.latency) for s in front]
    [(5.0, 14.0), (6.0, 12.0)]
    """
    from ..algorithms.solve_context import ContextCache
    from ..campaign.runner import execute_tasks
    from ..campaign.spec import Task

    if context_cache is None:
        context_cache = ContextCache()

    instance = spec_to_dict(spec)
    solver = {
        "name": "pareto",
        "mode": "auto",
        "exact_fallback": exact_fallback,
        "engine": engine,
    }

    def _task(index: int, objective: Objective,
              period_bound: float | None = None) -> Task:
        return Task(
            index=index,
            instance_id="pareto",
            instance=instance,
            objective=objective.value,
            period_bound=period_bound,
            latency_bound=None,
            solver=solver,
        )

    # two tasks never amortize a process pool: resolve the extremes
    # serially, save the fan-out for the threshold sweep below
    extremes = execute_tasks(
        [_task(0, Objective.PERIOD), _task(1, Objective.LATENCY)],
        cache=cache, workers=0, context_cache=context_cache,
    )
    for row in extremes:
        if row["status"] != "ok":
            _raise_row_error(row)
    lo, hi = (_solution_from_row(row) for row in extremes)

    thresholds = threshold_grid(lo.period, max(hi.period, lo.period),
                                num_points)

    sweep = execute_tasks(
        [
            _task(i, Objective.LATENCY, period_bound=bound * (1 + FLOAT_TOL))
            for i, bound in enumerate(thresholds)
        ],
        cache=cache, workers=workers, context_cache=context_cache,
    )

    candidates: list[Solution] = [lo, hi]
    for row in sweep:
        if row["status"] != "ok":
            if row.get("error_type") == "InfeasibleProblemError":
                continue
            _raise_row_error(row)
        candidates.append(_solution_from_row(row))
    # a full non-domination pass over every candidate: filtering against
    # front[-1] alone is wrong — a later (larger) threshold can admit a
    # solution with both smaller period and smaller latency than an
    # earlier point, which must then be evicted from the front
    return non_dominated(candidates)
