"""Bi-criteria trade-off curves (period vs latency).

The paper studies bi-criteria optimization as "minimize latency under a
period threshold" (and the converse).  Sweeping the threshold over the
achievable periods traces the Pareto front of a problem instance, which the
examples plot as text.

The sweep executes through the campaign runner
(:mod:`repro.campaign.runner`): the two extreme solves and the whole
threshold batch become content-addressed tasks, so a :class:`ResultCache`
makes repeat or overlapping fronts (e.g. the same instance at different
resolutions, or a re-run after a crash) resolve without re-solving, and
``workers=N`` fans the independent threshold solves out to processes.
"""

from __future__ import annotations

from ..algorithms.problem import Objective, ProblemSpec, Solution
from ..algorithms.registry import NPHardError
from ..core.costs import FLOAT_TOL
from ..core.exceptions import InfeasibleProblemError, ReproError
from ..serialization import mapping_from_dict, spec_to_dict

__all__ = ["pareto_front"]


def _solution_from_row(row: dict) -> Solution:
    return Solution(
        mapping=mapping_from_dict(row["mapping"]),
        period=row["period"],
        latency=row["latency"],
        meta={"algorithm": row.get("algorithm")},
    )


def _raise_row_error(row: dict) -> None:
    kind, message = row.get("error_type"), row.get("error", "")
    if kind == "NPHardError":
        raise NPHardError(message)
    if kind == "InfeasibleProblemError":
        raise InfeasibleProblemError(message)
    raise ReproError(f"{kind}: {message}")


def pareto_front(
    spec: ProblemSpec,
    num_points: int = 32,
    exact_fallback: bool = False,
    engine: str = "bnb",
    cache=None,
    workers: int = 0,
) -> list[Solution]:
    """Non-dominated (period, latency) solutions of an instance.

    Strategy: find the two extreme solutions (min period; min latency),
    then sweep period thresholds between them (geometric grid) and solve
    "min latency s.t. period <= K" at each; dominated points are dropped.
    Exact for the polynomial variants; uses the exponential exact solvers
    when ``exact_fallback`` is set, searched by ``engine`` (the pruned
    branch-and-bound default reaches well past the flat enumerator's old
    size limits).  ``cache`` (a :class:`repro.campaign.ResultCache`) and
    ``workers`` thread through to the campaign runner.
    """
    from ..campaign.runner import execute_tasks
    from ..campaign.spec import Task

    instance = spec_to_dict(spec)
    solver = {
        "name": "pareto",
        "mode": "auto",
        "exact_fallback": exact_fallback,
        "engine": engine,
    }

    def _task(index: int, objective: Objective,
              period_bound: float | None = None) -> Task:
        return Task(
            index=index,
            instance_id="pareto",
            instance=instance,
            objective=objective.value,
            period_bound=period_bound,
            latency_bound=None,
            solver=solver,
        )

    # two tasks never amortize a process pool: resolve the extremes
    # serially, save the fan-out for the threshold sweep below
    extremes = execute_tasks(
        [_task(0, Objective.PERIOD), _task(1, Objective.LATENCY)],
        cache=cache, workers=0,
    )
    for row in extremes:
        if row["status"] != "ok":
            _raise_row_error(row)
    lo, hi = (_solution_from_row(row) for row in extremes)

    thresholds: list[float] = []
    k_min, k_max = lo.period, max(hi.period, lo.period)
    if k_max <= k_min * (1 + FLOAT_TOL):
        thresholds = [k_min]
    else:
        ratio = (k_max / k_min) ** (1.0 / max(1, num_points - 1))
        value = k_min
        for _ in range(num_points):
            thresholds.append(value)
            value *= ratio

    sweep = execute_tasks(
        [
            _task(i, Objective.LATENCY, period_bound=bound * (1 + FLOAT_TOL))
            for i, bound in enumerate(thresholds)
        ],
        cache=cache, workers=workers,
    )

    front: list[Solution] = []
    for row in sweep:
        if row["status"] != "ok":
            if row.get("error_type") == "InfeasibleProblemError":
                continue
            _raise_row_error(row)
        sol = _solution_from_row(row)
        if front and sol.latency >= front[-1].latency - FLOAT_TOL:
            continue
        front.append(sol)
    return front
