"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the paper's rows next to the measured ones;
this module keeps the formatting in one place (monospace-aligned columns,
no third-party dependencies).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]]
    cells += [[str(c) for c in row] for row in rows]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
