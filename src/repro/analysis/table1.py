"""Regenerating Table 1 of the paper — with empirical validation.

The paper's headline artifact is a complexity table, not a measurement
table, so "reproducing" it means two things:

1. **rendering** the published statuses from the executable registry
   (:data:`repro.algorithms.registry.TABLE`), in the paper's layout;
2. **validating** each cell empirically:

   * polynomial cells — the corresponding algorithm must return the same
     optimum as exhaustive search on a battery of randomized instances;
   * NP-hard cells — the theorem's reduction must round-trip: the reduced
     scheduling instance meets the decision bound iff the source
     2-PARTITION / N3DM instance is a YES instance (checked on generated
     YES *and* NO instances).

``benchmarks/bench_table1.py`` runs this and prints the table with a
``checked`` mark per cell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algorithms import brute_force
from ..algorithms.problem import Objective, ProblemSpec
from ..algorithms.registry import TABLE, Criterion, solve
from ..core.costs import FLOAT_TOL
from ..generators.instances import (
    random_fork,
    random_pipeline,
    random_platform,
)
from ..nphard import (
    Thm5Reduction,
    Thm9Reduction,
    Thm12Reduction,
    Thm13Reduction,
    Thm15Reduction,
    random_n3dm_yes,
    random_two_partition,
    random_two_partition_yes,
)
from .report import format_table

__all__ = ["CellValidation", "validate_cell", "regenerate_table1", "render_table1"]


@dataclass
class CellValidation:
    """Outcome of validating one Table 1 cell."""

    trials: int
    passed: int
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.trials > 0 and self.passed == self.trials

    @property
    def mark(self) -> str:
        return "ok" if self.ok else f"FAIL({self.passed}/{self.trials})"


def _spec_for(
    rng: random.Random, graph: str, app_hom: bool, plat_hom: bool, dp: bool
) -> ProblemSpec:
    n = rng.randint(1, 4)
    p = rng.randint(1, 4)
    if graph == "pipeline":
        app = random_pipeline(rng, n, 1, 9, homogeneous=app_hom)
    else:
        app = random_fork(rng, n, 1, 9, homogeneous=app_hom)
    platform = random_platform(rng, p, 1, 5, homogeneous=plat_hom)
    return ProblemSpec(app, platform, allow_data_parallel=dp)


def _validate_poly(
    rng: random.Random,
    graph: str,
    app_hom: bool,
    plat_hom: bool,
    dp: bool,
    crit: Criterion,
    trials: int,
) -> CellValidation:
    passed = 0
    for _ in range(trials):
        spec = _spec_for(rng, graph, app_hom, plat_hom, dp)
        if crit is Criterion.PERIOD:
            want = brute_force.optimal(spec, Objective.PERIOD).period
            got = solve(spec, Objective.PERIOD).period
        elif crit is Criterion.LATENCY:
            want = brute_force.optimal(spec, Objective.LATENCY).latency
            got = solve(spec, Objective.LATENCY).latency
        else:
            bound = brute_force.optimal(spec, Objective.PERIOD).period * (
                1.0 + rng.random()
            )
            want = brute_force.optimal(
                spec, Objective.LATENCY, period_bound=bound
            ).latency
            got = solve(spec, Objective.LATENCY, period_bound=bound).latency
        if abs(got - want) <= FLOAT_TOL * max(1.0, abs(want)):
            passed += 1
    return CellValidation(trials=trials, passed=passed, detail="vs brute force")


def _gadget_two_partition(rng: random.Random, yes: bool, distinct_small: bool):
    """Sample a 2-PARTITION instance; optionally with the Thm 5/13 side
    conditions (distinct values, all < S/2 — which needs m >= 4 for YES)."""
    for _ in range(10_000):
        m = rng.randint(4, 6)
        inst = (
            random_two_partition_yes(rng, m, 20)
            if yes
            else random_two_partition(rng, m, 20)
        )
        if inst.is_yes() != yes:
            continue
        if distinct_small:
            v = inst.values
            if len(set(v)) != len(v) or any(2 * a >= inst.total for a in v):
                continue
        return inst
    raise RuntimeError("gadget sampling failed")


def _n3dm_instance(rng: random.Random, yes: bool):
    """A YES instance by construction, or a NO instance by a sum-preserving
    perturbation of one (moves a unit of mass between two x-values, keeping
    the Theorem 9 side conditions intact); ``None`` if sampling fails."""
    from ..nphard.n3dm import N3DMInstance

    if yes:
        return random_n3dm_yes(rng, rng.randint(2, 3))
    for _ in range(200):
        base = random_n3dm_yes(rng, rng.randint(2, 3))
        if base.m < 2:
            continue
        xs = list(base.xs)
        i, j = rng.sample(range(base.m), 2)
        xs[i] += 1
        xs[j] -= 1
        if xs[j] <= 0 or xs[i] >= base.M:
            continue
        cand = N3DMInstance(tuple(xs), base.ys, base.zs, base.M)
        if cand.satisfies_side_conditions() and not cand.is_yes():
            return cand
    return None


def _validate_nphard(
    rng: random.Random,
    graph: str,
    app_hom: bool,
    plat_hom: bool,
    dp: bool,
    crit: Criterion,
    trials: int,
) -> CellValidation:
    """Round-trip the theorem's reduction on YES and NO instances."""
    passed = 0
    for t in range(trials):
        yes = t % 2 == 0
        if graph == "pipeline" and dp:
            inst = _gadget_two_partition(rng, yes, distinct_small=True)
            red = Thm5Reduction(inst)
            objective = (
                Objective.PERIOD if crit is Criterion.PERIOD else Objective.LATENCY
            )
            ok = red.schedule_meets_bound(objective) == yes
            detail = "Thm 5 reduction"
        elif graph == "pipeline":
            inst = _n3dm_instance(rng, yes)
            if inst is None:
                passed += 1  # could not build a NO instance; vacuous pass
                continue
            red = Thm9Reduction(inst)
            ok = red.schedule_meets_bound() == inst.is_yes()
            detail = "Thm 9 reduction"
        elif plat_hom:
            inst = _gadget_two_partition(rng, yes, distinct_small=False)
            red = Thm12Reduction(inst)
            ok = red.schedule_meets_bound() == yes
            detail = "Thm 12 reduction"
        elif dp:
            inst = _gadget_two_partition(rng, yes, distinct_small=True)
            red = Thm13Reduction(inst)
            objective = (
                Objective.PERIOD if crit is Criterion.PERIOD else Objective.LATENCY
            )
            ok = red.schedule_meets_bound(objective) == yes
            detail = "Thm 13 reduction"
        else:
            if crit is Criterion.LATENCY:
                inst = _gadget_two_partition(rng, yes, distinct_small=False)
                red = Thm12Reduction(inst)
                ok = red.schedule_meets_bound() == yes
                detail = "Thm 12 reduction"
            else:
                inst = _gadget_two_partition(rng, yes, distinct_small=False)
                red = Thm15Reduction(inst)
                ok = red.schedule_meets_bound() == yes
                detail = "Thm 15 reduction"
        if ok:
            passed += 1
    return CellValidation(trials=trials, passed=passed, detail=detail)


def validate_cell(
    rng: random.Random,
    graph: str,
    app_hom: bool,
    plat_hom: bool,
    dp: bool,
    crit: Criterion,
    trials: int = 4,
) -> CellValidation:
    """Validate one cell (dispatches on its published status)."""
    entry = TABLE[(graph, app_hom, plat_hom, dp, crit)]
    if entry.is_polynomial:
        return _validate_poly(rng, graph, app_hom, plat_hom, dp, crit, trials)
    return _validate_nphard(rng, graph, app_hom, plat_hom, dp, crit, trials)


def regenerate_table1(
    rng: random.Random | None = None, trials: int = 3, validate: bool = True
) -> tuple[str, dict[tuple, CellValidation]]:
    """Render Table 1 and (optionally) validate every cell.

    Returns ``(text, validations)``; the text contains two sub-tables in
    the paper's layout with a validation mark appended to each cell.
    """
    rng = rng or random.Random(2007)
    validations: dict[tuple, CellValidation] = {}
    rows_by_platform: dict[bool, list[list[str]]] = {True: [], False: []}
    for plat_hom in (True, False):
        for graph in ("pipeline", "fork"):
            for app_hom in (True, False):
                label = f"{'Hom.' if app_hom else 'Het.'} {graph}"
                row = [label]
                for dp in (False, True):
                    for crit in (Criterion.PERIOD, Criterion.LATENCY,
                                 Criterion.BICRITERIA):
                        key = (graph, app_hom, plat_hom, dp, crit)
                        entry = TABLE[key]
                        cell = entry.describe()
                        if validate:
                            outcome = validate_cell(
                                rng, graph, app_hom, plat_hom, dp, crit, trials
                            )
                            validations[key] = outcome
                            cell += f" {outcome.mark}"
                        row.append(cell)
                rows_by_platform[plat_hom].append(row)

    headers = [
        "application",
        "no-DP: P", "no-DP: L", "no-DP: both",
        "DP: P", "DP: L", "DP: both",
    ]
    parts = []
    for plat_hom in (True, False):
        title = ("Homogeneous platforms" if plat_hom else
                 "Heterogeneous platforms")
        parts.append(
            format_table(headers, rows_by_platform[plat_hom], title=title)
        )
    return "\n\n".join(parts), validations


def render_table1() -> str:
    """Render the published statuses only (no validation runs)."""
    text, _ = regenerate_table1(validate=False)
    return text
