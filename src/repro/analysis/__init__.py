"""Analysis tools: Table 1 regeneration, Pareto fronts, reporting."""

from .pareto import non_dominated, pareto_front, threshold_grid
from .report import format_table
from .table1 import CellValidation, regenerate_table1, render_table1, validate_cell

__all__ = [
    "pareto_front",
    "non_dominated",
    "threshold_grid",
    "format_table",
    "CellValidation",
    "regenerate_table1",
    "render_table1",
    "validate_cell",
]
