"""Analysis tools: Table 1 regeneration, Pareto fronts, reporting."""

from .pareto import pareto_front
from .report import format_table
from .table1 import CellValidation, regenerate_table1, render_table1, validate_cell

__all__ = [
    "pareto_front",
    "format_table",
    "CellValidation",
    "regenerate_table1",
    "render_table1",
    "validate_cell",
]
