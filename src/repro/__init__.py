"""repro — reproduction of Benoit & Robert (2007), *Complexity results for
throughput and latency optimization of replicated and data-parallel
workflows* (INRIA RR-6308 / IEEE CLUSTER 2007).

The library models pipeline / fork / fork-join workflow applications mapped
onto homogeneous or heterogeneous platforms with interval mappings,
replication and data-parallelism, under the paper's simplified
(communication-free) cost model, and implements:

* every polynomial algorithm of the paper (Theorems 1-4, 6-8, 10-11, 14 and
  the Section 6.3 fork-join extensions);
* exhaustive and structured exact solvers for the NP-hard entries
  (Theorems 5, 9, 12, 13, 15);
* the NP-hardness reductions themselves (from 2-PARTITION and N3DM) as
  executable instance builders with solution back-mapping;
* heuristics, a discrete-event simulator validating the cost model, the
  chains-to-chains substrate, instance generators and analysis tools.

Quick start::

    import repro

    app = repro.PipelineApplication.from_works([14, 4, 2, 4])
    platform = repro.Platform.homogeneous(3)
    spec = repro.ProblemSpec(app, platform, allow_data_parallel=True)
    solution = repro.solve(spec, repro.Objective.LATENCY)
    print(solution.describe())
"""

from .algorithms import (
    Budget,
    BudgetExhaustedError,
    GraphKind,
    NPHardError,
    Objective,
    ProblemSpec,
    Solution,
    classify,
    solve,
)
from .core import (
    AssignmentKind,
    ForkApplication,
    ForkJoinApplication,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    InfeasibleProblemError,
    InvalidApplicationError,
    InvalidMappingError,
    InvalidPlatformError,
    PipelineApplication,
    PipelineMapping,
    Platform,
    Processor,
    ReproError,
    Stage,
    UnsupportedVariantError,
    evaluate,
    fork_latency,
    fork_period,
    forkjoin_latency,
    forkjoin_period,
    pipeline_latency,
    pipeline_period,
    validate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Stage",
    "PipelineApplication",
    "ForkApplication",
    "ForkJoinApplication",
    "Processor",
    "Platform",
    "AssignmentKind",
    "GroupAssignment",
    "PipelineMapping",
    "ForkMapping",
    "ForkJoinMapping",
    # costs
    "evaluate",
    "pipeline_period",
    "pipeline_latency",
    "fork_period",
    "fork_latency",
    "forkjoin_period",
    "forkjoin_latency",
    "validate",
    # solving
    "Budget",
    "GraphKind",
    "Objective",
    "ProblemSpec",
    "Solution",
    "classify",
    "solve",
    # errors
    "ReproError",
    "NPHardError",
    "BudgetExhaustedError",
    "InvalidApplicationError",
    "InvalidPlatformError",
    "InvalidMappingError",
    "InfeasibleProblemError",
    "UnsupportedVariantError",
]
