"""Chains-to-chains: contiguous partitioning minimizing the bottleneck.

Given positive works :math:`a_1..a_n` and ``p`` processors, partition the
array into at most ``p`` consecutive intervals so the largest interval sum
(homogeneous case) or the largest ``sum/speed`` ratio (fixed processor
order, heterogeneous case) is minimized.  References: Bokhari (1988),
Hansen & Lih (1992), Olstad & Manne (1995), Pinar & Aykanat (2004) — the
papers [9, 13, 21, 22] cited in Section 1 of the reproduced paper.

Three interchangeable algorithms are provided for the homogeneous problem:

* :func:`chains_to_chains_dp` — the classic ``O(n^2 p)`` dynamic program
  (exact);
* :func:`chains_to_chains_probe` — exact bottleneck search: binary search
  over the ``O(n^2)`` candidate interval sums with an ``O(n)`` greedy
  feasibility probe;
* :func:`greedy_partition` — the linear-time load-threshold heuristic
  (not exact; used as a baseline).

The heterogeneous fixed-order variant :func:`heterogeneous_chains_dp`
assigns interval ``j`` to the ``j``-th processor of a given speed order; it
is the building block of the pipeline heuristics for the NP-hard
Theorem 9 problem.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

from ..core.costs import FLOAT_TOL
from ..core.exceptions import ReproError

__all__ = [
    "PartitionResult",
    "prefix_sums",
    "interval_sums",
    "chains_to_chains_dp",
    "probe_feasible",
    "chains_to_chains_probe",
    "greedy_partition",
    "heterogeneous_chains_dp",
]


@dataclass(frozen=True)
class PartitionResult:
    """A contiguous partition and its bottleneck value.

    ``boundaries`` holds the interval end indices (exclusive): interval
    ``j`` covers ``works[boundaries[j-1]:boundaries[j]]`` with
    ``boundaries[-1] == n``.
    """

    bottleneck: float
    boundaries: tuple[int, ...]

    @property
    def intervals(self) -> list[tuple[int, int]]:
        """(start, end) pairs, end exclusive."""
        out, start = [], 0
        for end in self.boundaries:
            out.append((start, end))
            start = end
        return out


@lru_cache(maxsize=512)
def _prefix_cached(works: tuple[float, ...]) -> tuple[float, ...]:
    prefix = [0.0]
    for w in works:
        if w <= 0:
            raise ReproError("chains-to-chains requires positive works")
        prefix.append(prefix[-1] + w)
    return tuple(prefix)


def _prefix(works: Sequence[float]) -> tuple[float, ...]:
    """Prefix sums of the works, memoized on the works tuple.

    The DP, probe and greedy algorithms are routinely called back to back
    on the *same* works array (e.g. by the heuristics portfolio and the
    benchmarks); one shared cache makes the construction free after the
    first call.
    """
    return _prefix_cached(tuple(works))


def prefix_sums(works: Sequence[float]) -> tuple[float, ...]:
    """Public prefix-sum table: ``prefix_sums(w)[i] == sum(w[:i])``.

    Interval ``[i, j)`` then has load ``prefix[j] - prefix[i]`` — the
    lookup every interval partitioner here (and the branch-and-bound
    pipeline engine) builds on.  Shares the module-wide memo, so the
    repeated solves of a bi-criteria threshold sweep pay the ``O(n)``
    construction once per works array.
    """
    return _prefix(works)


@lru_cache(maxsize=512)
def _interval_sums_cached(works: tuple[float, ...]) -> tuple[float, ...]:
    prefix = _prefix_cached(works)
    n = len(works)
    sums = sorted(
        prefix[j] - prefix[i] for i in range(n) for j in range(i + 1, n + 1)
    )
    out: list[float] = []
    for s in sums:
        if not out or s - out[-1] > FLOAT_TOL * max(1.0, s):
            out.append(s)
    return tuple(out)


def interval_sums(works: Sequence[float]) -> list[float]:
    """All ``O(n^2)`` contiguous interval sums, sorted ascending (the
    candidate bottleneck values of the probe algorithm).

    Memoized per works tuple so repeated probe/DP calls on one array pay
    the ``O(n^2 log n)`` construction once.
    """
    return list(_interval_sums_cached(tuple(works)))


def chains_to_chains_dp(works: Sequence[float], p: int) -> PartitionResult:
    """Exact ``O(n^2 p)`` dynamic program.

    ``B[j][i]`` = minimal bottleneck partitioning the first ``i`` works into
    at most ``j`` intervals.
    """
    n = len(works)
    if p < 1:
        raise ReproError("need at least one interval")
    prefix = _prefix(works)
    INF = float("inf")
    p = min(p, n)
    # B[i] for the current number of intervals; rolled over j
    B = [INF] * (n + 1)
    B[0] = 0.0
    for i in range(1, n + 1):
        B[i] = prefix[i]  # one interval
    back = [[0] * (n + 1) for _ in range(p + 1)]
    prev = B[:]
    for j in range(2, p + 1):
        cur = [INF] * (n + 1)
        cur[0] = 0.0
        back_j = back[j]
        for i in range(1, n + 1):
            pi = prefix[i]  # hoisted out of the O(n) inner scan
            best, arg = pi, 0  # single interval still allowed
            for k in range(1, i):
                left, right = prev[k], pi - prefix[k]
                cand = left if left >= right else right
                if cand < best - FLOAT_TOL:
                    best, arg = cand, k
            cur[i] = best
            back_j[i] = arg
        prev = cur
    # reconstruct
    boundaries: list[int] = []
    i, j = n, p
    while i > 0:
        k = back[j][i] if j >= 2 else 0
        boundaries.append(i)
        i, j = k, max(j - 1, 1)
    boundaries.reverse()
    value = prev[n] if p >= 2 else prefix[n]
    return PartitionResult(bottleneck=value, boundaries=tuple(boundaries))


def probe_feasible(
    works: Sequence[float], p: int, bottleneck: float
) -> tuple[int, ...] | None:
    """Greedy probe: can the works be split into <= p intervals of sum <=
    ``bottleneck``?  Returns the boundaries or ``None``.  ``O(n)``."""
    boundaries: list[int] = []
    current = 0.0
    tol = bottleneck * (1 + FLOAT_TOL)
    for i, w in enumerate(works):
        if w > tol:
            return None
        if current + w > tol:
            boundaries.append(i)
            current = w
            if len(boundaries) == p:
                return None
        else:
            current += w
    boundaries.append(len(works))
    return tuple(boundaries) if len(boundaries) <= p else None


def chains_to_chains_probe(works: Sequence[float], p: int) -> PartitionResult:
    """Exact probe algorithm: binary search over candidate interval sums.

    ``O(n^2 log n)`` for the candidate set (dominating) plus ``O(n log n)``
    probes; asymptotically better probe schemes exist (Nicol's method), but
    candidate search keeps the result exact on floats.
    """
    candidates = interval_sums(works)
    lo, hi = 0, len(candidates) - 1
    # the total sum is always feasible with one interval
    while lo < hi:
        mid = (lo + hi) // 2
        if probe_feasible(works, p, candidates[mid]) is not None:
            hi = mid
        else:
            lo = mid + 1
    boundaries = probe_feasible(works, p, candidates[lo])
    assert boundaries is not None
    return PartitionResult(bottleneck=candidates[lo], boundaries=boundaries)


def greedy_partition(works: Sequence[float], p: int) -> PartitionResult:
    """Linear heuristic: cut whenever the running sum exceeds ``total/p``.

    Not optimal (baseline only); the bottleneck reported is the achieved
    one.
    """
    n = len(works)
    prefix = _prefix(works)
    target = prefix[n] / p
    boundaries: list[int] = []
    current = 0.0
    for i, w in enumerate(works):
        current += w
        if current >= target and len(boundaries) < p - 1:
            boundaries.append(i + 1)
            current = 0.0
    if not boundaries or boundaries[-1] != n:
        boundaries.append(n)
    start = 0
    bottleneck = 0.0
    for end in boundaries:
        bottleneck = max(bottleneck, prefix[end] - prefix[start])
        start = end
    return PartitionResult(bottleneck=bottleneck, boundaries=tuple(boundaries))


def heterogeneous_chains_dp(
    works: Sequence[float], speeds: Sequence[float]
) -> PartitionResult:
    """Fixed-order heterogeneous chains: interval ``j`` runs on processor
    ``j`` of the given order; minimize :math:`\\max_j W_j / s_j`.

    ``O(n^2 p)`` DP.  Empty intervals are allowed (a processor may be
    skipped), which matters when ``p > n`` or when slow processors sit in
    unfavourable positions of the order.
    """
    n, p = len(works), len(speeds)
    prefix = _prefix(works)
    INF = float("inf")
    # C[j][i]: min bottleneck for first i works on first j processors
    C = [[INF] * (n + 1) for _ in range(p + 1)]
    back = [[0] * (n + 1) for _ in range(p + 1)]
    C[0][0] = 0.0
    for j in range(1, p + 1):
        s = speeds[j - 1]
        if s <= 0:
            raise ReproError("speeds must be positive")
        prev_row, cur_row, back_j = C[j - 1], C[j], back[j]
        for i in range(n + 1):
            pi = prefix[i]  # hoisted out of the O(n) inner scan
            best, arg = INF, 0
            for k in range(i + 1):
                left = prev_row[k]
                if left == INF:
                    continue
                right = (pi - prefix[k]) / s
                cand = left if left >= right else right
                if cand < best - FLOAT_TOL:
                    best, arg = cand, k
            cur_row[i] = best
            back_j[i] = arg
    # reconstruct (drop empty trailing intervals)
    boundaries: list[int] = []
    i = n
    for j in range(p, 0, -1):
        k = back[j][i]
        if i > k:
            boundaries.append(i)
        i = k
    boundaries.reverse()
    return PartitionResult(bottleneck=C[p][n], boundaries=tuple(boundaries))
