"""The chains-to-chains substrate.

The paper (Section 1) frames period minimization without replication as the
classic *chains-to-chains* problem: partition an array of ``n`` positive
numbers into at most ``p`` consecutive intervals minimizing the largest
interval sum.  This subpackage implements the standard solutions — dynamic
programming, probe-based search and greedy — plus the fixed-order
heterogeneous variant, used both as baselines and inside the heuristics.
"""

from .partition import (
    PartitionResult,
    chains_to_chains_dp,
    chains_to_chains_probe,
    greedy_partition,
    heterogeneous_chains_dp,
    interval_sums,
    probe_feasible,
)

__all__ = [
    "PartitionResult",
    "chains_to_chains_dp",
    "chains_to_chains_probe",
    "greedy_partition",
    "heterogeneous_chains_dp",
    "interval_sums",
    "probe_feasible",
]
