"""Execution simulator for mapped pipeline / fork / fork-join workflows.

The model is deterministic, so rather than a generic event heap the
simulator computes event times directly, data set by data set, which is both
exact and fast (numpy arrays over the data-set dimension).

Service disciplines
-------------------
* A **replicated** group has one server per processor.  Under
  :attr:`DispatchPolicy.ROUND_ROBIN` (the paper's rule) data set ``d`` goes
  to server ``d mod k``; under :attr:`DispatchPolicy.DEMAND_DRIVEN` it goes
  to the earliest-available server (the higher-throughput, order-breaking
  alternative of Section 3.3).
* A **data-parallel** group is a single logical server of speed
  :math:`\\sum_u s_u` (all processors cooperate on every data set).
* Between groups, completions are released **in order** by default (a
  reorder buffer), because the next stage may be sequential — exactly the
  argument the paper uses to enforce round-robin.  Raw (pre-buffer)
  completion order is inspected to count **order inversions**.

Fork semantics follow the paper's flexible model: non-root groups start a
data set as soon as :math:`S_0` completes for it.  For fork-join, the join
group serves each of its data sets to completion in data-set order (branch
phase, then join phase once every group has delivered that data set).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..core.application import ForkJoinApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import ReproError
from ..core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)

__all__ = [
    "DispatchPolicy",
    "SimulationResult",
    "simulate_pipeline",
    "simulate_fork",
    "simulate_forkjoin",
    "simulate",
]


class DispatchPolicy(enum.Enum):
    """How a replicated group assigns data sets to its processors."""

    ROUND_ROBIN = "round-robin"
    DEMAND_DRIVEN = "demand-driven"


@dataclass(frozen=True)
class SimulationResult:
    """Measured behaviour of a simulated workflow.

    ``measured_period`` is the steady-state inter-departure time (slope of
    the completion times over the second half of the stream);
    ``max_latency`` the worst observed response time;
    ``order_inversions`` the number of data sets overtaken by a later one
    *before* re-ordering buffers.
    """

    entry_times: np.ndarray
    completion_times: np.ndarray
    latencies: np.ndarray
    measured_period: float
    max_latency: float
    mean_latency: float
    order_inversions: int

    @property
    def num_data_sets(self) -> int:
        return len(self.entry_times)


def _serve_group(
    arrivals: np.ndarray,
    work: float,
    speeds: list[float],
    kind: AssignmentKind,
    policy: DispatchPolicy,
    dp_overhead: float = 0.0,
) -> np.ndarray:
    """Raw completion times of one group for every data set.

    ``dp_overhead`` is the Amdahl fixed sequential cost paid per data set by
    a data-parallel group (Section 3.3 extension); zero in the paper's
    simplified model.
    """
    D = len(arrivals)
    out = np.empty(D)
    if kind is AssignmentKind.DATA_PARALLEL:
        duration = dp_overhead + work / sum(speeds)
        free = 0.0
        for d in range(D):
            start = max(arrivals[d], free)
            free = start + duration
            out[d] = free
        return out
    k = len(speeds)
    free = [0.0] * k
    for d in range(D):
        if policy is DispatchPolicy.ROUND_ROBIN:
            r = d % k
        else:
            r = min(range(k), key=lambda i: (free[i], i))
        start = max(arrivals[d], free[r])
        free[r] = start + work / speeds[r]
        out[d] = free[r]
    return out


def _count_inversions(raw: np.ndarray) -> int:
    """Data sets completed before some earlier data set (order breaks)."""
    running = np.maximum.accumulate(raw)
    return int(np.sum(raw[1:] < running[:-1] - FLOAT_TOL))


def _deliver(raw: np.ndarray, enforce_order: bool) -> np.ndarray:
    return np.maximum.accumulate(raw) if enforce_order else raw


def _result(entry: np.ndarray, completion: np.ndarray, inversions: int
            ) -> SimulationResult:
    D = len(entry)
    latencies = completion - entry
    half = max(1, D // 2)
    if D > half:
        period = float(
            (completion[-1] - completion[half - 1]) / (D - half)
        )
    else:
        period = float(completion[-1] - entry[0])
    return SimulationResult(
        entry_times=entry,
        completion_times=completion,
        latencies=latencies,
        measured_period=period,
        max_latency=float(latencies.max()),
        mean_latency=float(latencies.mean()),
        order_inversions=inversions,
    )


def _works_table(mapping) -> dict[int, float]:
    app = mapping.application
    stages = app.all_stages if hasattr(app, "all_stages") else app.stages
    return {stage.index: stage.work for stage in stages}


def _overheads_table(mapping) -> dict[int, float]:
    app = mapping.application
    stages = app.all_stages if hasattr(app, "all_stages") else app.stages
    return {stage.index: stage.dp_overhead for stage in stages}


def _group_overhead(mapping, group: GroupAssignment, stages=None) -> float:
    """Amdahl overhead of a group's (sub)set of stages when data-parallel."""
    if group.kind is not AssignmentKind.DATA_PARALLEL:
        return 0.0
    table = _overheads_table(mapping)
    members = group.stages if stages is None else stages
    return sum(table[i] for i in members)


def simulate_pipeline(
    mapping: PipelineMapping,
    num_data_sets: int = 200,
    input_period: float | None = None,
    policy: DispatchPolicy = DispatchPolicy.ROUND_ROBIN,
    enforce_order: bool = True,
) -> SimulationResult:
    """Stream ``num_data_sets`` data sets through a mapped pipeline.

    ``input_period`` defaults to the analytic period of the mapping (the
    fastest sustainable input rate); smaller values make queues grow and
    latency diverge, which the examples demonstrate.
    """
    from ..core.costs import pipeline_period

    if num_data_sets < 1:
        raise ReproError("need at least one data set")
    if input_period is None:
        input_period = pipeline_period(mapping)
    works = _works_table(mapping)
    entry = np.arange(num_data_sets) * input_period
    current = entry.copy()
    inversions = 0
    for group in mapping.groups:
        work = group.work(works)
        speeds = list(mapping.platform.subset_speeds(group.processors))
        raw = _serve_group(
            current, work, speeds, group.kind, policy,
            _group_overhead(mapping, group),
        )
        inversions += _count_inversions(raw)
        current = _deliver(raw, enforce_order)
    return _result(entry, current, inversions)


def _fork_phase(
    mapping: ForkMapping,
    entry: np.ndarray,
    policy: DispatchPolicy,
    enforce_order: bool,
    branch_works: dict[int, float],
    root_branch_work: float,
    skip_groups: tuple[GroupAssignment, ...] = (),
) -> tuple[np.ndarray, dict[GroupAssignment, np.ndarray], int]:
    """Common part of fork and fork-join: root + branch processing.

    ``skip_groups`` excludes groups served elsewhere (the fork-join join
    group runs its two-phase service in :func:`simulate_forkjoin`).

    Returns ``(s0_done, branch_done per group, inversions)`` where
    ``branch_done[g][d]`` is when group ``g`` finished its branch stages for
    data set ``d`` (the root group's entry includes the root work).
    """
    app = mapping.application
    root_group = mapping.root_group
    root_speeds = list(mapping.platform.subset_speeds(root_group.processors))
    inversions = 0
    D = len(entry)

    # Root group: each server handles w0 + its branch stages per data set;
    # S0 completes after the w0 fraction of the server's busy time.
    w0 = app.root.work
    total_root_work = w0 + root_branch_work
    s0_done = np.empty(D)
    root_done = np.empty(D)
    if root_group.kind is AssignmentKind.DATA_PARALLEL:
        # a data-parallel root group holds S0 alone (validation rule)
        f0 = app.root.dp_overhead
        speed = sum(root_speeds)
        free = 0.0
        for d in range(D):
            start = max(entry[d], free)
            s0_done[d] = start + f0 + w0 / speed
            free = start + total_root_work / speed
            root_done[d] = free
    else:
        k = len(root_speeds)
        free = [0.0] * k
        for d in range(D):
            if policy is DispatchPolicy.ROUND_ROBIN:
                r = d % k
            else:
                r = min(range(k), key=lambda i: (free[i], i))
            start = max(entry[d], free[r])
            s0_done[d] = start + w0 / root_speeds[r]
            free[r] = start + total_root_work / root_speeds[r]
            root_done[d] = free[r]
    inversions += _count_inversions(root_done)
    s0_done = _deliver(s0_done, enforce_order)
    root_done = _deliver(root_done, enforce_order)

    branch_done: dict[GroupAssignment, np.ndarray] = {root_group: root_done}
    for group in mapping.non_root_groups:
        if skip_groups and group in skip_groups:
            continue
        members = [i for i in group.stages if i in branch_works]
        work = sum(branch_works[i] for i in members)
        speeds = list(mapping.platform.subset_speeds(group.processors))
        raw = _serve_group(
            s0_done, work, speeds, group.kind, policy,
            _group_overhead(mapping, group, members),
        )
        inversions += _count_inversions(raw)
        branch_done[group] = _deliver(raw, enforce_order)
    return s0_done, branch_done, inversions


def simulate_fork(
    mapping: ForkMapping,
    num_data_sets: int = 200,
    input_period: float | None = None,
    policy: DispatchPolicy = DispatchPolicy.ROUND_ROBIN,
    enforce_order: bool = True,
) -> SimulationResult:
    """Stream data sets through a mapped fork (flexible model)."""
    from ..core.costs import fork_period

    if input_period is None:
        input_period = fork_period(mapping)
    app = mapping.application
    works = {s.index: s.work for s in app.branches}
    root_branch = sum(
        works[i] for i in mapping.root_group.stages if i != 0
    )
    entry = np.arange(num_data_sets) * input_period
    _, branch_done, inversions = _fork_phase(
        mapping, entry, policy, enforce_order, works, root_branch
    )
    completion = np.maximum.reduce(list(branch_done.values()))
    return _result(entry, completion, inversions)


def simulate_forkjoin(
    mapping: ForkJoinMapping,
    num_data_sets: int = 200,
    input_period: float | None = None,
    policy: DispatchPolicy = DispatchPolicy.ROUND_ROBIN,
    enforce_order: bool = True,
) -> SimulationResult:
    """Stream data sets through a mapped fork-join.

    The join group serves each of its data sets to completion in data-set
    order: branch phase first, then — once every group has delivered the
    data set — the join phase on the same server.
    """
    from ..core.costs import forkjoin_period

    if input_period is None:
        input_period = forkjoin_period(mapping)
    app: ForkJoinApplication = mapping.application
    join_index = app.n + 1
    works = {s.index: s.work for s in app.branches}
    root_branch = sum(
        works.get(i, 0.0)
        for i in mapping.root_group.stages
        if i not in (0, join_index)
    )
    entry = np.arange(num_data_sets) * input_period
    D = num_data_sets

    join_group = mapping.join_group
    root_group = mapping.root_group

    skip = (join_group,) if join_group is not root_group else ()
    s0_done, branch_done, inversions = _fork_phase(
        mapping, entry, policy, enforce_order, works, root_branch,
        skip_groups=skip,
    )

    # ready time for the join phase: all groups delivered the data set
    others = [
        done for group, done in branch_done.items() if group is not join_group
    ]
    ready_other = (
        np.maximum.reduce(others) if others else np.zeros(D)
    )

    wj = app.join.work
    speeds = list(mapping.platform.subset_speeds(join_group.processors))
    join_done = np.empty(D)
    join_members = [i for i in join_group.stages if i in works]
    if join_group is root_group:
        # branch phase of the join group already includes w0; redo the
        # two-phase service on the root servers
        wb = app.root.work + root_branch
    else:
        wb = sum(works[i] for i in join_members)
    fb_over = _group_overhead(mapping, join_group, join_members)
    fj_over = (
        app.join.dp_overhead
        if join_group.kind is AssignmentKind.DATA_PARALLEL
        else 0.0
    )
    arrivals = entry if join_group is root_group else s0_done
    if join_group.kind is AssignmentKind.DATA_PARALLEL:
        speed = sum(speeds)
        free = 0.0
        for d in range(D):
            start = max(arrivals[d], free)
            fb = start + (fb_over + wb / speed if wb > 0 else 0.0)
            tj = max(fb, ready_other[d])
            free = tj + fj_over + wj / speed
            join_done[d] = free
    else:
        k = len(speeds)
        free = [0.0] * k
        for d in range(D):
            if policy is DispatchPolicy.ROUND_ROBIN:
                r = d % k
            else:
                r = min(range(k), key=lambda i: (free[i], i))
            start = max(arrivals[d], free[r])
            fb = start + wb / speeds[r]
            tj = max(fb, ready_other[d])
            free[r] = tj + wj / speeds[r]
            join_done[d] = free[r]
    inversions += _count_inversions(join_done)
    completion = _deliver(join_done, enforce_order)
    return _result(entry, completion, inversions)


def simulate(mapping, **kwargs) -> SimulationResult:
    """Dispatch on mapping type."""
    if isinstance(mapping, ForkJoinMapping):
        return simulate_forkjoin(mapping, **kwargs)
    if isinstance(mapping, ForkMapping):
        return simulate_fork(mapping, **kwargs)
    if isinstance(mapping, PipelineMapping):
        return simulate_pipeline(mapping, **kwargs)
    raise TypeError(f"cannot simulate {type(mapping).__name__}")
