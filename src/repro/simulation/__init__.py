"""Discrete-event simulation of mapped workflows.

The paper's cost model is analytic; this subpackage *executes* a mapping on
a stream of data sets and measures what actually happens, so the formulas
of Section 3.4 can be validated dynamically:

* round-robin replication (the paper's rule) with in-order delivery between
  groups — steady-state inter-departure times converge to the analytic
  period, and observed worst-case latency never exceeds (and approaches)
  the analytic latency;
* the *demand-driven* policy the paper discusses and rejects in Section 3.3
  — higher throughput on heterogeneous replica sets, but out-of-order
  completions, which the simulator counts.

See :func:`repro.simulation.simulate` for the entry point and
``benchmarks/bench_simulator_validation.py`` for the validation experiment.
"""

from .simulator import (
    DispatchPolicy,
    SimulationResult,
    simulate,
    simulate_fork,
    simulate_forkjoin,
    simulate_pipeline,
)

__all__ = [
    "DispatchPolicy",
    "SimulationResult",
    "simulate",
    "simulate_pipeline",
    "simulate_fork",
    "simulate_forkjoin",
]
