"""Homogeneous fork on **heterogeneous platforms** without data-parallelism
— Theorem 14 (``Poly (str)`` / ``Poly (*)`` entries of Table 1, lower half).

Structure (paper Lemma 4): sort processors by non-decreasing speed; there is
an optimal solution whose groups are consecutive *blocks* of this order, one
of which — starting at position ``q0`` — holds the root :math:`S_0`.  Block
costs only depend on the block size and its minimum speed (its first
processor), so feasibility under a period bound ``K`` and latency bound
``L`` reduces to a prefix/suffix DP around the root block:

* root block ``[i0..j0]`` (k0 processors, min speed ``s0``) holding ``m0``
  branches: needs ``(w0 + m0 w)/(k0 s0) <= K`` and delay
  ``(w0 + m0 w)/s0 <= L``;
* any other block ``[i..j]`` holding ``m`` branches starts once the root
  completes, at ``t0 = w0/s0``: needs ``m w/(k s_i) <= K`` and
  ``t0 + m w/s_i <= L``.

Maximizing the branch count handled by each side of the root block is a
prefix (resp. suffix) DP; the instance is feasible when some choice of the
root block reaches ``n`` branches in total.  The optimum is found by an
exact binary search over the finite candidate sets of achievable group
periods / latencies (see :mod:`repro.algorithms.search`), replacing the
paper's epsilon binary search.

Heterogeneous forks are NP-hard on heterogeneous platforms for both
objectives (Theorem 15); use :mod:`repro.algorithms.exact`.
"""

from __future__ import annotations

from ..core.application import ForkApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import (
    InfeasibleProblemError,
    UnsupportedVariantError,
)
from ..core.mapping import AssignmentKind, ForkMapping, GroupAssignment
from ..core.platform import Platform
from .problem import Objective, Solution
from .search import floor_div_tol, smallest_feasible, unique_sorted

__all__ = [
    "min_period_homogeneous",
    "min_latency_homogeneous",
    "min_latency_given_period_homogeneous",
    "min_period_given_latency_homogeneous",
    "solve_homogeneous",
]

INF = float("inf")


def _require_homogeneous_fork(app: ForkApplication) -> tuple[float, float]:
    if not app.is_homogeneous:
        raise UnsupportedVariantError(
            "Theorem 14 requires a homogeneous fork; heterogeneous forks on "
            "heterogeneous platforms are NP-hard (Theorem 15) — use "
            "repro.algorithms.exact or repro.heuristics"
        )
    return app.root.work, app.branches[0].work


class _Engine:
    """Feasibility tester / reconstructor for one (application, platform)."""

    def __init__(self, app: ForkApplication, platform: Platform) -> None:
        self.app = app
        self.platform = platform
        self.w0, self.w = _require_homogeneous_fork(app)
        self.order = platform.sorted_by_speed(descending=False)
        self.speeds = [proc.speed for proc in self.order]
        self.n = app.n
        self.p = platform.p

    # -- block capacities ------------------------------------------------
    def _cap_other(self, i: int, k: int, K: float, L0: float) -> int:
        """Max branches of a non-root block starting at sorted position ``i``
        with ``k`` processors, under period K and start-adjusted latency L0."""
        limit = INF
        if K != INF:
            limit = K * k * self.speeds[i]
        if L0 != INF:
            limit = min(limit, L0 * self.speeds[i])
        if limit == INF:
            return self.n
        if limit < -FLOAT_TOL:
            return 0
        return min(self.n, max(0, floor_div_tol(limit, self.w)))

    def _cap_root(self, i0: int, k0: int, K: float, L: float) -> int | None:
        """Max branches of the root block, or None when even ``m0 = 0`` fails."""
        limit = INF
        if K != INF:
            limit = K * k0 * self.speeds[i0]
        if L != INF:
            limit = min(limit, L * self.speeds[i0])
        if limit == INF:
            return self.n
        slack = limit - self.w0
        if slack < -FLOAT_TOL * max(1.0, limit):
            return None
        return min(self.n, max(0, floor_div_tol(slack, self.w)))

    # -- prefix/suffix DPs ------------------------------------------------
    def _prefix(self, K: float, L0: float) -> tuple[list[int], list[int]]:
        """``F[j]`` = max branches over non-root blocks covering ``0..j-1``."""
        p = self.p
        F = [0] * (p + 1)
        split = [0] * (p + 1)
        for j in range(1, p + 1):
            best, arg = -1, 0
            for i in range(j):
                value = F[i] + self._cap_other(i, j - i, K, L0)
                if value > best:
                    best, arg = value, i
            F[j], split[j] = best, arg
        return F, split

    def _suffix(self, K: float, L0: float) -> tuple[list[int], list[int]]:
        """``S[j]`` = max branches over non-root blocks covering ``j..p-1``."""
        p = self.p
        S = [0] * (p + 2)
        split = [0] * (p + 2)
        for j in range(p - 1, -1, -1):
            best, arg = -1, p - 1
            for e in range(j, p):
                value = self._cap_other(j, e - j + 1, K, L0) + S[e + 2 - 1]
                if value > best:
                    best, arg = value, e
            S[j], split[j] = best, arg
        return S, split

    # -- feasibility -------------------------------------------------------
    def feasible(self, K: float, L: float) -> bool:
        return self._search(K, L) is not None

    def _search(self, K: float, L: float):
        """Return ``(i0, j0, prefix tables, suffix tables, L0)`` or None."""
        for i0 in range(self.p):
            t0 = self.w0 / self.speeds[i0]
            L0 = INF if L == INF else L - t0
            F, fsplit = self._prefix(K, L0)
            S, ssplit = self._suffix(K, L0)
            for j0 in range(i0, self.p):
                cap0 = self._cap_root(i0, j0 - i0 + 1, K, L)
                if cap0 is None:
                    continue
                if F[i0] + cap0 + S[j0 + 1] >= self.n:
                    return i0, j0, (F, fsplit), (S, ssplit), K, L0
        return None

    # -- reconstruction ----------------------------------------------------
    def build(self, K: float, L: float) -> ForkMapping:
        found = self._search(K, L)
        if found is None:
            raise InfeasibleProblemError(
                f"no mapping achieves period <= {K} and latency <= {L}"
            )
        i0, j0, (F, fsplit), (S, ssplit), K, L0 = found

        # blocks as (start, end, capacity, is_root)
        blocks: list[tuple[int, int, int, bool]] = []
        j = i0
        while j > 0:
            i = fsplit[j]
            blocks.append((i, j - 1, self._cap_other(i, j - i, K, L0), False))
            j = i
        root_cap = self._cap_root(i0, j0 - i0 + 1, K, L)
        assert root_cap is not None
        blocks.append((i0, j0, root_cap, True))
        j = j0 + 1
        while j < self.p:
            e = ssplit[j]
            blocks.append((j, e, self._cap_other(j, e - j + 1, K, L0), False))
            j = e + 1

        # distribute the n branches greedily (identical branches: any split
        # respecting the capacities is optimal); root block served first so
        # it is never dropped.
        blocks.sort(key=lambda b: not b[3])
        remaining = self.n
        groups: list[GroupAssignment] = []
        next_branch = 1
        for start, end, cap, is_root in blocks:
            take = min(remaining, cap)
            remaining -= take
            stages = list(range(next_branch, next_branch + take))
            next_branch += take
            if is_root:
                stages = [0, *stages]
            if not stages:
                continue
            procs = tuple(sorted(self.order[t].index for t in range(start, end + 1)))
            groups.append(
                GroupAssignment(
                    stages=tuple(stages),
                    processors=procs,
                    kind=AssignmentKind.REPLICATED,
                )
            )
        if remaining > 0:
            raise InfeasibleProblemError("internal: reconstruction failed")
        return ForkMapping(
            application=self.app, platform=self.platform, groups=tuple(groups)
        )

    # -- candidate sets ------------------------------------------------------
    def period_candidates(self) -> list[float]:
        values = []
        for i in range(self.p):
            s = self.speeds[i]
            for k in range(1, self.p - i + 1):
                for m in range(1, self.n + 1):
                    values.append(m * self.w / (k * s))
                for m0 in range(self.n + 1):
                    values.append((self.w0 + m0 * self.w) / (k * s))
        return unique_sorted(values)

    def latency_candidates(self) -> list[float]:
        values = []
        for i0 in range(self.p):
            s0 = self.speeds[i0]
            for m0 in range(self.n + 1):
                values.append((self.w0 + m0 * self.w) / s0)
            t0 = self.w0 / s0
            for i in range(self.p):
                if i == i0:
                    continue
                for m in range(1, self.n + 1):
                    values.append(t0 + m * self.w / self.speeds[i])
        return unique_sorted(values)


def solve_homogeneous(
    app: ForkApplication,
    platform: Platform,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
) -> Solution:
    """Theorem 14: optimal mapping of a homogeneous fork, all objectives.

    Mono-criterion problems leave the other bound ``None``; bi-criteria
    problems provide it.  Complexity: ``O(n p^2)`` candidates, each
    feasibility test ``O(p^3)``.
    """
    engine = _Engine(app, platform)
    K = INF if period_bound is None else period_bound * (1 + FLOAT_TOL)
    L = INF if latency_bound is None else latency_bound * (1 + FLOAT_TOL)

    if objective is Objective.PERIOD:
        value = smallest_feasible(
            engine.period_candidates(),
            lambda cand: engine.feasible(cand * (1 + FLOAT_TOL), L),
            what="period",
        )
        K = value * (1 + FLOAT_TOL)
    else:
        value = smallest_feasible(
            engine.latency_candidates(),
            lambda cand: engine.feasible(K, cand * (1 + FLOAT_TOL)),
            what="latency",
        )
        L = value * (1 + FLOAT_TOL)

    mapping = engine.build(K, L)
    return Solution.from_mapping(mapping, algorithm="thm14-binary-search-dp")


def min_period_homogeneous(app: ForkApplication, platform: Platform) -> Solution:
    """Theorem 14, period objective, no latency bound."""
    return solve_homogeneous(app, platform, Objective.PERIOD)


def min_latency_homogeneous(app: ForkApplication, platform: Platform) -> Solution:
    """Theorem 14, latency objective, no period bound."""
    return solve_homogeneous(app, platform, Objective.LATENCY)


def min_latency_given_period_homogeneous(
    app: ForkApplication, platform: Platform, period_bound: float
) -> Solution:
    """Theorem 14, bi-criteria: min latency under a period bound."""
    return solve_homogeneous(
        app, platform, Objective.LATENCY, period_bound=period_bound
    )


def min_period_given_latency_homogeneous(
    app: ForkApplication, platform: Platform, latency_bound: float
) -> Solution:
    """Theorem 14, bi-criteria: min period under a latency bound."""
    return solve_homogeneous(
        app, platform, Objective.PERIOD, latency_bound=latency_bound
    )
