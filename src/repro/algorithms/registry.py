"""Table 1 of the paper as executable data, plus the ``solve()`` façade.

:data:`TABLE` encodes the complexity status of every problem instance —
{pipeline, fork} x {hom/het application} x {hom/het platform} x {with/without
data-parallelism} x {period, latency, bi-criteria} — exactly as published
(including which entries the paper derives from more general/simpler cases,
kept in ``derived_from``).

:func:`classify` looks an instance up; :func:`solve` dispatches to the
matching polynomial algorithm, or — for NP-hard entries — optionally falls
back to the exact exponential solvers when ``exact_fallback=True``, else
raises :class:`NPHardError` naming the theorem, so callers know to reach for
:mod:`repro.algorithms.exact` or :mod:`repro.heuristics` deliberately.

Fork-join instances classify exactly like forks (Section 6.3: "the
complexity is not modified by the addition of the final stage").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.exceptions import ReproError
from . import (
    exact,
    fork_het_platform,
    fork_hom_platform,
    forkjoin,
    pipeline_het_platform,
    pipeline_hom_platform,
)
from .budget import Budget
from .problem import GraphKind, Objective, ProblemSpec, Solution

__all__ = [
    "Criterion",
    "ComplexityEntry",
    "NPHardError",
    "TABLE",
    "classify",
    "solve",
]


class NPHardError(ReproError):
    """The requested instance is NP-hard; no polynomial solver exists."""


class Criterion(enum.Enum):
    """Objective column of Table 1."""

    PERIOD = "P"
    LATENCY = "L"
    BICRITERIA = "both"


@dataclass(frozen=True)
class ComplexityEntry:
    """One cell of Table 1."""

    status: str  # "poly" or "np-hard"
    method: str  # "str", "DP", "*", "**", or "" for np-hard cells
    theorem: str  # the paper result establishing the entry
    derived_from: str = ""  # non-empty when the paper prints "-"

    @property
    def is_polynomial(self) -> bool:
        return self.status == "poly"

    def describe(self) -> str:
        if self.is_polynomial:
            tag = f"Poly ({self.method})" if self.method else "Poly"
        else:
            tag = "NP-hard" + (" (**)" if self.method == "**" else "")
        if self.derived_from:
            tag += f" [-: from {self.derived_from}]"
        return f"{tag} [{self.theorem}]"


def _key(graph: str, app_hom: bool, plat_hom: bool, dp: bool, crit: Criterion):
    return (graph, app_hom, plat_hom, dp, crit)


P, L, BOTH = Criterion.PERIOD, Criterion.LATENCY, Criterion.BICRITERIA

#: Table 1, fully expanded.  Keys: (graph, app_homogeneous,
#: platform_homogeneous, allow_data_parallel, criterion).
TABLE: dict[tuple, ComplexityEntry] = {}


def _fill(graph, app_hom, plat_hom, dp, entries) -> None:
    for crit, entry in zip((P, L, BOTH), entries):
        TABLE[_key(graph, app_hom, plat_hom, dp, crit)] = entry


# ---------------------------------------------------------------- pipelines
# Homogeneous platform, heterogeneous pipeline (general case)
_fill("pipeline", False, True, False, (
    ComplexityEntry("poly", "str", "Thm 1"),
    ComplexityEntry("poly", "str", "Thm 2"),
    ComplexityEntry("poly", "str", "Cor 1"),
))
_fill("pipeline", False, True, True, (
    ComplexityEntry("poly", "str", "Thm 1"),
    ComplexityEntry("poly", "DP", "Thm 3"),
    ComplexityEntry("poly", "DP", "Thm 4"),
))
# Homogeneous platform, homogeneous pipeline: derived ("-" in the paper)
_fill("pipeline", True, True, False, (
    ComplexityEntry("poly", "str", "Thm 1", "het. pipeline row"),
    ComplexityEntry("poly", "str", "Thm 2", "het. pipeline row"),
    ComplexityEntry("poly", "str", "Cor 1", "het. pipeline row"),
))
_fill("pipeline", True, True, True, (
    ComplexityEntry("poly", "str", "Thm 1", "het. pipeline row"),
    ComplexityEntry("poly", "DP", "Thm 3", "het. pipeline row"),
    ComplexityEntry("poly", "DP", "Thm 4", "het. pipeline row"),
))
# Heterogeneous platform, homogeneous pipeline
_fill("pipeline", True, False, False, (
    ComplexityEntry("poly", "*", "Thm 7"),
    ComplexityEntry("poly", "str", "Thm 6", "het. pipeline row"),
    ComplexityEntry("poly", "*", "Thm 8"),
))
_fill("pipeline", True, False, True, (
    ComplexityEntry("np-hard", "", "Thm 5"),
    ComplexityEntry("np-hard", "", "Thm 5"),
    ComplexityEntry("np-hard", "", "Thm 5"),
))
# Heterogeneous platform, heterogeneous pipeline
_fill("pipeline", False, False, False, (
    ComplexityEntry("np-hard", "**", "Thm 9"),
    ComplexityEntry("poly", "str", "Thm 6"),
    ComplexityEntry("np-hard", "**", "Thm 9"),
))
_fill("pipeline", False, False, True, (
    ComplexityEntry("np-hard", "", "Thm 5", "hom. pipeline row"),
    ComplexityEntry("np-hard", "", "Thm 5", "hom. pipeline row"),
    ComplexityEntry("np-hard", "", "Thm 5", "hom. pipeline row"),
))

# ---------------------------------------------------------------- forks
# Homogeneous platform, homogeneous fork
_fill("fork", True, True, False, (
    ComplexityEntry("poly", "str", "Thm 10", "het. fork row"),
    ComplexityEntry("poly", "DP", "Thm 11"),
    ComplexityEntry("poly", "DP", "Thm 11"),
))
_fill("fork", True, True, True, (
    ComplexityEntry("poly", "str", "Thm 10", "het. fork row"),
    ComplexityEntry("poly", "DP", "Thm 11"),
    ComplexityEntry("poly", "DP", "Thm 11"),
))
# Homogeneous platform, heterogeneous fork
_fill("fork", False, True, False, (
    ComplexityEntry("poly", "str", "Thm 10"),
    ComplexityEntry("np-hard", "", "Thm 12"),
    ComplexityEntry("np-hard", "", "Thm 12"),
))
_fill("fork", False, True, True, (
    ComplexityEntry("poly", "str", "Thm 10"),
    ComplexityEntry("np-hard", "", "Thm 12"),
    ComplexityEntry("np-hard", "", "Thm 12"),
))
# Heterogeneous platform, homogeneous fork
_fill("fork", True, False, False, (
    ComplexityEntry("poly", "*", "Thm 14"),
    ComplexityEntry("poly", "*", "Thm 14"),
    ComplexityEntry("poly", "*", "Thm 14"),
))
_fill("fork", True, False, True, (
    ComplexityEntry("np-hard", "", "Thm 13"),
    ComplexityEntry("np-hard", "", "Thm 13"),
    ComplexityEntry("np-hard", "", "Thm 13"),
))
# Heterogeneous platform, heterogeneous fork
_fill("fork", False, False, False, (
    ComplexityEntry("np-hard", "", "Thm 15"),
    ComplexityEntry("np-hard", "", "Thm 12 (hom. platform)"),
    ComplexityEntry("np-hard", "", "Thm 15"),
))
_fill("fork", False, False, True, (
    ComplexityEntry("np-hard", "", "Thm 15", "without data-par row"),
    ComplexityEntry("np-hard", "", "Thm 12", "without data-par row"),
    ComplexityEntry("np-hard", "", "Thm 15", "without data-par row"),
))


def classify(
    spec: ProblemSpec,
    objective: Objective,
    bicriteria: bool = False,
) -> ComplexityEntry:
    """Look up the Table 1 cell for a problem instance."""
    crit = Criterion.BICRITERIA if bicriteria else (
        Criterion.PERIOD if objective is Objective.PERIOD else Criterion.LATENCY
    )
    graph = "fork" if spec.graph_kind in (GraphKind.FORK, GraphKind.FORK_JOIN) \
        else "pipeline"
    return TABLE[
        _key(
            graph,
            spec.application_homogeneous,
            spec.platform_homogeneous,
            spec.allow_data_parallel,
            crit,
        )
    ]


# ======================================================================
# dispatch
# ======================================================================
def solve(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    exact_fallback: bool = False,
    engine: str = "bnb",
    context=None,
    budget: Budget | None = None,
) -> Solution:
    """Solve a mapping problem with the matching paper algorithm.

    Polynomial instances route to the per-theorem solvers.  NP-hard
    instances raise :class:`NPHardError` unless ``exact_fallback=True``, in
    which case the (exponential) exact solvers of
    :mod:`repro.algorithms.exact` are used — only sensible for small
    instances.  ``engine`` selects the generic exact search strategy for
    the fallback: the pruned branch-and-bound engine (``"bnb"``, default),
    the flat enumeration oracle (``"enumerate"``), or the MILP
    formulation (``"milp"``, :mod:`repro.algorithms.milp`) over an
    optional PuLP/CBC or SciPy/HiGHS backend, which closes instances
    well past the combinatorial engines and always bypasses the
    structured shortcuts.

    ``context`` — a :class:`~repro.algorithms.solve_context.SolveContext`
    built for this instance — shares per-instance solver state across the
    repeated solves of a bi-criteria threshold sweep (the exact engines'
    search tables, the Theorem 8 DP memo); results are bit-identical with
    or without one.

    ``budget`` (:class:`~repro.algorithms.budget.Budget`) caps exact
    solves: a bounded budget lifts the exact size guard and, on
    exhaustion, the engine returns the best incumbent plus a proven lower
    bound with ``meta["status"] == "budget_exhausted"`` — see
    :mod:`repro.algorithms.budget`.  Polynomial solvers ignore budgets
    (they are fast by theorem), and bounded budgets route the exact
    fallback through the budget-aware generic engines rather than the
    structured shortcuts.
    """
    if context is not None:
        context.require(spec)
    bicriteria = (
        (objective is Objective.PERIOD and latency_bound is not None)
        or (objective is Objective.LATENCY and period_bound is not None)
    )
    entry = classify(spec, objective, bicriteria)
    if not entry.is_polynomial:
        if not exact_fallback:
            raise NPHardError(
                f"{spec.describe()}, objective {objective.value}"
                f"{' (bi-criteria)' if bicriteria else ''} is NP-hard "
                f"({entry.theorem}); pass exact_fallback=True for an "
                "exponential exact solve, or use repro.heuristics"
            )
        return _exact_dispatch(
            spec, objective, period_bound, latency_bound, engine, context,
            budget,
        )
    return _poly_dispatch(spec, objective, period_bound, latency_bound, context)


def _poly_dispatch(
    spec, objective, period_bound, latency_bound, context=None
) -> Solution:
    app, platform, dp = spec.application, spec.platform, spec.allow_data_parallel

    if spec.graph_kind is GraphKind.PIPELINE:
        if spec.platform_homogeneous:
            if objective is Objective.PERIOD and latency_bound is None:
                return pipeline_hom_platform.min_period(app, platform, dp)
            if objective is Objective.LATENCY:
                if period_bound is not None:
                    return pipeline_hom_platform.min_latency_given_period(
                        app, platform, period_bound, dp
                    )
                if dp:
                    return pipeline_hom_platform.min_latency_with_dp(app, platform)
                return pipeline_hom_platform.min_latency_no_dp(app, platform)
            return pipeline_hom_platform.min_period_given_latency(
                app, platform, latency_bound, dp
            )
        # heterogeneous platform, no data-parallelism (else NP-hard above)
        if objective is Objective.LATENCY and period_bound is None:
            return pipeline_het_platform.min_latency_no_dp(app, platform)
        if objective is Objective.PERIOD and latency_bound is None:
            return pipeline_het_platform.min_period_homogeneous(app, platform)
        if objective is Objective.LATENCY:
            return pipeline_het_platform.min_latency_given_period_homogeneous(
                app, platform, period_bound, context=context
            )
        return pipeline_het_platform.min_period_given_latency_homogeneous(
            app, platform, latency_bound, context=context
        )

    # forks and fork-joins
    is_forkjoin = spec.graph_kind is GraphKind.FORK_JOIN
    if spec.platform_homogeneous:
        if objective is Objective.PERIOD and latency_bound is None:
            if is_forkjoin:
                return forkjoin.min_period_hom_platform(app, platform, dp)
            return fork_hom_platform.min_period(app, platform, dp)
        if is_forkjoin:
            return forkjoin.solve_hom_platform(
                app, platform, objective, period_bound, latency_bound, dp
            )
        if objective is Objective.LATENCY:
            if period_bound is not None:
                return fork_hom_platform.min_latency_given_period(
                    app, platform, period_bound, dp
                )
            return fork_hom_platform.min_latency(app, platform, dp)
        return fork_hom_platform.min_period_given_latency(
            app, platform, latency_bound, dp
        )
    # heterogeneous platform, homogeneous fork, no data-parallelism
    if is_forkjoin:
        return forkjoin.solve_het_platform(
            app, platform, objective, period_bound, latency_bound
        )
    return fork_het_platform.solve_homogeneous(
        app, platform, objective, period_bound, latency_bound
    )


def _exact_dispatch(
    spec, objective, period_bound, latency_bound, engine="bnb", context=None,
    budget=None,
) -> Solution:
    app = spec.application
    # structured shortcuts are complete searches with no anytime hook, so
    # a bounded budget routes through the budget-aware generic engines; an
    # explicit engine="milp" request likewise bypasses them so the MILP
    # formulation actually runs
    unbudgeted = (budget is None or not budget.is_bounded) and engine != "milp"
    if spec.graph_kind is GraphKind.PIPELINE:
        if (
            unbudgeted
            and objective is Objective.PERIOD
            and not spec.allow_data_parallel
            and period_bound is None
            and latency_bound is None
        ):
            return exact.pipeline_period_exact_blocks(app, spec.platform)
        return exact.pipeline_exact(
            spec, objective, period_bound, latency_bound, engine,
            context=context, budget=budget,
        )
    if (
        unbudgeted
        and spec.graph_kind is GraphKind.FORK
        and objective is Objective.LATENCY
        and not spec.allow_data_parallel
        and spec.platform_homogeneous
        and period_bound is None
        and latency_bound is None
    ):
        return exact.fork_latency_exact_hom_platform(app, spec.platform)
    if spec.graph_kind is GraphKind.FORK_JOIN:
        return exact.forkjoin_exact(
            spec, objective, period_bound, latency_bound, engine,
            context=context, budget=budget,
        )
    return exact.fork_exact(
        spec, objective, period_bound, latency_bound, engine, context=context,
        budget=budget,
    )
