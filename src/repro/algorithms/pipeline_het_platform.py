"""Pipeline on **heterogeneous platforms** without data-parallelism —
Theorems 6, 7 and 8 (the ``Poly (*)`` entries of Table 1).

* :func:`min_latency_no_dp` (Thm 6) — map the whole pipeline onto the
  fastest processor; replication cannot reduce latency (Lemma 2).
* :func:`min_period_homogeneous` (Thm 7) — *homogeneous pipeline* (all
  stages of work ``w``): binary search on the period combined with a
  dynamic program over processor blocks.
* :func:`min_latency_given_period_homogeneous` /
  :func:`min_period_given_latency_homogeneous` (Thm 8) — the bi-criteria
  versions.

Structure theorem (paper Lemma 3, implemented in block form): sort the
processors by *non-decreasing* speed; there is an optimal solution whose
replication groups are **consecutive blocks** of this order, unused
processors being the slowest ones.  The cost of a block depends only on its
size ``k`` and its minimum speed (its first processor), so a prefix DP over
the sorted processors captures all such solutions.  We allow empty blocks
(zero stages), which subsumes the paper's outer loop on the number ``q`` of
enrolled processors.

Instead of the paper's epsilon-terminated binary search (bounded through an
lcm argument), we search over the *finite candidate set*
``{m·w / (k·s_i)}`` of achievable group periods, which yields the exact
optimum — see :mod:`repro.algorithms.search`.

For **heterogeneous** pipelines the period problem is NP-hard (Theorem 9);
these functions raise :class:`UnsupportedVariantError` and callers should
use :mod:`repro.algorithms.exact` or :mod:`repro.heuristics`.
"""

from __future__ import annotations

from ..core.application import PipelineApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import (
    InfeasibleProblemError,
    UnsupportedVariantError,
)
from ..core.mapping import AssignmentKind, GroupAssignment, PipelineMapping
from ..core.platform import Platform
from .problem import Solution
from .search import floor_div_tol, smallest_feasible, unique_sorted

__all__ = [
    "min_latency_no_dp",
    "min_period_homogeneous",
    "min_latency_given_period_homogeneous",
    "min_period_given_latency_homogeneous",
]


def min_latency_no_dp(app: PipelineApplication, platform: Platform) -> Solution:
    """Theorem 6: optimal latency is the whole pipeline on the fastest CPU.

    Holds for heterogeneous and homogeneous pipelines alike.
    """
    fastest = platform.fastest
    group = GroupAssignment(
        stages=tuple(range(1, app.n + 1)),
        processors=(fastest.index,),
        kind=AssignmentKind.REPLICATED,
    )
    mapping = PipelineMapping(application=app, platform=platform, groups=(group,))
    return Solution.from_mapping(mapping, algorithm="thm6-fastest-processor")


# ----------------------------------------------------------------------
# shared machinery for Theorems 7-8
# ----------------------------------------------------------------------
def _require_homogeneous_app(app: PipelineApplication) -> float:
    if not app.is_homogeneous:
        raise UnsupportedVariantError(
            "Theorems 7-8 require a homogeneous pipeline (identical stage "
            "works); the heterogeneous-pipeline period problem is NP-hard "
            "(Theorem 9) — use repro.algorithms.exact or repro.heuristics"
        )
    return app.stages[0].work


def _ascending(platform: Platform):
    """Processors sorted by non-decreasing speed, with their speeds."""
    order = platform.sorted_by_speed(descending=False)
    return order, [proc.speed for proc in order]


def _period_candidates(n: int, speeds_asc: list[float], w: float) -> list[float]:
    """Achievable group periods ``m w / (k s_i)`` over blocks of the order."""
    p = len(speeds_asc)
    values = []
    for i in range(p):
        s = speeds_asc[i]
        for k in range(1, p - i + 1):
            for m in range(1, n + 1):
                values.append(m * w / (k * s))
    return unique_sorted(values)


def _block_capacity(
    period: float, speed: float, k: int, w: float, n: int
) -> int:
    """Max number of stages a block (min speed ``speed``, size ``k``) handles
    within the period bound: ``floor(period * k * speed / w)`` capped at n."""
    if period == float("inf"):
        return n
    return min(n, max(0, floor_div_tol(period * k * speed, w)))


def _max_stages_prefix_dp(
    period: float, speeds_asc: list[float], w: float, n: int
) -> tuple[list[int], list[int]]:
    """Prefix DP of Theorem 7.

    ``F[j]`` = max stages processed by processors ``0..j-1`` (ascending
    order) partitioned into consecutive replication blocks with every block
    period at most ``period``.  Returns ``(F, split)`` where ``split[j]`` is
    the start of the last block of an optimal prefix ``j``.
    """
    p = len(speeds_asc)
    F = [0] * (p + 1)
    split = [0] * (p + 1)
    for j in range(1, p + 1):
        best, best_i = -1, 0
        for i in range(j):
            cap = _block_capacity(period, speeds_asc[i], j - i, w, n)
            value = F[i] + cap
            if value > best:
                best, best_i = value, i
        F[j] = min(best, n * (p + 1))  # value never needs to exceed n anyway
        split[j] = best_i
    return F, split


def _reconstruct_blocks(
    period: float,
    speeds_asc: list[float],
    w: float,
    n: int,
    F: list[int],
    split: list[int],
) -> list[tuple[int, int, int]]:
    """Turn the DP back into ``(block_start, block_end, stage_count)`` with
    exactly ``n`` stages distributed (blocks listed fast-to-slow first)."""
    p = len(speeds_asc)
    blocks: list[tuple[int, int]] = []  # (start, end) proc positions
    j = p
    while j > 0:
        i = split[j]
        blocks.append((i, j - 1))
        j = i
    # distribute the n stages, giving priority to the blocks with the largest
    # capacity so the remainder of capacity is left in small blocks
    remaining = n
    result: list[tuple[int, int, int]] = []
    caps = [
        _block_capacity(period, speeds_asc[i], j - i + 1, w, n)
        for i, j in blocks
    ]
    for (i, j), cap in zip(blocks, caps):
        take = min(remaining, cap)
        result.append((i, j, take))
        remaining -= take
    if remaining > 0:
        raise InfeasibleProblemError(
            f"internal: reconstruction failed ({remaining} stages left)"
        )
    return result


def _mapping_from_blocks(
    app: PipelineApplication,
    platform: Platform,
    order,
    blocks: list[tuple[int, int, int]],
) -> PipelineMapping:
    """Build the PipelineMapping from ``(start, end, stage_count)`` blocks."""
    groups: list[GroupAssignment] = []
    next_stage = 1
    for i, j, count in blocks:
        if count == 0:
            continue
        procs = tuple(sorted(order[t].index for t in range(i, j + 1)))
        groups.append(
            GroupAssignment(
                stages=tuple(range(next_stage, next_stage + count)),
                processors=procs,
                kind=AssignmentKind.REPLICATED,
            )
        )
        next_stage += count
    return PipelineMapping(application=app, platform=platform, groups=tuple(groups))


def min_period_homogeneous(
    app: PipelineApplication, platform: Platform
) -> Solution:
    """Theorem 7: optimal period of a homogeneous pipeline, no data-par.

    Exact candidate-set binary search; each feasibility test is the
    ``O(p^2)`` prefix DP, for a total of ``O(p^2 log(n p^2))`` after the
    ``O(n p^2)`` candidate enumeration.
    """
    w = _require_homogeneous_app(app)
    order, speeds_asc = _ascending(platform)
    n = app.n

    def feasible(period: float) -> bool:
        F, _ = _max_stages_prefix_dp(period, speeds_asc, w, n)
        return F[len(speeds_asc)] >= n

    period = smallest_feasible(
        _period_candidates(n, speeds_asc, w), feasible, what="period"
    )
    bound = period * (1 + FLOAT_TOL)
    F, split = _max_stages_prefix_dp(bound, speeds_asc, w, n)
    blocks = _reconstruct_blocks(bound, speeds_asc, w, n, F, split)
    mapping = _mapping_from_blocks(app, platform, order, blocks)
    return Solution.from_mapping(mapping, algorithm="thm7-binary-search-dp")


# ----------------------------------------------------------------------
# Theorem 8: bi-criteria
# ----------------------------------------------------------------------
def _latency_prefix_dp(
    period: float, speeds_asc: list[float], w: float, n: int
) -> tuple[list[list[float]], list[list[tuple[int, int]]]]:
    """``G[j][m]`` = min latency mapping ``m`` stages on processors
    ``0..j-1`` in consecutive replication blocks of period <= ``period``.

    A block ``[i..j-1]`` holding ``m'`` stages contributes latency
    ``m' w / s_i`` (delay of the slowest processor) and must satisfy
    ``m' w / ((j-i) s_i) <= period``.  ``m' = 0`` models idle processors.
    Complexity ``O(n^2 p^2)``.
    """
    p = len(speeds_asc)
    INF = float("inf")
    G = [[INF] * (n + 1) for _ in range(p + 1)]
    back: list[list[tuple[int, int]]] = [
        [(-1, -1)] * (n + 1) for _ in range(p + 1)
    ]
    G[0][0] = 0.0
    for j in range(1, p + 1):
        for m in range(n + 1):
            best, arg = INF, (-1, -1)
            for i in range(j):
                s_i = speeds_asc[i]
                cap = _block_capacity(period, s_i, j - i, w, n)
                top = min(m, cap)
                for m2 in range(top + 1):
                    prev = G[i][m - m2]
                    if prev == INF:
                        continue
                    cand = prev + m2 * w / s_i
                    if cand < best - FLOAT_TOL:
                        best, arg = cand, (i, m2)
            G[j][m] = best
            back[j][m] = arg
    return G, back


def _capacity_signature(
    period: float, speeds_asc: list[float], w: float, n: int
) -> tuple[int, ...]:
    """Block capacities ``cap(i, k)`` for every start ``i`` and size ``k``.

    The Theorem 8 latency DP depends on the period bound *only* through
    these integer floors, so two bounds with equal signatures share the
    whole ``O(n^2 p^2)`` table.  Computing the signature is ``O(p^2)`` —
    the memo test a threshold sweep runs per point.
    """
    p = len(speeds_asc)
    return tuple(
        _block_capacity(period, speeds_asc[i], k, w, n)
        for i in range(p)
        for k in range(1, p - i + 1)
    )


def _latency_dp_memo(
    period: float, speeds_asc: list[float], w: float, n: int, context
):
    """The Theorem 8 DP, memoized on the context by capacity signature.

    A tightening threshold whose capacity floors did not move *reuses*
    the previous table (same signature → identical DP → identical
    mapping); a moved floor recomputes.  Without a context this is a
    plain call.
    """
    if context is None:
        return _latency_prefix_dp(period, speeds_asc, w, n)
    memo = context.table("thm8-latency-dp")
    sig = _capacity_signature(period, speeds_asc, w, n)
    got = memo.get(sig)
    if got is None:
        got = _latency_prefix_dp(period, speeds_asc, w, n)
        memo[sig] = got
    return got


def min_latency_given_period_homogeneous(
    app: PipelineApplication, platform: Platform, period_bound: float,
    context=None,
) -> Solution:
    """Theorem 8: minimize latency subject to a period bound (hom pipeline).

    ``context`` (a :class:`~repro.algorithms.solve_context.SolveContext`)
    memoizes the latency DP across the threshold sweep — see
    :func:`_latency_dp_memo`.
    """
    w = _require_homogeneous_app(app)
    order, speeds_asc = _ascending(platform)
    n, p = app.n, platform.p
    bound = period_bound * (1 + FLOAT_TOL)
    G, back = _latency_dp_memo(bound, speeds_asc, w, n, context)
    if G[p][n] == float("inf"):
        raise InfeasibleProblemError(
            f"no mapping achieves period <= {period_bound}"
        )
    blocks: list[tuple[int, int, int]] = []
    j, m = p, n
    while j > 0:
        i, m2 = back[j][m]
        blocks.append((i, j - 1, m2))
        j, m = i, m - m2
    mapping = _mapping_from_blocks(app, platform, order, blocks)
    return Solution.from_mapping(mapping, algorithm="thm8-dp")


def min_period_given_latency_homogeneous(
    app: PipelineApplication, platform: Platform, latency_bound: float,
    context=None,
) -> Solution:
    """Theorem 8 (converse): minimize period subject to a latency bound.

    The candidate binary search probes many periods whose capacity
    signatures collide; ``context`` makes each distinct signature pay the
    DP once (across this search *and* across a surrounding sweep).
    """
    w = _require_homogeneous_app(app)
    _, speeds_asc = _ascending(platform)
    n, p = app.n, platform.p

    def feasible(period: float) -> bool:
        G, _ = _latency_dp_memo(period, speeds_asc, w, n, context)
        return G[p][n] <= latency_bound * (1 + FLOAT_TOL)

    period = smallest_feasible(
        _period_candidates(n, speeds_asc, w), feasible, what="period"
    )
    solution = min_latency_given_period_homogeneous(
        app, platform, period, context=context
    )
    if solution.latency > latency_bound * (1 + FLOAT_TOL):
        raise InfeasibleProblemError(
            f"no mapping achieves latency <= {latency_bound}"
        )
    return Solution(
        mapping=solution.mapping,
        period=solution.period,
        latency=solution.latency,
        meta={"algorithm": "thm8-binary-search"},
    )
