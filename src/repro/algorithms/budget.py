"""Solve budgets: bounded-effort exact solving with anytime results.

The exact engines (:mod:`repro.algorithms.bnb`, the flat enumerator) are
complete searches — past ``n ~ 10`` a single solve can run for hours.  A
:class:`Budget` caps the effort: ``max_nodes`` bounds the number of
search nodes visited, ``max_seconds`` bounds wall-clock time.  When a
budgeted engine exhausts its budget it does **not** raise or return
garbage; it returns the best *incumbent* found so far together with a
proven lower bound on the optimum, tagged ``status="budget_exhausted"``
in the solution meta — "too big to solve" becomes "solved within x%".

Semantics
---------
* A solve that finishes within budget is exact and tagged
  ``status="optimal"``; its result is bit-identical to an unbudgeted
  solve.
* A ``max_nodes`` budget is **deterministic**: the engines visit nodes
  in a fixed order and the budget is checked at fixed node counts, so
  the same budget on the same instance always stops at the same point
  and returns the same incumbent — with or without a
  :class:`~repro.algorithms.solve_context.SolveContext` (contexts cache
  tables, they never reorder the search).
* A ``max_seconds`` budget is inherently machine-dependent; the status
  and gap are honest but the incumbent may differ between runs.
* Budget checks are amortized: the engines test the budget once every
  :data:`CHECK_EVERY` nodes, so an unbudgeted solve pays one boolean
  test per node and a budgeted one adds a clock read every K nodes.
  A ``max_nodes`` stop can therefore overshoot by at most
  ``CHECK_EVERY - 1`` nodes.
* If the budget runs out before *any* incumbent exists (possible only
  under infeasibly tight bi-criteria thresholds — the engines seed an
  incumbent before searching), :class:`BudgetExhaustedError` is raised:
  within this budget the instance is neither solved nor proven
  infeasible.

Budgets are honored by the exact paths only (``bnb`` and ``enumerate``
engines via :func:`repro.algorithms.brute_force.optimal`, the generic
wrappers in :mod:`repro.algorithms.exact`, and :func:`repro.solve` with
``exact_fallback``).  Polynomial solvers ignore budgets — they are fast
by theorem — and the structured exact shortcuts are bypassed in favor of
the budget-aware branch-and-bound when a bounded budget is supplied.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.exceptions import ReproError

__all__ = ["CHECK_EVERY", "Budget", "BudgetExhaustedError", "BudgetMeter"]

#: Budget-check granularity: the engines consult the meter once every
#: this many search nodes (fixed, so ``max_nodes`` stops are
#: deterministic and the per-node overhead stays negligible).
CHECK_EVERY = 256


class BudgetExhaustedError(ReproError):
    """The budget ran out before any feasible incumbent was found.

    Only reachable under bi-criteria thresholds so tight that even the
    constructive incumbent seeds violate them; an unbounded solve would
    have either found a mapping or proven infeasibility, but within this
    budget the engine can assert neither.
    """

    def __init__(self, message: str, nodes: int = 0,
                 reason: str | None = None) -> None:
        super().__init__(message)
        self.nodes = nodes
        self.reason = reason


@dataclass(frozen=True)
class Budget:
    """Effort cap for one exact solve (either limit may be ``None``).

    >>> Budget(max_nodes=10_000).is_bounded
    True
    >>> Budget().is_bounded
    False
    >>> Budget(max_seconds=2.0, max_nodes=500).to_dict()
    {'max_seconds': 2.0, 'max_nodes': 500}
    """

    max_seconds: float | None = None
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and not self.max_seconds > 0:
            raise ReproError(
                f"max_seconds must be > 0, got {self.max_seconds!r}"
            )
        if self.max_nodes is not None and (
            not isinstance(self.max_nodes, int) or self.max_nodes < 1
        ):
            raise ReproError(
                f"max_nodes must be a positive integer, got {self.max_nodes!r}"
            )

    @property
    def is_bounded(self) -> bool:
        return self.max_seconds is not None or self.max_nodes is not None

    def merged(self, other: "Budget | None") -> "Budget":
        """The tighter combination of two budgets (per-limit minimum)."""
        if other is None:
            return self

        def _tight(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return Budget(
            max_seconds=_tight(self.max_seconds, other.max_seconds),
            max_nodes=_tight(self.max_nodes, other.max_nodes),
        )

    def to_dict(self) -> dict:
        return {"max_seconds": self.max_seconds, "max_nodes": self.max_nodes}

    @classmethod
    def from_mapping(cls, data: dict) -> "Budget | None":
        """A :class:`Budget` from config-style keys, or ``None`` if unset."""
        max_seconds = data.get("max_seconds")
        max_nodes = data.get("max_nodes")
        if max_seconds is None and max_nodes is None:
            return None
        return cls(max_seconds=max_seconds, max_nodes=max_nodes)


class _BudgetStop(Exception):
    """Internal engine signal: the budget is exhausted, unwind now."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class BudgetMeter:
    """Live budget accounting for one solve.

    Engines call :meth:`exhausted` every :data:`CHECK_EVERY` nodes; the
    node limit is tested before the clock so that when both limits have
    tripped the (deterministic) node reason wins.
    """

    __slots__ = ("budget", "reason", "_deadline", "_max_nodes", "_clock")

    def __init__(self, budget: Budget, clock=time.monotonic) -> None:
        self.budget = budget
        self.reason: str | None = None
        self._clock = clock
        self._max_nodes = budget.max_nodes
        self._deadline = (
            None if budget.max_seconds is None
            else clock() + budget.max_seconds
        )

    def exhausted(self, nodes: int) -> bool:
        if self._max_nodes is not None and nodes >= self._max_nodes:
            self.reason = "max_nodes"
            return True
        if self._deadline is not None and self._clock() >= self._deadline:
            self.reason = "max_seconds"
            return True
        return False
