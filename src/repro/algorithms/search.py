"""Search helpers shared by the binary-search × DP algorithms.

The optimal period (or latency) of every polynomial variant in the paper is
attained by some group's cost, which takes finitely many values of the form
``work / capacity`` (capacities are ``k * min_speed`` or ``sum_speed`` over
processor blocks).  Instead of an epsilon-terminated binary search on a real
interval (the paper bounds the iteration count through an lcm argument), we
enumerate the candidate value set and binary-search *within it*: the result
is exact, with ``O(log #candidates)`` feasibility tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..core.costs import FLOAT_TOL
from ..core.exceptions import InfeasibleProblemError

__all__ = ["unique_sorted", "smallest_feasible", "ceil_div_tol", "floor_div_tol"]


def unique_sorted(values: Iterable[float]) -> list[float]:
    """Sort and deduplicate floating candidates (tolerance-aware)."""
    out: list[float] = []
    for v in sorted(values):
        if not out or v - out[-1] > FLOAT_TOL * max(1.0, abs(v)):
            out.append(v)
    return out


def smallest_feasible(
    candidates: list[float],
    feasible: Callable[[float], bool],
    what: str = "threshold",
) -> float:
    """Smallest candidate for which ``feasible`` holds.

    ``feasible`` must be monotone (false..false, true..true) over the sorted
    candidates — all our feasibility tests are, since raising a period or
    latency bound only enlarges the feasible set.  Raises
    :class:`InfeasibleProblemError` when even the largest candidate fails.
    """
    if not candidates:
        raise InfeasibleProblemError(f"no candidate {what} values")
    lo, hi = 0, len(candidates) - 1
    if not feasible(candidates[hi]):
        raise InfeasibleProblemError(
            f"no feasible {what} (largest candidate {candidates[hi]} fails)"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(candidates[mid]):
            hi = mid
        else:
            lo = mid + 1
    return candidates[lo]


def ceil_div_tol(x: float, y: float) -> int:
    """``ceil(x / y)`` robust to floating error slightly above an integer."""
    q = x / y
    r = int(q)
    if q - r <= FLOAT_TOL * max(1.0, abs(q)):
        return max(r, 0)
    return max(r + 1, 0)


def floor_div_tol(x: float, y: float) -> int:
    """``floor(x / y)`` robust to floating error slightly below an integer."""
    q = x / y
    r = int(q)
    if q < 0:
        return r if q == r else r - 1
    if (r + 1) - q <= FLOAT_TOL * max(1.0, abs(q)):
        return r + 1
    return r
