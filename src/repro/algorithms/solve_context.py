"""Reusable per-instance solver state for bi-criteria threshold sweeps.

The paper's bi-criteria results are exercised as *sweeps*: minimize
latency under a period threshold (or the converse) for a whole grid of
thresholds of one instance (:func:`repro.analysis.pareto.pareto_front`).
Every solve in such a sweep shares the instance — only the threshold
changes — yet each engine call historically rebuilt identical state from
scratch: the interval prefix tables, the speed-sorted processor pool and
its ``best_cap`` suffix structure, the per-node child expansions of the
branch-and-bound search, the incumbent-seeding mappings, and (for the
Theorem 8 polynomial DP) the whole ``O(n^2 p^2)`` latency table.

:class:`SolveContext` is that shared state, built lazily, once per
instance, and reused across every threshold point of a sweep:

* the **bnb pipeline engine** caches its prefix/total tables, the speed
  pool template, the seed-incumbent offers, and — keyed by
  ``(stage, remaining-pool)`` — the full child expansion of every search
  node it visits, so later thresholds replay dictionary hits instead of
  regenerating and re-pricing candidate groups;
* the **enumeration engine** caches the exhaustive
  ``(groups, period, latency)`` candidate list, so later thresholds are
  a filtered scan instead of a re-enumeration;
* the **milp engine** caches its processor-type table and (for
  pipelines) the priced ``(interval, type)`` column pool, which are
  threshold-independent; each sweep point re-filters the pool instead of
  re-pricing every interval;
* the **Theorem 8 DP** (:mod:`repro.algorithms.pipeline_het_platform`)
  memoizes its latency table by *capacity signature*: the DP depends on
  the threshold only through the ``floor(period k s / w)`` block
  capacities, so a tightening threshold whose floors did not move
  *reuses* the previous table instead of recomputing it.

Reuse is **behaviour-preserving by construction**: every cached object
is exactly what the cold path would have computed, so a sweep through
one context returns bit-identical solutions to per-point cold solves
(pinned by ``tests/algorithms/test_solve_context.py``).  A context is
tied to one instance; using it with a different
:class:`~repro.algorithms.problem.ProblemSpec` raises, which is what
keeps interleaved sweeps over several instances from leaking state.

Contexts enter the system in three ways: pass ``context=`` to
:func:`repro.solve` / :func:`repro.algorithms.brute_force.optimal`
directly, let :func:`repro.analysis.pareto.pareto_front` build one per
front, or run any campaign — :func:`repro.campaign.runner.execute_tasks`
keeps a :class:`ContextCache` so repeated instances inside one run (a
``campaign pareto`` threshold grid, say) share contexts automatically.
"""

from __future__ import annotations

from ..core.exceptions import ReproError

__all__ = ["SolveContext", "ContextCache"]


def _spec_fingerprint(spec) -> tuple:
    """Cheap content identity of a :class:`ProblemSpec`.

    Two specs with equal fingerprints describe the same instance (same
    graph shape, stage works and overheads in order, processor speeds in
    order, data-parallelism flag), so every table a context caches is
    valid for both.
    """
    app = spec.application
    stages = app.all_stages if hasattr(app, "all_stages") else app.stages
    return (
        spec.graph_kind.value,
        tuple((s.index, s.work, s.dp_overhead) for s in stages),
        tuple(spec.platform.speeds),
        bool(spec.allow_data_parallel),
    )


class SolveContext:
    """Lazily-built caches shared by every solve of one instance.

    The context itself is a neutral bag: each consumer (the bnb engine,
    the enumeration engine, the Theorem 8 DP) owns a named table and its
    key scheme, obtained with :meth:`table`.  The context only enforces
    the one global invariant — all users must solve the *same* instance.

    Example (sweep three thresholds through one context)::

        ctx = SolveContext(spec)
        for bound in thresholds:
            solution = brute_force.optimal(
                spec, Objective.LATENCY, period_bound=bound, context=ctx
            )
    """

    def __init__(self, spec) -> None:
        self.spec = spec
        self.fingerprint = _spec_fingerprint(spec)
        self._tables: dict[str, dict] = {}

    def table(self, name: str) -> dict:
        """The named memo table (created empty on first access)."""
        table = self._tables.get(name)
        if table is None:
            table = {}
            self._tables[name] = table
        return table

    def require(self, spec) -> "SolveContext":
        """Assert the context belongs to ``spec``'s instance; return self.

        Identity is the fast path; otherwise content fingerprints must
        match.  A mismatch is always a caller bug — silently accepting
        it would serve one instance's cached tables to another.
        """
        if spec is not self.spec and _spec_fingerprint(spec) != self.fingerprint:
            raise ReproError(
                "SolveContext instance mismatch: context was built for "
                f"{self.spec.describe()!r} but used with {spec.describe()!r}"
            )
        return self


class ContextCache:
    """Bounded pool of :class:`SolveContext` keyed by instance content.

    The campaign runner resolves tasks one at a time; a threshold sweep
    arrives as many tasks sharing one instance document.  The cache maps
    the canonical JSON of the document to its context (parsing the spec
    once as a side benefit) and evicts oldest-first beyond
    ``max_entries`` so a large multi-instance campaign cannot hold every
    instance's search tables alive at once.
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ReproError("ContextCache needs max_entries >= 1")
        self.max_entries = max_entries
        self._entries: dict[str, SolveContext] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def for_document(self, instance: dict) -> SolveContext:
        """The context of an instance document (parsed and cached).

        Hits refresh recency (LRU), so interleaved sweeps over more
        instances than ``max_entries`` still keep the hot ones alive.
        """
        from ..serialization import canonical_json

        key = canonical_json(instance)
        context = self._entries.pop(key, None)
        if context is None:
            from ..serialization import spec_from_dict

            context = SolveContext(spec_from_dict(instance))
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
        self._entries[key] = context
        return context
