"""MILP exact engine (``engine="milp"``) over an optional solver backend.

The combinatorial engines close instances up to roughly ``n = 10`` (bnb)
before PR 6's budgets degrade them to anytime incumbents with combinatorial
gaps.  This module formulates the same problems — single-criterion period
or latency minimization and the bi-criteria threshold variants, for interval
mappings of pipelines and partitionings of fork / fork-join graphs — as a
mixed-integer linear program, pushing the exactly-closed frontier toward
``n = 20..30`` and tightening dual bounds via the LP relaxation.

Backends
--------
The MILP is solved by the first available backend:

* ``pulp`` (CBC) — the preferred optional dependency
  (``pip install -e .[milp]``), imported lazily;
* ``scipy.optimize.milp`` (HiGHS) — used automatically when PuLP is not
  installed but SciPy is.

``REPRO_MILP_BACKEND`` overrides the choice (``auto`` / ``pulp`` /
``scipy`` / ``none``; ``none`` forces unavailability, which the test suite
uses to exercise the skip machinery).  When no backend is importable every
entry point raises :class:`~repro.core.exceptions.ReproError` carrying
:data:`INSTALL_HINT`.

Formulation
-----------
Processors only enter the cost model through the *minimum* and the *sum*
of a group's speeds, so groups are assigned **processor types** rather
than explicit processor subsets:

* a replicated type ``(k, c)`` claims ``k`` processors drawn from speed
  classes at least as fast as class ``c`` (claimed cost uses ``s_c``);
* a data-parallel type is an exact per-class count vector (claimed cost
  uses the summed speed).

Feasibility of a type selection is enforced by Hall-style counting
constraints over the nested up-sets of speed classes (plus exact per-class
rows for the data-parallel vectors), which are necessary *and* sufficient:
:func:`_realize_processors` turns any feasible selection into disjoint
concrete processor sets, giving each replicated group the *slowest*
available processors of its admissible classes.  The realized mapping is
never slower than claimed, and the true optimum always has an encoding
whose claimed cost is exact, so the realized value of the MILP optimum
equals the enumerated optimum (the three-way differential suite in
``tests/algorithms/test_bnb_equivalence.py`` enforces this).

Pipelines become a set-partitioning model over (interval, type) columns —
no big-M at all.  Fork and fork-join graphs use a slot model (stage →
group-slot assignment with restricted-growth symmetry breaking) with
indicator big-M rows tying each slot's linear work expression to its
chosen type's period / delay / phase times.

Budgets
-------
``Budget.max_seconds`` maps to the backend time limit (``max_nodes`` to
the branch-and-bound node limit where the backend exposes one).  On
exhaustion the incumbent is returned with ``meta["status"] ==
"budget_exhausted"`` and a dual bound that is the best of the backend's
own bound, the LP relaxation and the combinatorial root bound of
:func:`repro.algorithms.bnb.root_lower_bound` — the same anytime contract
as the bnb engine, with tighter gaps.
"""

from __future__ import annotations

import itertools
import math
import os
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.application import ForkApplication, ForkJoinApplication
from ..core.costs import FLOAT_TOL, evaluate
from ..core.exceptions import InfeasibleProblemError, ReproError
from ..core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.validation import is_valid
from .budget import Budget, BudgetExhaustedError
from .problem import Objective, ProblemSpec, Solution

__all__ = [
    "INSTALL_HINT",
    "backend_name",
    "milp_available",
    "lp_lower_bound",
    "optimal",
]

_INF = float("inf")

#: Environment override for the backend choice.
_BACKEND_ENV = "REPRO_MILP_BACKEND"

#: Actionable message raised whenever no MILP backend is importable.
INSTALL_HINT = (
    "the milp engine needs an MILP backend: install PuLP/CBC with "
    "`pip install -e .[milp]` (or `pip install pulp`), or install scipy "
    "for the HiGHS fallback; engines 'bnb' and 'enumerate' work without "
    "either"
)

#: Cap on the data-parallel type pool (product of per-class counts).  A
#: wildly heterogeneous platform would otherwise explode the column pool;
#: the combinatorial engines remain available for such instances.
_DP_POOL_CAP = 20_000


# ----------------------------------------------------------------------
# backend detection
# ----------------------------------------------------------------------
def _detect_backend() -> str | None:
    """Name of the backend to use (``"pulp"`` / ``"scipy"``) or ``None``.

    Re-evaluated on every call so tests can flip :data:`_BACKEND_ENV`.
    """
    choice = os.environ.get(_BACKEND_ENV, "auto").strip().lower() or "auto"
    if choice not in ("auto", "pulp", "scipy", "none"):
        raise ReproError(
            f"unknown {_BACKEND_ENV} value {choice!r} "
            "(choose from auto/pulp/scipy/none)"
        )
    if choice == "none":
        return None
    if choice in ("auto", "pulp"):
        try:
            import pulp  # noqa: F401
        except ImportError:
            if choice == "pulp":
                return None
        else:
            return "pulp"
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:
        return None
    return "scipy"


def milp_available() -> bool:
    """True when an MILP backend is importable (and not disabled)."""
    return _detect_backend() is not None


def backend_name() -> str | None:
    """The backend :func:`optimal` would use right now, or ``None``."""
    return _detect_backend()


def _require_backend() -> str:
    backend = _detect_backend()
    if backend is None:
        raise ReproError(INSTALL_HINT)
    return backend


# ----------------------------------------------------------------------
# tiny backend-neutral model IR
# ----------------------------------------------------------------------
@dataclass
class _Model:
    """A minimize-objective MILP: variables, one objective, range rows."""

    obj: list[float] = field(default_factory=list)
    lb: list[float] = field(default_factory=list)
    ub: list[float] = field(default_factory=list)
    integer: list[bool] = field(default_factory=list)
    #: rows as ``(terms, row_lb, row_ub)`` with ``terms = [(var, coef)]``
    rows: list[tuple[list[tuple[int, float]], float, float]] = field(
        default_factory=list
    )

    def add_var(
        self,
        *,
        obj: float = 0.0,
        lb: float = 0.0,
        ub: float = _INF,
        integer: bool = False,
    ) -> int:
        self.obj.append(obj)
        self.lb.append(lb)
        self.ub.append(ub)
        self.integer.append(integer)
        return len(self.obj) - 1

    def add_row(
        self,
        terms: list[tuple[int, float]],
        lb: float = -_INF,
        ub: float = _INF,
    ) -> None:
        self.rows.append((terms, lb, ub))

    @property
    def n_vars(self) -> int:
        return len(self.obj)


@dataclass
class _MilpResult:
    """Backend-neutral solve outcome."""

    status: str  # "optimal" | "limit" | "infeasible" | "no_solution"
    x: list[float] | None
    objective: float | None
    dual_bound: float | None
    nodes: int | None


def _solve(
    backend: str,
    model: _Model,
    budget: Budget | None = None,
    relax: bool = False,
) -> _MilpResult:
    if backend == "pulp":
        return _solve_pulp(model, budget, relax)
    return _solve_scipy(model, budget, relax)


def _solve_scipy(
    model: _Model, budget: Budget | None, relax: bool
) -> _MilpResult:
    import numpy as np
    from scipy import sparse
    from scipy.optimize import Bounds, LinearConstraint, milp

    n = model.n_vars
    data, rows, cols = [], [], []
    row_lb, row_ub = [], []
    for r, (terms, lb, ub) in enumerate(model.rows):
        for var, coef in terms:
            rows.append(r)
            cols.append(var)
            data.append(coef)
        row_lb.append(lb)
        row_ub.append(ub)
    a = sparse.csc_array(
        (data, (rows, cols)), shape=(len(model.rows), n), dtype=float
    )
    constraints = LinearConstraint(a, np.array(row_lb), np.array(row_ub))
    integrality = np.array(
        [0 if relax else (1 if flag else 0) for flag in model.integer]
    )
    options: dict = {"presolve": True}
    if not relax and any(model.integer):
        # HiGHS' default 1e-4 relative MIP gap would break exact equality
        # with the combinatorial engines; demand a proven optimum.
        options["mip_rel_gap"] = 0.0
    if budget is not None:
        if budget.max_seconds is not None:
            options["time_limit"] = float(budget.max_seconds)
        if budget.max_nodes is not None and not relax:
            options["node_limit"] = int(budget.max_nodes)
    res = milp(
        c=np.array(model.obj),
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(np.array(model.lb), np.array(model.ub)),
        options=options,
    )
    if res.status not in (0, 1, 2) and options.get("presolve"):
        # Some HiGHS releases abort ("Status 4: Solve error") in presolve
        # on models that solve fine without it; retry once presolve-free
        # before giving up.
        res = milp(
            c=np.array(model.obj),
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(np.array(model.lb), np.array(model.ub)),
            options={**options, "presolve": False},
        )
    nodes = getattr(res, "mip_node_count", None)
    dual = getattr(res, "mip_dual_bound", None)
    if res.status == 0:
        return _MilpResult(
            "optimal", list(res.x), float(res.fun),
            float(res.fun) if relax else dual, nodes,
        )
    if res.status == 2:
        return _MilpResult("infeasible", None, None, None, nodes)
    if res.status == 1:  # iteration / time / node limit
        if res.x is not None:
            return _MilpResult(
                "limit", list(res.x), float(res.fun), dual, nodes
            )
        return _MilpResult("limit", None, None, dual, nodes)
    raise ReproError(
        f"milp backend 'scipy' failed: {res.message!r} (status {res.status})"
    )


def _solve_pulp(
    model: _Model, budget: Budget | None, relax: bool
) -> _MilpResult:
    import pulp

    prob = pulp.LpProblem("repro_milp", pulp.LpMinimize)
    xs = []
    for i in range(model.n_vars):
        ub = None if model.ub[i] == _INF else model.ub[i]
        cat = (
            pulp.LpInteger
            if model.integer[i] and not relax
            else pulp.LpContinuous
        )
        xs.append(
            pulp.LpVariable(f"x{i}", lowBound=model.lb[i], upBound=ub, cat=cat)
        )
    prob += pulp.lpSum(
        coef * xs[i] for i, coef in enumerate(model.obj) if coef != 0.0
    )
    for terms, lb, ub in model.rows:
        expr = pulp.lpSum(coef * xs[var] for var, coef in terms)
        if lb == ub:
            prob += expr == lb
            continue
        if ub != _INF:
            prob += expr <= ub
        if lb != -_INF:
            prob += expr >= lb
    seconds = None
    options = []
    if budget is not None:
        if budget.max_seconds is not None:
            seconds = float(budget.max_seconds)
        if budget.max_nodes is not None and not relax:
            options.append(f"maxNodes {int(budget.max_nodes)}")
    solver = pulp.PULP_CBC_CMD(
        msg=0, gapRel=0.0, timeLimit=seconds, options=options
    )
    prob.solve(solver)
    status = prob.status
    have_x = all(x.varValue is not None for x in xs)
    values = [float(x.varValue) for x in xs] if have_x else None
    objective = float(pulp.value(prob.objective)) if have_x else None
    # prob.sol_status distinguishes a proven optimum from the incumbent of
    # a limit-stopped solve (pulp >= 2.2); fall back to prob.status.
    sol_status = getattr(prob, "sol_status", None)
    proven = status == pulp.LpStatusOptimal and sol_status in (
        None, getattr(pulp, "LpSolutionOptimal", 1)
    )
    if proven and values is not None:
        return _MilpResult("optimal", values, objective, objective, None)
    if status == pulp.LpStatusInfeasible:
        return _MilpResult("infeasible", None, None, None, None)
    if values is not None:
        return _MilpResult("limit", values, objective, None, None)
    return _MilpResult("limit", None, None, None, None)


# ----------------------------------------------------------------------
# processor types & speed classes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ProcType:
    """A group's processor claim, abstracted to speed-class counts."""

    kind: AssignmentKind
    k: int = 0  # replicated: processor count
    cls: int = 0  # replicated: slowest admissible speed class (index)
    vec: tuple[int, ...] = ()  # data-parallel: exact per-class counts
    min_speed: float = 0.0
    sum_speed: float = 0.0

    def demand_ge(self, cls: int) -> int:
        """Processors this type consumes from classes ``>= cls``."""
        if self.kind is AssignmentKind.REPLICATED:
            return self.k if self.cls >= cls else 0
        return sum(self.vec[cls:])


def _speed_classes(platform) -> tuple[list[float], list[list[int]]]:
    """``(speeds ascending, member processor indices per class)``."""
    classes: list[float] = sorted(set(platform.speeds))
    members: list[list[int]] = [[] for _ in classes]
    index = {s: c for c, s in enumerate(classes)}
    for proc, speed in enumerate(platform.speeds):
        members[index[speed]].append(proc)
    return classes, members


def _proc_types(spec: ProblemSpec) -> list[_ProcType]:
    """Every useful processor type for this platform."""
    classes, members = _speed_classes(spec.platform)
    counts = [len(m) for m in members]
    n_ge = [sum(counts[c:]) for c in range(len(classes))]
    types: list[_ProcType] = []
    for c, speed in enumerate(classes):
        for k in range(1, n_ge[c] + 1):
            types.append(
                _ProcType(
                    AssignmentKind.REPLICATED, k=k, cls=c, min_speed=speed
                )
            )
    if spec.allow_data_parallel:
        pool = 1
        for count in counts:
            pool *= count + 1
        if pool > _DP_POOL_CAP:
            raise ReproError(
                "milp engine: the data-parallel type pool for this "
                f"platform has {pool} per-class count vectors "
                f"(cap {_DP_POOL_CAP}); use engine='bnb' or disable "
                "data-parallel groups"
            )
        for vec in itertools.product(*(range(c + 1) for c in counts)):
            if sum(vec) < 2:  # a 1-processor dp group is never enumerated
                continue
            types.append(
                _ProcType(
                    AssignmentKind.DATA_PARALLEL,
                    vec=vec,
                    sum_speed=sum(
                        v * s for v, s in zip(vec, classes)
                    ),
                )
            )
    return types


def _realize_processors(
    platform, chosen: list[tuple[_ProcType, object]]
) -> list[tuple[object, tuple[int, ...]]]:
    """Assign concrete, disjoint processor sets to chosen types.

    ``chosen`` pairs each selected type with an opaque tag (the caller's
    group payload).  Data-parallel vectors are exact, so they are served
    first; replicated claims form nested up-sets over the speed classes
    and are served from the most restrictive (fastest class) down, each
    taking the *slowest* still-available admissible processors — the
    standard exchange argument keeps every later claim satisfiable, and
    the realized minimum speed can only exceed the claimed one.
    """
    classes, members = _speed_classes(platform)
    available = [list(m) for m in members]  # ascending index per class
    out: list[tuple[object, tuple[int, ...]]] = []
    for ptype, tag in chosen:
        if ptype.kind is not AssignmentKind.DATA_PARALLEL:
            continue
        procs: list[int] = []
        for c, need in enumerate(ptype.vec):
            if need > len(available[c]):
                raise ReproError(
                    "milp internal error: infeasible data-parallel "
                    "realization (Hall rows violated)"
                )
            procs.extend(available[c][:need])
            del available[c][:need]
        out.append((tag, tuple(sorted(procs))))
    replicated = [
        (ptype, tag)
        for ptype, tag in chosen
        if ptype.kind is AssignmentKind.REPLICATED
    ]
    for ptype, tag in sorted(
        replicated, key=lambda pair: pair[0].cls, reverse=True
    ):
        procs = []
        for c in range(ptype.cls, len(classes)):
            while available[c] and len(procs) < ptype.k:
                procs.append(available[c].pop(0))
            if len(procs) == ptype.k:
                break
        if len(procs) != ptype.k:
            raise ReproError(
                "milp internal error: infeasible replicated realization "
                "(Hall rows violated)"
            )
        out.append((tag, tuple(sorted(procs))))
    return out


def _add_hall_rows(
    model: _Model,
    spec: ProblemSpec,
    weighted: list[tuple[int, _ProcType]],
) -> None:
    """Processor-capacity rows over the selection variables.

    ``weighted`` pairs each selection variable with its type; a selected
    variable consumes its type's claim once.  One row per speed class
    bounds the nested up-set demand (replicated + data-parallel), and —
    because data-parallel vectors name *exact* classes, not up-sets — one
    extra row per class bounds their exact per-class draw.
    """
    classes, members = _speed_classes(spec.platform)
    counts = [len(m) for m in members]
    n_ge = [sum(counts[c:]) for c in range(len(classes))]
    for c in range(len(classes)):
        terms = []
        for var, ptype in weighted:
            demand = ptype.demand_ge(c)
            if demand:
                terms.append((var, float(demand)))
        if terms:
            model.add_row(terms, ub=float(n_ge[c]))
    if spec.allow_data_parallel:
        for c in range(len(classes)):
            terms = [
                (var, float(ptype.vec[c]))
                for var, ptype in weighted
                if ptype.kind is AssignmentKind.DATA_PARALLEL
                and ptype.vec[c]
            ]
            if terms:
                model.add_row(terms, ub=float(counts[c]))


# ----------------------------------------------------------------------
# pipeline: set-partitioning over (interval, type) columns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Column:
    start: int  # 1-based, inclusive
    end: int
    ptype: _ProcType
    period: float
    delay: float


def _pipeline_columns(spec: ProblemSpec, types: list[_ProcType]) -> list[_Column]:
    app = spec.application
    overheads = {stage.index: stage.dp_overhead for stage in app.stages}
    prefix = [0.0]
    for work in app.works:
        prefix.append(prefix[-1] + work)
    columns: list[_Column] = []
    for start in range(1, app.n + 1):
        for end in range(start, app.n + 1):
            work = prefix[end] - prefix[start - 1]
            for ptype in types:
                if ptype.kind is AssignmentKind.DATA_PARALLEL:
                    # model rule: dp only for single-stage intervals
                    if start != end:
                        continue
                    cost = overheads[start] + work / ptype.sum_speed
                    period = delay = cost
                else:
                    period = work / (ptype.k * ptype.min_speed)
                    delay = work / ptype.min_speed
                columns.append(_Column(start, end, ptype, period, delay))
    return columns


def _build_pipeline_model(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None,
    latency_bound: float | None,
    columns: list[_Column],
):
    """``(model, decode)`` for a pipeline instance.

    ``decode(x)`` maps a feasible solution vector back to the chosen
    ``(column, ...)`` list in interval order.
    """
    model = _Model()
    if period_bound is not None:
        cap = period_bound * (1.0 + FLOAT_TOL)
        columns = [col for col in columns if col.period <= cap]
    if not columns:
        # the bound filtered out every (interval, type) column: no valid
        # mapping can meet it, and the backend needs >= 1 variable anyway
        raise InfeasibleProblemError(
            f"no valid mapping satisfies the bounds "
            f"(period<={period_bound}, latency<={latency_bound})"
        )
    z_vars = [
        model.add_var(
            obj=col.delay if objective is Objective.LATENCY else 0.0,
            ub=1.0,
            integer=True,
        )
        for col in columns
    ]
    t_per = (
        model.add_var(obj=1.0) if objective is Objective.PERIOD else None
    )
    for stage in range(1, spec.application.n + 1):
        covering = [
            (var, col)
            for var, col in zip(z_vars, columns)
            if col.start <= stage <= col.end
        ]
        model.add_row([(var, 1.0) for var, _ in covering], lb=1.0, ub=1.0)
        if t_per is not None:
            # exactly one column covers the stage, so this aggregated row
            # equals the stage's group period — a much tighter LP
            # relaxation than one row per column
            model.add_row(
                [(t_per, 1.0)]
                + [(var, -col.period) for var, col in covering],
                lb=0.0,
            )
    if latency_bound is not None:
        model.add_row(
            [(var, col.delay) for var, col in zip(z_vars, columns)],
            ub=latency_bound * (1.0 + FLOAT_TOL),
        )
    _add_hall_rows(
        model, spec, [(var, col.ptype) for var, col in zip(z_vars, columns)]
    )

    def decode(x: list[float]) -> PipelineMapping:
        chosen = [
            col for var, col in zip(z_vars, columns) if x[var] > 0.5
        ]
        chosen.sort(key=lambda col: col.start)
        realized = _realize_processors(
            spec.platform, [(col.ptype, col) for col in chosen]
        )
        by_col = {id(tag): procs for tag, procs in realized}
        groups = tuple(
            GroupAssignment(
                stages=tuple(range(col.start, col.end + 1)),
                processors=by_col[id(col)],
                kind=col.ptype.kind,
            )
            for col in chosen
        )
        return PipelineMapping(
            application=spec.application,
            platform=spec.platform,
            groups=groups,
        )

    return model, decode


# ----------------------------------------------------------------------
# fork / fork-join: slot model with restricted-growth symmetry breaking
# ----------------------------------------------------------------------
def _build_slot_model(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None,
    latency_bound: float | None,
    types: list[_ProcType],
):
    """``(model, decode)`` for a fork / fork-join instance.

    Stage ``i`` may sit in slot ``g <= i`` only (restricted-growth
    canonical labelling), which pins the root stage 0 to slot 0 and kills
    the slot-permutation symmetry.
    """
    app = spec.application
    is_forkjoin = isinstance(app, ForkJoinApplication)
    stages = list(app.all_stages)
    works = {stage.index: stage.work for stage in stages}
    overheads = {stage.index: stage.dp_overhead for stage in stages}
    indices = sorted(works)
    n_stages = len(indices)
    join_index = app.n + 1 if is_forkjoin else None
    n_slots = min(n_stages, spec.platform.p)
    if spec.allow_data_parallel and min(works.values()) <= 0.0:
        raise ReproError(
            "milp engine: fork/fork-join instances with data-parallel "
            "groups need strictly positive stage works"
        )
    model = _Model()
    x = {}  # (stage index, slot) -> var
    for pos, i in enumerate(indices):
        for g in range(min(pos, n_slots - 1) + 1):
            x[i, g] = model.add_var(ub=1.0, integer=True)
    y = {}  # (slot, type position) -> var
    for g in range(n_slots):
        for t, _ in enumerate(types):
            y[g, t] = model.add_var(ub=1.0, integer=True)

    for i in indices:
        model.add_row(
            [(x[i, g], 1.0) for g in range(n_slots) if (i, g) in x],
            lb=1.0,
            ub=1.0,
        )
    for g in range(n_slots):
        slot_stages = [i for i in indices if (i, g) in x]
        type_terms = [(y[g, t], 1.0) for t in range(len(types))]
        model.add_row(type_terms, ub=1.0)
        # a used slot picks exactly one type; a typed slot is non-empty
        model.add_row(
            type_terms + [(x[i, g], -1.0) for i in slot_stages], ub=0.0
        )
        for i in slot_stages:
            model.add_row([(x[i, g], 1.0)] + [
                (term, -1.0) for term in (y[g, t] for t in range(len(types)))
            ], ub=0.0)
    # restricted growth: stage i opens slot g only if some earlier stage
    # sits in slot g-1
    for pos, i in enumerate(indices):
        for g in range(1, min(pos, n_slots - 1) + 1):
            earlier = [
                x[j, g - 1] for j in indices[:pos] if (j, g - 1) in x
            ]
            model.add_row(
                [(x[i, g], 1.0)] + [(var, -1.0) for var in earlier], ub=0.0
            )
    # dp-validity: a data-parallel slot 0 holds the root alone, and (fork-
    # join) a data-parallel group holding the join holds it alone
    dp_positions = [
        t
        for t, ptype in enumerate(types)
        if ptype.kind is AssignmentKind.DATA_PARALLEL
    ]
    root_index = indices[0]
    cap = float(n_stages - 1)
    if dp_positions:
        others0 = [i for i in indices if i != root_index and (i, 0) in x]
        model.add_row(
            [(x[i, 0], 1.0) for i in others0]
            + [(y[0, t], cap) for t in dp_positions],
            ub=cap,
        )
        if is_forkjoin:
            for g in range(n_slots):
                if (join_index, g) not in x:
                    continue
                others = [
                    i for i in indices if i != join_index and (i, g) in x
                ]
                if not others:
                    continue
                model.add_row(
                    [(x[i, g], 1.0) for i in others]
                    + [(y[g, t], cap) for t in dp_positions]
                    + [(x[join_index, g], cap)],
                    ub=2.0 * cap,
                )
    _add_hall_rows(
        model,
        spec,
        [(y[g, t], ptype) for g in range(n_slots)
         for t, ptype in enumerate(types)],
    )

    def slot_cost_terms(g: int, t: int, members: list[int]):
        """``(period coefs, delay coefs)`` on the slot's x variables."""
        ptype = types[t]
        per, dly = [], []
        for i in members:
            if ptype.kind is AssignmentKind.DATA_PARALLEL:
                coef = overheads[i] + works[i] / ptype.sum_speed
                per.append((x[i, g], coef))
                dly.append((x[i, g], coef))
            else:
                per.append(
                    (x[i, g], works[i] / (ptype.k * ptype.min_speed))
                )
                dly.append((x[i, g], works[i] / ptype.min_speed))
        return per, dly

    need_period = objective is Objective.PERIOD or period_bound is not None
    need_latency = objective is Objective.LATENCY or latency_bound is not None
    t_per = t_lat = t0 = t_done = None
    if need_period:
        t_per = model.add_var(
            obj=1.0 if objective is Objective.PERIOD else 0.0,
            ub=(
                period_bound * (1.0 + FLOAT_TOL)
                if period_bound is not None
                else _INF
            ),
        )
    if need_latency:
        t_lat = model.add_var(
            obj=1.0 if objective is Objective.LATENCY else 0.0,
            ub=(
                latency_bound * (1.0 + FLOAT_TOL)
                if latency_bound is not None
                else _INF
            ),
        )
        t0 = model.add_var()
        if is_forkjoin:
            t_done = model.add_var()

    w_root = works[root_index]
    f_root = overheads[root_index]

    def t0_cost_of(ptype: _ProcType) -> float:
        if ptype.kind is AssignmentKind.DATA_PARALLEL:
            return f_root + w_root / ptype.sum_speed
        return w_root / ptype.min_speed

    # per-row big-Ms: each indicator row only needs to absorb its own
    # expression's range, which is dramatically tighter than one global M
    t0_max = max(t0_cost_of(ptype) for ptype in types) if types else 0.0
    phase_max = 0.0
    for g in range(n_slots):
        members = [i for i in indices if (i, g) in x]
        for t, ptype in enumerate(types):
            per_terms, dly_terms = slot_cost_terms(g, t, members)
            per_sum = sum(coef for _, coef in per_terms)
            if need_period:
                # t_per >= slot period - M (1 - y)
                model.add_row(
                    [(t_per, 1.0), (y[g, t], -per_sum)]
                    + [(var, -coef) for var, coef in per_terms],
                    lb=-per_sum,
                )
            if not need_latency:
                continue
            if g == 0:
                # root completion time: t0 >= cost * y (t0, cost >= 0)
                model.add_row(
                    [(t0, 1.0), (y[g, t], -t0_cost_of(ptype))], lb=0.0
                )
            if is_forkjoin:
                # branches-done time covers every group's branch phase
                branch_terms = [
                    (var, coef)
                    for (var, coef), i in zip(dly_terms, members)
                    if i not in (root_index, join_index)
                ]
                branch_sum = sum(coef for _, coef in branch_terms)
                phase_max = max(phase_max, branch_sum)
                m_row = t0_max + branch_sum
                model.add_row(
                    [(t_done, 1.0), (t0, -1.0), (y[g, t], -m_row)]
                    + [(var, -coef) for var, coef in branch_terms],
                    lb=-m_row,
                )
            else:
                dly_sum = sum(coef for _, coef in dly_terms)
                if g == 0:
                    # whole root-group delay bounds the latency directly
                    model.add_row(
                        [(t_lat, 1.0), (y[g, t], -dly_sum)]
                        + [(var, -coef) for var, coef in dly_terms],
                        lb=-dly_sum,
                    )
                else:
                    # non-root groups start at t0
                    m_row = t0_max + dly_sum
                    model.add_row(
                        [(t_lat, 1.0), (t0, -1.0), (y[g, t], -m_row)]
                        + [(var, -coef) for var, coef in dly_terms],
                        lb=-m_row,
                    )
    if is_forkjoin and need_latency:
        # join phase on the join group's effective speed; the row fires
        # only when slot g both holds the join stage and has type t
        done_max = t0_max + phase_max
        for g in range(n_slots):
            if (join_index, g) not in x:
                continue
            for t, ptype in enumerate(types):
                if ptype.kind is AssignmentKind.DATA_PARALLEL:
                    join_cost = (
                        overheads[join_index]
                        + works[join_index] / ptype.sum_speed
                    )
                else:
                    join_cost = works[join_index] / ptype.min_speed
                m_row = done_max + join_cost
                model.add_row(
                    [
                        (t_lat, 1.0),
                        (t_done, -1.0),
                        (y[g, t], -m_row),
                        (x[join_index, g], -m_row),
                    ],
                    lb=join_cost - 2.0 * m_row,
                )

    def decode(sol: list[float]):
        chosen: list[tuple[_ProcType, tuple[int, ...]]] = []
        for g in range(n_slots):
            slot_stages = tuple(
                i for i in indices if (i, g) in x and sol[x[i, g]] > 0.5
            )
            if not slot_stages:
                continue
            picked = [
                t for t in range(len(types)) if sol[y[g, t]] > 0.5
            ]
            if len(picked) != 1:
                raise ReproError(
                    "milp internal error: used slot without exactly one "
                    "processor type"
                )
            chosen.append((types[picked[0]], slot_stages))
        realized = _realize_processors(
            spec.platform,
            [(ptype, (ptype, members)) for ptype, members in chosen],
        )
        groups = tuple(
            GroupAssignment(
                stages=members, processors=procs, kind=ptype.kind
            )
            for (ptype, members), procs in realized
        )
        mapping_cls = ForkJoinMapping if is_forkjoin else ForkMapping
        return mapping_cls(
            application=app, platform=spec.platform, groups=groups
        )

    return model, decode


# ----------------------------------------------------------------------
# model assembly, shared across optimal() and lp_lower_bound()
# ----------------------------------------------------------------------
def _build_model(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None,
    latency_bound: float | None,
    context=None,
):
    table = context.table("milp") if context is not None else {}
    types = table.get("types")
    if types is None:
        types = _proc_types(spec)
        table["types"] = types
    if isinstance(spec.application, ForkApplication):
        return _build_slot_model(
            spec, objective, period_bound, latency_bound, types
        )
    columns = table.get("columns")
    if columns is None:
        columns = _pipeline_columns(spec, types)
        table["columns"] = columns
    return _build_pipeline_model(
        spec, objective, period_bound, latency_bound, columns
    )


def _fallback_incumbent(
    spec: ProblemSpec,
    period_bound: float | None,
    latency_bound: float | None,
):
    """A trivially valid mapping (all stages, fastest processor) if it
    meets the bounds — the milp counterpart of bnb's seeded incumbent."""
    app = spec.application
    if isinstance(app, ForkApplication):
        stage_ids = tuple(sorted(s.index for s in app.all_stages))
        mapping_cls = (
            ForkJoinMapping
            if isinstance(app, ForkJoinApplication)
            else ForkMapping
        )
    else:
        stage_ids = tuple(range(1, app.n + 1))
        mapping_cls = PipelineMapping
    fastest = max(
        range(spec.platform.p), key=lambda i: spec.platform.speeds[i]
    )
    mapping = mapping_cls(
        application=app,
        platform=spec.platform,
        groups=(
            GroupAssignment(
                stages=stage_ids,
                processors=(fastest,),
                kind=AssignmentKind.REPLICATED,
            ),
        ),
    )
    period, latency = evaluate(mapping)
    if period_bound is not None and period > period_bound * (1 + FLOAT_TOL):
        return None
    if latency_bound is not None and latency > latency_bound * (1 + FLOAT_TOL):
        return None
    return mapping


def _exhaustion_reason(budget: Budget, nodes: int | None) -> str:
    if budget.max_nodes is None:
        return "max_seconds"
    if budget.max_seconds is None:
        return "max_nodes"
    if nodes is not None and nodes >= budget.max_nodes:
        return "max_nodes"
    return "max_seconds"


def lp_lower_bound(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    context=None,
) -> float:
    """Dual bound from the LP relaxation of the MILP formulation.

    Always a valid lower bound on the true optimum (the integral optimum
    encodes the enumerated one exactly).  Raises
    :class:`InfeasibleProblemError` when even the relaxation is empty —
    which proves the bi-criteria instance infeasible — and
    :class:`ReproError` when no backend is available.
    """
    backend = _require_backend()
    if context is not None:
        context.require(spec)
    model, _ = _build_model(
        spec, objective, period_bound, latency_bound, context
    )
    res = _solve(backend, model, relax=True)
    if res.status == "infeasible":
        raise InfeasibleProblemError(
            f"no valid mapping satisfies the bounds "
            f"(period<={period_bound}, latency<={latency_bound})"
        )
    if res.status != "optimal" or res.objective is None:
        raise ReproError(
            f"milp backend {backend!r} failed on the LP relaxation "
            f"(status {res.status!r})"
        )
    return res.objective


def optimal(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    context=None,
    budget: Budget | None = None,
) -> Solution:
    """MILP exact optimum (same contract as the bnb / enumerate engines).

    Minimizes ``objective``; ``period_bound`` / ``latency_bound`` turn the
    call into the paper's bi-criteria problems.  ``context`` (a
    :class:`~repro.algorithms.solve_context.SolveContext` of this
    instance) shares the priced column pool / processor-type table across
    the repeated solves of a threshold sweep.

    ``budget`` maps ``max_seconds`` to the backend's time limit (and
    ``max_nodes`` to its node limit where supported).  A solve that
    completes is a *proven* optimum (``meta["status"] == "optimal"``,
    ``gap == 0``); an exhausted budget returns the incumbent with
    ``meta["status"] == "budget_exhausted"`` and the tightest known dual
    bound (backend bound / LP relaxation / combinatorial root bound).
    Raises :class:`InfeasibleProblemError` when no valid mapping meets
    the bounds, :class:`BudgetExhaustedError` when the budget runs out
    with no incumbent, and :class:`ReproError` (with an install hint)
    when no MILP backend is available.
    """
    backend = _require_backend()
    if context is not None:
        context.require(spec)
    bounded = budget is not None and budget.is_bounded
    model, decode = _build_model(
        spec, objective, period_bound, latency_bound, context
    )
    res = _solve(backend, model, budget=budget if bounded else None)
    nodes = int(res.nodes) if res.nodes is not None else 0

    if res.status == "infeasible":
        raise InfeasibleProblemError(
            f"no valid mapping satisfies the bounds "
            f"(period<={period_bound}, latency<={latency_bound})"
        )
    if res.status == "optimal":
        mapping = decode(res.x)
        assert is_valid(mapping, spec.allow_data_parallel)
        solution = Solution.from_mapping(
            mapping,
            algorithm="milp",
            backend=backend,
            nodes=nodes,
            pruned=0,
            memo_hits=0,
            status="optimal",
        )
        value = solution.objective_value(objective)
        claimed = res.objective
        scale = max(1.0, abs(value))
        # the backend's claimed objective carries its feasibility /
        # integrality tolerances; the returned value is re-priced exactly
        # by evaluate(), so only gross drift indicates a formulation bug
        assert abs(value - claimed) <= 1e-4 * scale, (
            f"milp claimed optimum {claimed} drifted from evaluate() "
            f"value {value} on the realized mapping"
        )
        return solution
    if not bounded:
        raise ReproError(
            f"milp backend {backend!r} stopped without a limit "
            f"(status {res.status!r})"
        )

    # budget exhausted: incumbent (or the seeded fallback) + dual bound
    reason = _exhaustion_reason(budget, res.nodes)
    mapping = None
    if res.x is not None:
        mapping = decode(res.x)
    if mapping is None:
        mapping = _fallback_incumbent(spec, period_bound, latency_bound)
    if mapping is None:
        raise BudgetExhaustedError(
            f"budget exhausted ({reason}) after {nodes} nodes with no "
            f"feasible incumbent (period<={period_bound}, "
            f"latency<={latency_bound}): neither solved nor proven "
            "infeasible within this budget",
            nodes=nodes,
            reason=reason,
        )
    assert is_valid(mapping, spec.allow_data_parallel)

    from .bnb import root_lower_bound

    lower = root_lower_bound(spec, objective)
    if res.dual_bound is not None and math.isfinite(res.dual_bound):
        # the truncated tree's own bound dominates the LP relaxation
        lower = max(lower, res.dual_bound)
    else:
        try:
            lower = max(
                lower,
                lp_lower_bound(
                    spec, objective, period_bound, latency_bound, context
                ),
            )
        except (InfeasibleProblemError, ReproError):
            pass  # keep the combinatorial bound
    solution = Solution.from_mapping(
        mapping,
        algorithm="milp",
        backend=backend,
        nodes=nodes,
        pruned=0,
        memo_hits=0,
        status="budget_exhausted",
        lower_bound=lower,
        budget=budget.to_dict(),
        budget_reason=reason,
    )
    value = solution.objective_value(objective)
    solution.meta["gap"] = (
        (value - lower) / lower
        if lower > 0.0
        else (0.0 if value <= FLOAT_TOL else _INF)
    )
    return solution
