"""Problem specifications and solutions for the sixteen mapping problems.

Section 3.4 of the paper defines an optimization problem by four choices:

1. the application graph — pipeline or fork (or fork-join, Section 6.3),
   itself *homogeneous* (identical stage works) or *heterogeneous*;
2. the platform — homogeneous or heterogeneous processors;
3. the mapping strategy — replication always allowed, data-parallelism
   allowed or not;
4. the objective — period, latency, or a bi-criteria combination
   (minimize one under a threshold on the other).

:class:`ProblemSpec` captures choices 1-3; :class:`Objective` and the
optional thresholds capture choice 4.  :class:`Solution` packages a mapping
with its evaluated metrics so solver outputs are self-describing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from ..core.costs import evaluate
from ..core.platform import Platform
from ..core.validation import validate

__all__ = ["GraphKind", "Objective", "ProblemSpec", "Solution"]


class GraphKind(enum.Enum):
    PIPELINE = "pipeline"
    FORK = "fork"
    FORK_JOIN = "fork-join"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Objective(enum.Enum):
    """What to minimize.

    ``PERIOD`` and ``LATENCY`` are the mono-criterion problems.  The
    bi-criteria problems are expressed by passing a threshold for the other
    criterion to the solver (``period_bound`` / ``latency_bound``).
    """

    PERIOD = "period"
    LATENCY = "latency"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ProblemSpec:
    """A problem instance: application + platform + mapping strategy."""

    application: PipelineApplication | ForkApplication | ForkJoinApplication
    platform: Platform
    allow_data_parallel: bool = False

    @property
    def graph_kind(self) -> GraphKind:
        if isinstance(self.application, ForkJoinApplication):
            return GraphKind.FORK_JOIN
        if isinstance(self.application, ForkApplication):
            return GraphKind.FORK
        return GraphKind.PIPELINE

    @property
    def application_homogeneous(self) -> bool:
        return self.application.is_homogeneous

    @property
    def platform_homogeneous(self) -> bool:
        return self.platform.is_homogeneous

    def describe(self) -> str:
        app = "hom." if self.application_homogeneous else "het."
        plat = "Hom." if self.platform_homogeneous else "Het."
        dp = "with" if self.allow_data_parallel else "without"
        return (
            f"{app} {self.graph_kind.value} on {plat} platform, "
            f"{dp} data-parallelism"
        )


@dataclass(frozen=True)
class Solution:
    """A mapping together with its evaluated period and latency.

    ``meta`` carries solver-specific details (algorithm name, iteration
    counts, ...) for reports and benchmarks.
    """

    mapping: object
    period: float
    latency: float
    meta: dict = field(default_factory=dict, compare=False)

    @classmethod
    def from_mapping(cls, mapping, **meta) -> "Solution":
        """Evaluate and validate a mapping, returning a Solution."""
        validate(mapping)
        period, latency = evaluate(mapping)
        return cls(mapping=mapping, period=period, latency=latency, meta=meta)

    def objective_value(self, objective: Objective) -> float:
        return self.period if objective is Objective.PERIOD else self.latency

    def describe(self) -> str:
        return (
            f"period={self.period:.6g} latency={self.latency:.6g}  "
            f"{self.mapping.describe()}"
        )
