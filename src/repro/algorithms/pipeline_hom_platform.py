"""Pipeline on **homogeneous platforms** — Theorems 1-4 and Corollary 1.

All four objectives are polynomial here:

* :func:`min_period` (Thm 1) — replicating the whole pipeline as a single
  interval over all processors reaches the absolute lower bound
  :math:`\\sum_i w_i / \\sum_u s_u = W / (p s)`; data-parallelism cannot beat
  it (Lemma 1).
* :func:`min_latency_no_dp` (Thm 2) — without data-parallelism every mapping
  has latency :math:`W / s`; with Corollary 1, replicate-all minimizes both
  criteria at once.
* :func:`min_latency_with_dp` (Thm 3) — dynamic programming choosing which
  single stages to data-parallelize and with how many processors.
* :func:`min_latency_given_period` / :func:`min_period_given_latency`
  (Thm 4) — the bi-criteria problems, solved by the same DP with a period
  bound, plus an exact candidate-value search for the converse direction.

The DP implemented here is a *suffix* formulation (state = first remaining
stage, processors left) that is equivalent to the interval recurrences
printed in the paper; the printed Thm 3 recurrence does not conserve the
processor count around a middle data-parallel stage (see DESIGN.md errata),
so we validate this formulation exhaustively against brute force instead of
transcribing it literally.
"""

from __future__ import annotations

from ..core.application import PipelineApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import (
    InfeasibleProblemError,
    UnsupportedVariantError,
)
from ..core.mapping import AssignmentKind, GroupAssignment, PipelineMapping
from ..core.platform import Platform
from .problem import Solution
from .search import ceil_div_tol, smallest_feasible, unique_sorted

__all__ = [
    "min_period",
    "min_latency_no_dp",
    "min_bicriteria_no_dp",
    "min_latency_with_dp",
    "min_latency_given_period",
    "min_period_given_latency",
    "pareto_front",
]


def _require_homogeneous(platform: Platform) -> float:
    if not platform.is_homogeneous:
        raise UnsupportedVariantError(
            "this module implements the Homogeneous-platform algorithms "
            "(Theorems 1-4); use repro.algorithms.pipeline_het_platform or "
            "repro.algorithms.exact for heterogeneous platforms"
        )
    return platform.processors[0].speed


def _replicate_all(app: PipelineApplication, platform: Platform) -> Solution:
    group = GroupAssignment(
        stages=tuple(range(1, app.n + 1)),
        processors=tuple(range(platform.p)),
        kind=AssignmentKind.REPLICATED,
    )
    mapping = PipelineMapping(application=app, platform=platform, groups=(group,))
    return Solution.from_mapping(mapping, algorithm="thm1-replicate-all")


def min_period(
    app: PipelineApplication, platform: Platform, allow_data_parallel: bool = True
) -> Solution:
    """Theorem 1: optimal period on a homogeneous platform.

    Replicate the single interval of all stages onto all processors; the
    period :math:`W/(p s)` matches the aggregate-capacity lower bound, so it
    is optimal with or without data-parallelism.
    """
    _require_homogeneous(platform)
    del allow_data_parallel  # optimal either way (Lemma 1)
    return _replicate_all(app, platform)


def min_latency_no_dp(app: PipelineApplication, platform: Platform) -> Solution:
    """Theorem 2: without data-parallelism every mapping has latency W/s."""
    _require_homogeneous(platform)
    return _replicate_all(app, platform)


def min_bicriteria_no_dp(app: PipelineApplication, platform: Platform) -> Solution:
    """Corollary 1: replicate-all minimizes period *and* latency at once."""
    _require_homogeneous(platform)
    return _replicate_all(app, platform)


# ----------------------------------------------------------------------
# Theorems 3-4: the latency DP (optionally under a period bound)
# ----------------------------------------------------------------------
def _latency_dp(
    app: PipelineApplication,
    platform: Platform,
    period_bound: float | None,
    allow_data_parallel: bool,
) -> tuple[float, list[GroupAssignment]] | None:
    """Core DP shared by Theorems 3 and 4.

    ``L[i][q]`` = minimal latency for stages ``i..n-1`` (0-based) using at
    most ``q`` processors, with every group period at most ``period_bound``
    (no constraint when ``None``).  Returns ``(latency, groups)`` or ``None``
    when infeasible.

    Transitions from ``(i, q)``:

    * make ``i..e`` a replicated interval — its latency ``W/s`` does not
      depend on the processor count, so it takes the *minimum* count that
      meets the period bound, ``k = max(1, ceil(W/(K s)))``;
    * (if allowed) data-parallelize stage ``i`` on ``q' >= 2`` processors —
      latency and period both ``w_i / (q' s)``.

    Complexity ``O(n p (n + p))``.
    """
    s = platform.processors[0].speed
    n, p = app.n, platform.p
    works = app.works
    prefix = [0.0] * (n + 1)
    for i, w in enumerate(works):
        prefix[i + 1] = prefix[i] + w

    INF = float("inf")
    L = [[INF] * (p + 1) for _ in range(n + 1)]
    choice: dict[tuple[int, int], tuple[str, int, int]] = {}
    for q in range(p + 1):
        L[n][q] = 0.0

    for i in range(n - 1, -1, -1):
        for q in range(1, p + 1):
            best = INF
            best_choice: tuple[str, int, int] | None = None
            for e in range(i, n):
                work = prefix[e + 1] - prefix[i]
                if period_bound is None:
                    k = 1
                else:
                    k = max(1, ceil_div_tol(work, period_bound * s))
                if k > q:
                    continue
                cand = work / s + L[e + 1][q - k]
                if cand < best - FLOAT_TOL:
                    best = cand
                    best_choice = ("replicate", e, k)
            if allow_data_parallel:
                w_i = works[i]
                f_i = app.stages[i].dp_overhead
                for q2 in range(2, q + 1):
                    cost = f_i + w_i / (q2 * s)
                    if period_bound is not None and cost > period_bound:
                        continue
                    cand = cost + L[i + 1][q - q2]
                    if cand < best - FLOAT_TOL:
                        best = cand
                        best_choice = ("data-parallel", i, q2)
            L[i][q] = best
            if best_choice is not None:
                choice[(i, q)] = best_choice

    if L[0][p] == INF:
        return None

    # reconstruct groups, assigning processor indices in order
    groups: list[GroupAssignment] = []
    i, q, next_proc = 0, p, 0
    while i < n:
        kind, arg, k = choice[(i, q)]
        procs = tuple(range(next_proc, next_proc + k))
        next_proc += k
        if kind == "replicate":
            e = arg
            groups.append(
                GroupAssignment(
                    stages=tuple(range(i + 1, e + 2)),
                    processors=procs,
                    kind=AssignmentKind.REPLICATED,
                )
            )
            i, q = e + 1, q - k
        else:
            groups.append(
                GroupAssignment(
                    stages=(i + 1,),
                    processors=procs,
                    kind=AssignmentKind.DATA_PARALLEL,
                )
            )
            i, q = i + 1, q - k
    return L[0][p], groups


def min_latency_with_dp(app: PipelineApplication, platform: Platform) -> Solution:
    """Theorem 3: optimal latency with data-parallelism, O(n p (n + p)) DP."""
    _require_homogeneous(platform)
    result = _latency_dp(app, platform, period_bound=None, allow_data_parallel=True)
    assert result is not None  # unconstrained DP is always feasible
    _, groups = result
    mapping = PipelineMapping(application=app, platform=platform, groups=tuple(groups))
    return Solution.from_mapping(mapping, algorithm="thm3-dp")


def min_latency_given_period(
    app: PipelineApplication,
    platform: Platform,
    period_bound: float,
    allow_data_parallel: bool = True,
) -> Solution:
    """Theorem 4 (first direction): minimize latency s.t. period <= bound."""
    _require_homogeneous(platform)
    result = _latency_dp(
        app,
        platform,
        period_bound=period_bound * (1 + FLOAT_TOL),
        allow_data_parallel=allow_data_parallel,
    )
    if result is None:
        raise InfeasibleProblemError(
            f"no mapping achieves period <= {period_bound}"
        )
    _, groups = result
    mapping = PipelineMapping(application=app, platform=platform, groups=tuple(groups))
    return Solution.from_mapping(mapping, algorithm="thm4-dp")


def _period_candidates(
    app: PipelineApplication, platform: Platform
) -> list[float]:
    """All achievable group-period values: replicated intervals
    ``W(i..e) / (k s)`` plus data-parallel singletons ``f_i + w_i / (k s)``
    (the latter only differ when Amdahl overheads are present)."""
    s = platform.processors[0].speed
    n, p = app.n, platform.p
    works = app.works
    values = []
    for i in range(n):
        work = 0.0
        for e in range(i, n):
            work += works[e]
            for k in range(1, p + 1):
                values.append(work / (k * s))
        f_i = app.stages[i].dp_overhead
        if f_i > 0:
            for k in range(2, p + 1):
                values.append(f_i + works[i] / (k * s))
    return unique_sorted(values)


def min_period_given_latency(
    app: PipelineApplication,
    platform: Platform,
    latency_bound: float,
    allow_data_parallel: bool = True,
) -> Solution:
    """Theorem 4 (second direction): minimize period s.t. latency <= bound.

    Exact binary search over the finite set of achievable group periods,
    using the Theorem 4 DP as the feasibility test.
    """
    _require_homogeneous(platform)

    def feasible(period: float) -> bool:
        result = _latency_dp(
            app,
            platform,
            period_bound=period * (1 + FLOAT_TOL),
            allow_data_parallel=allow_data_parallel,
        )
        return result is not None and result[0] <= latency_bound * (1 + FLOAT_TOL)

    period = smallest_feasible(
        _period_candidates(app, platform), feasible, what="period"
    )
    solution = min_latency_given_period(
        app, platform, period, allow_data_parallel
    )
    return Solution(
        mapping=solution.mapping,
        period=solution.period,
        latency=solution.latency,
        meta={"algorithm": "thm4-binary-search"},
    )


def pareto_front(
    app: PipelineApplication,
    platform: Platform,
    allow_data_parallel: bool = True,
) -> list[Solution]:
    """Non-dominated (period, latency) trade-off curve (Theorem 4 sweeps).

    One DP run per candidate period; dominated points are filtered out.
    """
    _require_homogeneous(platform)
    front: list[Solution] = []
    for period in _period_candidates(app, platform):
        try:
            sol = min_latency_given_period(app, platform, period, allow_data_parallel)
        except InfeasibleProblemError:
            continue
        if front and sol.latency >= front[-1].latency - FLOAT_TOL:
            continue
        front.append(sol)
    return front
