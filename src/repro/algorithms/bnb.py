"""Pruned branch-and-bound exact engine for the Section 3.4 problems.

:mod:`repro.algorithms.brute_force` prices every valid mapping from scratch,
which caps exact ground truth at roughly ``n <= 6, p <= 6``.  This module
solves the same sixteen problems exactly but builds mappings *incrementally*
— interval by interval for pipelines, block by block for forks and
fork-joins — maintaining the partial objective as it goes and cutting
subtrees with admissible lower bounds:

* **capacity bound** (period): any split of the remaining work ``W`` over
  the remaining processors of aggregate speed ``S`` has a group of period at
  least ``W / S`` (a replicated group's capacity ``k * min_speed`` and a
  data-parallel group's capacity ``sum_speed`` both total at most ``S``
  over disjoint groups);
* **partial-sum bound** (latency): assigned groups' delays only grow, and
  the remaining work contributes at least ``W / S`` more delay;
* **aggregate branch bound** (fork latency, the ``P || Cmax`` average-load
  bound): the unassigned blocks are disjoint groups whose per-group speed
  denominators total at most the remaining pool speed ``S``, so the
  slowest of them has delay at least ``sum(remaining loads) / S`` — the
  mediant generalization of ``Cmax >= total_work / m`` to heterogeneous
  pools, strictly tighter than the single-heaviest-block bound whenever
  two or more blocks remain;
* **speed-multiset canonicalization**: two processor subsets with the same
  multiset of speeds yield identical costs, so subsets are enumerated as
  per-speed-class counts (on a homogeneous platform this collapses the
  ``2^p`` subsets per group to ``p`` sizes);
* **replicated dominance fill**: a replicated group's period and delay
  depend only on ``(k, min_speed)``; among all subsets with those
  parameters, taking the *slowest* available processors of speed >=
  ``min_speed`` leaves a pointwise-fastest pool for the remaining groups
  and therefore dominates — one canonical subset per ``(k, min class)``
  instead of every count vector (data-parallel groups, whose cost depends
  on ``sum_speed``, still enumerate all canonical count vectors).

Sweep-aware solving: every call runs against a
:class:`~repro.algorithms.solve_context.SolveContext` (an ephemeral one
when the caller passes none).  The context caches the instance-level
tables — prefix sums, the speed-pool template, the incumbent seeds — and,
for pipelines, the per-``(stage, remaining pool)`` child expansions of the
search, so the repeated solves of a bi-criteria threshold sweep replay
dictionary hits instead of regenerating candidates.  Reuse is
behaviour-preserving: a context-backed solve returns bit-identical
solutions to a cold one.

Fork/fork-join Phase B prices its *leaf* level (the last unassigned
block) as one numpy batch: the child states are flattened into arrays and
the sequential first-strict-improvement scan of the incumbent is replayed
vectorized (:func:`repro.core.batch_eval.last_improvement_scan`) instead
of recursing once per leaf.

Bi-criteria thresholds prune with the same bounds; both the objective
incumbent and the threshold feasibility use the global ``FLOAT_TOL``
semantics of the flat enumerator, so the two engines agree to tolerance
(pinned down by ``tests/algorithms/test_bnb_equivalence.py``, which compares
against the exhaustive enumeration oracle on hundreds of random instances).

See ``PERFORMANCE.md`` at the repository root for the bound derivations and
measured speedups (>=10x at ``n = p = 7``; ``n = 9, p = 8`` pipelines solve
in seconds).
"""

from __future__ import annotations

import numpy as np

from ..chains.partition import prefix_sums
from ..core.application import ForkApplication, ForkJoinApplication
from ..core.batch_eval import last_improvement_scan
from ..core.costs import FLOAT_TOL, evaluate
from ..core.exceptions import InfeasibleProblemError
from ..core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.validation import is_valid
from .budget import CHECK_EVERY, Budget, BudgetExhaustedError, BudgetMeter, _BudgetStop
from .problem import Objective, ProblemSpec, Solution
from .solve_context import SolveContext

__all__ = ["optimal", "root_lower_bound"]

_INF = float("inf")
_REPL = AssignmentKind.REPLICATED
_DP = AssignmentKind.DATA_PARALLEL


# ----------------------------------------------------------------------
# processor pool with speed-class canonicalization
# ----------------------------------------------------------------------
class _SpeedPool:
    """Remaining processors, grouped into equal-speed classes.

    Classes are sorted by *ascending* speed; within a class processors are
    interchangeable (identical costs), so subsets are described by a count
    per class.  ``take``/``restore`` consume indices stack-wise so the
    recursion can reconstruct concrete processor sets for the incumbent.
    """

    def __init__(self, platform) -> None:
        if platform is None:  # cloning: caller fills the slots
            return
        by_speed: dict[float, list[int]] = {}
        for proc in platform.processors:
            by_speed.setdefault(proc.speed, []).append(proc.index)
        self.speeds: list[float] = sorted(by_speed)
        self.indices: list[list[int]] = [by_speed[s] for s in self.speeds]
        self.sizes: list[int] = [len(lst) for lst in self.indices]
        self.avail: list[int] = list(self.sizes)
        self.classes: int = len(self.speeds)
        self.total_avail: int = sum(self.sizes)
        self.total_speed: float = sum(
            s * c for s, c in zip(self.speeds, self.sizes)
        )

    def clone(self) -> "_SpeedPool":
        """A fresh full pool sharing the immutable class structure.

        ``speeds`` / ``indices`` / ``sizes`` are never mutated, so clones
        share them; only the availability state is per-solve.  This is
        what lets a :class:`SolveContext` hand the same pool template to
        every solve of a sweep.
        """
        pool = _SpeedPool(None)
        pool.speeds = self.speeds
        pool.indices = self.indices
        pool.sizes = self.sizes
        pool.avail = list(self.sizes)
        pool.classes = self.classes
        pool.total_avail = sum(self.sizes)
        pool.total_speed = sum(
            s * c for s, c in zip(self.speeds, self.sizes)
        )
        return pool

    def take(self, counts: tuple[int, ...]) -> tuple[int, ...]:
        """Consume ``counts[c]`` processors per class; return their indices."""
        picked: list[int] = []
        for c, cnt in enumerate(counts):
            if cnt:
                pos = self.sizes[c] - self.avail[c]
                picked.extend(self.indices[c][pos : pos + cnt])
                self.avail[c] -= cnt
                self.total_avail -= cnt
                self.total_speed -= cnt * self.speeds[c]
        return tuple(sorted(picked))

    def restore(self, counts: tuple[int, ...]) -> None:
        for c, cnt in enumerate(counts):
            if cnt:
                self.avail[c] += cnt
                self.total_avail += cnt
                self.total_speed += cnt * self.speeds[c]

    def take_nz(self, nz) -> tuple[int, ...]:
        """:meth:`take` over pre-extracted ``(class, count)`` pairs.

        The pipeline engine caches the nonzero pairs with each child, so
        the hot take/restore path touches only the 1-2 classes a group
        actually uses instead of scanning every class.
        """
        picked: list[int] = []
        for c, cnt in nz:
            pos = self.sizes[c] - self.avail[c]
            picked.extend(self.indices[c][pos : pos + cnt])
            self.avail[c] -= cnt
            self.total_avail -= cnt
            self.total_speed -= cnt * self.speeds[c]
        return tuple(sorted(picked))

    def restore_nz(self, nz) -> None:
        for c, cnt in nz:
            self.avail[c] += cnt
            self.total_avail += cnt
            self.total_speed += cnt * self.speeds[c]

    # ------------------------------------------------------------------
    def best_repl_capacity(self) -> float:
        """Best ``k * min_speed`` of any subset of the remaining pool.

        The optimum takes a full suffix of the fastest classes (growing the
        subset within a class keeps the min and raises ``k``).
        """
        best, k = 0.0, 0
        for c in range(self.classes - 1, -1, -1):
            a = self.avail[c]
            if a:
                k += a
                cap = k * self.speeds[c]
                if cap > best:
                    best = cap
        return best

    def repl_choices(self, k_max: int):
        """Canonical replicated subsets: one per ``(min class, k)``.

        For each minimum class ``c`` the fill takes the slowest available
        processors of speed >= ``speeds[c]`` (dominance: any other subset
        with the same ``(k, min)`` leaves a pointwise-slower pool).
        Yields ``(counts, k, min_speed, sum_speed)``.
        """
        out = []
        for c in range(self.classes):
            if self.avail[c] == 0:
                continue
            counts = [0] * self.classes
            k, ssum, cc = 0, 0.0, c
            while k < k_max and cc < self.classes:
                if counts[cc] < self.avail[cc]:
                    counts[cc] += 1
                    k += 1
                    ssum += self.speeds[cc]
                    out.append((tuple(counts), k, self.speeds[c], ssum))
                else:
                    cc += 1
        return out

    def dp_choices(self, k_max: int):
        """All canonical count vectors with ``2 <= k <= k_max``.

        Data-parallel cost depends on ``sum_speed``, so no single fill
        dominates; the per-class counts keep this to
        ``prod_c (avail_c + 1)`` candidates instead of ``2^p``.
        Yields ``(counts, k, sum_speed)``.
        """
        out = []
        counts = [0] * self.classes

        def rec(c: int, k: int, ssum: float) -> None:
            if c == self.classes:
                if k >= 2:
                    out.append((tuple(counts), k, ssum))
                return
            top = min(self.avail[c], k_max - k)
            for cnt in range(top + 1):
                counts[c] = cnt
                rec(c + 1, k + cnt, ssum + cnt * self.speeds[c])
            counts[c] = 0

        rec(0, 0, 0.0)
        return out


# ----------------------------------------------------------------------
# shared search state
# ----------------------------------------------------------------------
class _Search:
    """Incumbent + counters + threshold tolerances for one solve."""

    def __init__(self, objective, period_bound, latency_bound,
                 meter: BudgetMeter | None = None) -> None:
        self.objective = objective
        self.period_cap = (
            None if period_bound is None else period_bound * (1 + FLOAT_TOL)
        )
        self.latency_cap = (
            None if latency_bound is None else latency_bound * (1 + FLOAT_TOL)
        )
        self.best_value = _INF
        self.best_groups: list[tuple] | None = None
        self.nodes = 0
        self.pruned = 0
        self.memo_hits = 0  # context child-expansion replays (pipeline)
        # budget plumbing: the hot loops gate on a local `metered` flag,
        # so the unbudgeted path pays one bool test per node
        self.meter = meter
        self.next_check = CHECK_EVERY if meter is not None else _INF

    def checkpoint(self) -> None:
        """Amortized budget check (call when ``nodes >= next_check``).

        Re-arms at a fixed node-count stride, so a ``max_nodes`` budget
        stops at the same deterministic point on every run.
        """
        self.next_check = self.nodes + CHECK_EVERY
        if self.meter.exhausted(self.nodes):
            raise _BudgetStop(self.meter.reason)

    def value_of(self, period: float, latency: float) -> float:
        return period if self.objective is Objective.PERIOD else latency

    def feasible(self, period: float, latency: float) -> bool:
        if self.period_cap is not None and period > self.period_cap:
            return False
        if self.latency_cap is not None and latency > self.latency_cap:
            return False
        return True

    def cut(self, lb_period: float, lb_latency: float) -> bool:
        """True when the subtree below these lower bounds is hopeless."""
        if self.period_cap is not None and lb_period > self.period_cap:
            return True
        if self.latency_cap is not None and lb_latency > self.latency_cap:
            return True
        return self.value_of(lb_period, lb_latency) >= self.best_value - FLOAT_TOL

    def offer(self, period: float, latency: float, groups) -> None:
        if not self.feasible(period, latency):
            return
        value = self.value_of(period, latency)
        if value < self.best_value - FLOAT_TOL:
            self.best_value = value
            self.best_groups = list(groups)


def _seed_incumbent(spec: ProblemSpec, search: _Search,
                    context: SolveContext) -> None:
    """Prime the incumbent with a few cheap constructive mappings.

    A finite starting upper bound is what makes the capacity bounds bite
    from the first node on.  All seeds are replicated-only (always valid).
    The evaluated ``(period, latency, groups)`` triples are cached on the
    context — they are threshold-independent — so a sweep pays the mapping
    construction and pricing once.
    """
    state = context.table("bnb-seeds")
    offers = state.get("offers")
    if offers is None:
        app, platform = spec.application, spec.platform
        p = platform.p
        if isinstance(app, ForkApplication):
            stage_ids = [stage.index for stage in app.all_stages]
            cls = (
                ForkJoinMapping if isinstance(app, ForkJoinApplication)
                else ForkMapping
            )
        else:
            stage_ids = [stage.index for stage in app.stages]
            cls = PipelineMapping

        candidates: list[tuple[tuple, ...]] = [
            # everything in one group on the whole platform
            ((tuple(stage_ids), tuple(range(p)), _REPL),),
            # everything on the single fastest processor
            ((tuple(stage_ids), (platform.fastest.index,), _REPL),),
        ]
        if cls is not PipelineMapping and len(stage_ids) <= p:
            # one group per stage, heaviest work on fastest processor
            order = platform.sorted_by_speed(descending=True)
            works = {stage.index: stage.work for stage in app.all_stages}
            by_load = sorted(stage_ids, key=lambda i: -works[i])
            candidates.append(
                tuple(
                    ((i,), (order[t].index,), _REPL)
                    for t, i in enumerate(by_load)
                )
            )
        offers = []
        for groups in candidates:
            mapping = cls(
                application=app,
                platform=platform,
                groups=tuple(
                    GroupAssignment(stages=s, processors=pr, kind=kind)
                    for s, pr, kind in groups
                ),
            )
            period, latency = evaluate(mapping)
            offers.append((period, latency, groups))
        state["offers"] = offers
    for period, latency, groups in offers:
        search.offer(period, latency, groups)


# ----------------------------------------------------------------------
# pipeline engine: interval-by-interval
# ----------------------------------------------------------------------
def _pipeline_state(spec: ProblemSpec, context: SolveContext) -> dict:
    """Instance-level pipeline tables, built once per context."""
    state = context.table("bnb-pipeline")
    if not state:
        app = spec.application
        state["n"] = app.n
        state["prefix"] = prefix_sums(app.works)
        state["total"] = state["prefix"][app.n]
        state["overheads"] = [stage.dp_overhead for stage in app.stages]
        state["pool"] = _SpeedPool(spec.platform)
        state["children"] = {}
    return state


def _pipeline_children(
    pool: _SpeedPool, stage: int, n: int, prefix, overheads, allow_dp: bool
):
    """Child expansion of one ``(stage, remaining pool)`` search node.

    Children are generated in the engine's canonical order (interval
    length ascending; replicated fills, then data-parallel count vectors).
    Each child is ``(g_period, g_delay, length, nz_counts, kind)`` with
    ``nz_counts`` the nonzero ``(class, count)`` pairs for the fast
    take/restore path.
    """
    kids: list[tuple] = []
    for length in range(1, n - stage + 2):
        load = prefix[stage + length - 1] - prefix[stage - 1]
        reserve = 1 if stage + length <= n else 0
        k_max = pool.total_avail - reserve
        if k_max < 1:
            continue
        for counts, k, mins, _sums in pool.repl_choices(k_max):
            nz = tuple((c, cnt) for c, cnt in enumerate(counts) if cnt)
            kids.append((load / (k * mins), load / mins, length, nz, _REPL))
        if allow_dp and length == 1 and k_max >= 2:
            f = overheads[stage - 1]
            for counts, _k, sums in pool.dp_choices(k_max):
                nz = tuple((c, cnt) for c, cnt in enumerate(counts) if cnt)
                t = f + load / sums
                kids.append((t, t, length, nz, _DP))
    return kids


def _pipeline_node_views(
    state: dict, pool: _SpeedPool, stage: int, allow_dp: bool,
    value_col: int, search: _Search,
):
    """The child expansion of a node, pre-sorted for one objective.

    The expansion (and its two sorted views) depends only on
    ``(stage, remaining pool)`` — never on the threshold or the partial
    mapping — so it lives on the :class:`SolveContext` and every solve of
    a sweep shares it.  Sorting ascending by the objective column makes
    the child value ``max(cur_period, g_period)`` / ``cur_latency +
    g_delay`` non-decreasing along the visit order: a strong incumbent
    appears early *and* the node loop may stop at the first child whose
    value cannot improve the incumbent (everything later is at least as
    bad — the same children the legacy per-child cut skipped one by one).
    """
    key = (stage, tuple(pool.avail))
    views = state["children"].get(key)
    if views is None:
        views = {}
        views["gen"] = _pipeline_children(
            pool, stage, state["n"], state["prefix"], state["overheads"],
            allow_dp,
        )
        state["children"][key] = views
    else:
        search.memo_hits += 1  # same cost class as the nodes counter
    view = views.get(value_col)
    if view is None:
        view = tuple(sorted(views["gen"], key=lambda ch: ch[value_col]))
        views[value_col] = view
    return view


def _solve_pipeline(
    spec: ProblemSpec, search: _Search, context: SolveContext
) -> None:
    state = _pipeline_state(spec, context)
    allow_dp = spec.allow_data_parallel
    n = state["n"]
    prefix = state["prefix"]
    total = state["total"]
    children_memo = state  # views fetched via _pipeline_node_views
    pool = state["pool"].clone()
    groups: list[tuple] = []  # (stages, processors, kind)
    by_period = search.objective is Objective.PERIOD
    value_col = 0 if by_period else 1
    period_cap = search.period_cap
    latency_cap = search.latency_cap
    tol = FLOAT_TOL
    metered = search.meter is not None

    def rec(stage: int, cur_period: float, cur_latency: float) -> None:
        search.nodes += 1
        if metered and search.nodes >= search.next_check:
            search.checkpoint()
        if stage > n:
            search.offer(cur_period, cur_latency, groups)
            return
        rem_speed = pool.total_speed
        if pool.total_avail == 0:
            return
        rest = (total - prefix[stage - 1]) / rem_speed
        if search.cut(max(cur_period, rest), cur_latency + rest):
            search.pruned += 1
            return
        view = _pipeline_node_views(
            children_memo, pool, stage, allow_dp, value_col, search
        )
        for pos, (g_period, g_delay, length, nz, kind) in enumerate(view):
            new_period = cur_period if g_period <= cur_period else g_period
            new_latency = cur_latency + g_delay
            # monotone objective column: nothing later can improve either
            value = new_period if by_period else new_latency
            if value >= search.best_value - tol:
                search.pruned += len(view) - pos
                break
            if period_cap is not None and new_period > period_cap:
                search.pruned += 1
                continue
            if latency_cap is not None and new_latency > latency_cap:
                search.pruned += 1
                continue
            procs = pool.take_nz(nz)
            groups.append(
                (tuple(range(stage, stage + length)), procs, kind)
            )
            rec(stage + length, new_period, new_latency)
            groups.pop()
            pool.restore_nz(nz)

    rec(1, 0.0, 0.0)


# ----------------------------------------------------------------------
# fork / fork-join engine: partition blocks, then assign block-by-block
# ----------------------------------------------------------------------
class _Block:
    """One block of the stage partition, with cached load decomposition."""

    __slots__ = (
        "stages", "load", "overhead", "branch_load", "branch_overhead",
        "has_root", "has_join",
    )

    def __init__(self) -> None:
        self.stages: list[int] = []
        self.load = 0.0
        self.overhead = 0.0
        self.branch_load = 0.0
        self.branch_overhead = 0.0
        self.has_root = False
        self.has_join = False


def _fork_state(spec: ProblemSpec, context: SolveContext) -> dict:
    """Instance-level fork/fork-join tables, built once per context."""
    state = context.table("bnb-fork")
    if not state:
        app, platform = spec.application, spec.platform
        allow_dp = spec.allow_data_parallel
        is_forkjoin = isinstance(app, ForkJoinApplication)
        join_index = app.n + 1 if is_forkjoin else None
        stages = app.all_stages
        works = {stage.index: stage.work for stage in stages}
        overheads = {stage.index: stage.dp_overhead for stage in stages}
        total_speed = platform.total_speed
        max_speed = platform.fastest.speed
        p = platform.p
        # optimistic t0: a replicated root runs at <= max_speed, a
        # data-parallel (singleton) root at <= total_speed
        t0_floor = works[0] / (total_speed if allow_dp else max_speed)
        # best single-group capacities on the *full* platform (Phase A bound)
        desc = sorted(platform.speeds, reverse=True)
        cap_full = 0.0
        for k in range(1, p + 1):
            cap_full = max(cap_full, k * desc[k - 1])
        if allow_dp:
            cap_full = max(cap_full, total_speed)
        # process the root first, then heavier stages first (tighter bounds)
        order = [0] + sorted(
            (i for i in works if i != 0), key=lambda i: -works[i]
        )
        state.update(
            is_forkjoin=is_forkjoin,
            join_index=join_index,
            works=works,
            overheads=overheads,
            w0=works[0],
            f0=overheads[0],
            w_join=works[join_index] if is_forkjoin else 0.0,
            f_join=overheads[join_index] if is_forkjoin else 0.0,
            total_speed=total_speed,
            total_work=sum(works.values()),
            t0_floor=t0_floor,
            cap_full=cap_full,
            order=order,
            max_blocks=min(len(order), p),
            pool=_SpeedPool(platform),
        )
    return state


def _solve_fork_like(
    spec: ProblemSpec, search: _Search, context: SolveContext
) -> None:
    state = _fork_state(spec, context)
    allow_dp = spec.allow_data_parallel
    is_forkjoin = state["is_forkjoin"]
    join_index = state["join_index"]
    works = state["works"]
    overheads = state["overheads"]
    w0 = state["w0"]
    f0 = state["f0"]
    w_join = state["w_join"]
    f_join = state["f_join"]
    total_speed = state["total_speed"]
    total_work = state["total_work"]
    t0_floor = state["t0_floor"]
    cap_full = state["cap_full"]
    order = state["order"]
    max_blocks = state["max_blocks"]
    pool_template = state["pool"]
    by_period = search.objective is Objective.PERIOD
    latency_objective = (
        search.objective is Objective.LATENCY or search.latency_cap is not None
    )
    metered = search.meter is not None
    blocks: list[_Block] = []

    # ----- Phase B: assign processors to the blocks of a complete partition
    def assign_blocks(partition: list[_Block]) -> None:
        root_first = sorted(
            partition, key=lambda b: (not b.has_root, -b.load)
        )
        q = len(root_first)
        pool = pool_template.clone()
        # suffix tables over the fixed block order; the *_sum tables feed
        # the aggregate (P || Cmax average-load) latency bound, which
        # dominates the old per-block-max bound (sum >= max, same S)
        suf_load_sum = [0.0] * (q + 1)
        suf_load_max = [0.0] * (q + 1)
        suf_nonroot_sum = [0.0] * (q + 1)
        suf_branch_sum = [0.0] * (q + 1)
        for i in range(q - 1, -1, -1):
            b = root_first[i]
            suf_load_sum[i] = suf_load_sum[i + 1] + b.load
            suf_load_max[i] = max(suf_load_max[i + 1], b.load)
            suf_nonroot_sum[i] = suf_nonroot_sum[i + 1] + (
                0.0 if b.has_root else b.load
            )
            suf_branch_sum[i] = suf_branch_sum[i + 1] + b.branch_load
        chosen: list[tuple] = []

        def score_children(
            i, cur_period, t0, root_delay, other_max, done_max, join_time
        ):
            """The scored child states of block ``i`` (legacy order + sort)."""
            block = root_first[i]
            reserve = q - i - 1
            k_max = pool.total_avail - reserve
            if k_max < 1:
                return None
            size = len(block.stages)
            children = []
            for counts, k, mins, sums in pool.repl_choices(k_max):
                children.append((counts, k, mins, sums, _REPL))
            dp_ok = (
                allow_dp
                and k_max >= 2
                and not (block.has_root and size > 1)
                and not (block.has_join and size > 1)
            )
            if dp_ok:
                for counts, k, sums in pool.dp_choices(k_max):
                    children.append((counts, k, 0.0, sums, _DP))

            scored = []
            for counts, k, mins, sums, kind in children:
                if kind is _DP:
                    g_period = block.overhead + block.load / sums
                    g_delay = g_period
                else:
                    g_period = block.load / (k * mins)
                    g_delay = block.load / mins
                new_period = max(cur_period, g_period)
                n_t0, n_root, n_other = t0, root_delay, other_max
                n_done, n_join = done_max, join_time
                if block.has_root:
                    n_root = g_delay
                    n_t0 = (
                        (f0 + w0 / sums) if kind is _DP else w0 / mins
                    )
                if is_forkjoin:
                    if kind is _DP:
                        phase = (
                            block.branch_overhead + block.branch_load / sums
                            if block.branch_load > 0.0
                            else 0.0
                        )
                    else:
                        phase = block.branch_load / mins
                    done = (
                        n_t0 + phase
                        if (block.has_root or block.branch_load > 0.0)
                        else n_t0
                    )
                    n_done = max(done_max, done)
                    if block.has_join:
                        if kind is _DP:
                            n_join = (
                                (f_join + w_join / sums) if w_join > 0.0 else 0.0
                            )
                        else:
                            n_join = w_join / mins
                elif not block.has_root:
                    n_other = max(other_max, g_delay)
                score = search.value_of(new_period, g_delay)
                scored.append(
                    (score, counts, kind, new_period,
                     n_t0, n_root, n_other, n_done, n_join)
                )
            scored.sort(key=lambda ch: ch[0])
            return block, scored

        def leaf_latency(n_t0, n_root, n_other, n_done, n_join) -> float:
            if is_forkjoin:
                return n_done + n_join
            if n_other == -_INF:
                return n_root
            return max(n_root, n_t0 + n_other)

        def assign_last_block(
            cur_period, t0, root_delay, other_max, done_max, join_time
        ) -> None:
            """Batch-score the leaves of the final block as one numpy scan.

            Every child of the last block is a complete assignment; the
            scalar path would recurse once per child just to compute the
            leaf latency and offer it.  Instead the child states are
            flattened into arrays, infeasible leaves are masked against
            the threshold caps, and the incumbent's sequential
            first-strict-improvement scan is replayed vectorized — the
            selected leaf (and final incumbent value) is exactly what the
            per-leaf recursion would have produced.
            """
            got = score_children(
                q - 1, cur_period, t0, root_delay, other_max,
                done_max, join_time,
            )
            if got is None:
                return
            block, scored = got
            if not scored:
                return
            search.nodes += len(scored)  # the leaves the recursion would visit
            if metered and search.nodes >= search.next_check:
                search.checkpoint()
            m = len(scored)
            periods = np.fromiter(
                (ch[3] for ch in scored), dtype=float, count=m
            )
            latencies = np.fromiter(
                (leaf_latency(ch[4], ch[5], ch[6], ch[7], ch[8])
                 for ch in scored),
                dtype=float, count=m,
            )
            values = periods if by_period else latencies
            masked = values
            infeasible = None
            if search.period_cap is not None:
                infeasible = periods > search.period_cap
            if search.latency_cap is not None:
                over = latencies > search.latency_cap
                infeasible = over if infeasible is None else infeasible | over
            if infeasible is not None:
                masked = np.where(infeasible, _INF, values)
            pick, best = last_improvement_scan(masked, search.best_value)
            if pick is None:
                return
            counts, kind = scored[pick][1], scored[pick][2]
            procs = pool.take(counts)
            pool.restore(counts)
            search.best_value = best
            search.best_groups = [
                *chosen, (tuple(sorted(block.stages)), procs, kind)
            ]

        # running state: cur_period; fork: t0/root_delay/other_max;
        # fork-join: t0/done_max/join_time
        def rec(
            i: int,
            cur_period: float,
            t0: float,
            root_delay: float,
            other_max: float,
            done_max: float,
            join_time: float,
        ) -> None:
            search.nodes += 1
            if metered and search.nodes >= search.next_check:
                search.checkpoint()
            if i == q:
                latency = leaf_latency(
                    t0, root_delay, other_max, done_max, join_time
                )
                search.offer(cur_period, latency, chosen)
                return
            rem_speed = pool.total_speed
            if pool.total_avail < q - i or rem_speed <= 0.0:
                return
            # admissible bounds over the unassigned suffix
            lb_period = max(
                cur_period,
                suf_load_max[i] / pool.best_repl_capacity()
                if not allow_dp
                else suf_load_max[i] / max(pool.best_repl_capacity(), rem_speed),
                suf_load_sum[i] / rem_speed,
            )
            if is_forkjoin:
                join_floor = join_time if join_time >= 0.0 else w_join / rem_speed
                # max completion >= t0 + sum of remaining branch loads / S
                # (mediant bound: disjoint groups' speed denominators total
                # at most S), which dominates the single-heaviest bound
                lb_latency = (
                    max(done_max, t0 + suf_branch_sum[i] / rem_speed)
                    + join_floor
                )
            else:
                partial = (
                    root_delay
                    if other_max == -_INF
                    else max(root_delay, t0 + other_max)
                )
                lb_latency = max(
                    partial, t0 + suf_nonroot_sum[i] / rem_speed
                    if suf_nonroot_sum[i] > 0.0
                    else partial,
                )
            if search.cut(lb_period, lb_latency if latency_objective else 0.0):
                search.pruned += 1
                return
            if i == q - 1:
                assign_last_block(
                    cur_period, t0, root_delay, other_max, done_max, join_time
                )
                return
            got = score_children(
                i, cur_period, t0, root_delay, other_max, done_max, join_time
            )
            if got is None:
                return
            block, scored = got
            for (_s, counts, kind, new_period,
                 n_t0, n_root, n_other, n_done, n_join) in scored:
                procs = pool.take(counts)
                chosen.append((tuple(sorted(block.stages)), procs, kind))
                rec(i + 1, new_period, n_t0, n_root, n_other, n_done, n_join)
                chosen.pop()
                pool.restore(counts)

        # the root block is assigned first, so t0/root_delay are pinned at
        # i = 1; before that they carry harmless optimistic floors
        rec(0, 0.0, t0_floor, 0.0, -_INF, 0.0, -1.0)

    # ----- Phase A: enumerate stage partitions (restricted growth)
    def grow(idx: int) -> None:
        search.nodes += 1
        if metered and search.nodes >= search.next_check:
            search.checkpoint()
        if idx == len(order):
            assign_blocks(blocks)
            return
        # bounds from partial block loads (loads only grow)
        max_load = max((b.load for b in blocks), default=0.0)
        lb_period = max(max_load / cap_full, total_work / total_speed)
        if is_forkjoin:
            max_branch = max((b.branch_load for b in blocks), default=0.0)
            lb_latency = t0_floor + max_branch / total_speed + w_join / total_speed
        else:
            max_nonroot = max(
                (b.load for b in blocks if not b.has_root), default=0.0
            )
            lb_latency = t0_floor + max_nonroot / total_speed
        if search.cut(lb_period, lb_latency if latency_objective else 0.0):
            search.pruned += 1
            return
        s = order[idx]
        w = works[s]
        f = overheads[s]
        is_branch = s != 0 and s != join_index
        for b in blocks:
            b.stages.append(s)
            b.load += w
            b.overhead += f
            if is_branch:
                b.branch_load += w
                b.branch_overhead += f
            if s == 0:
                b.has_root = True
            if s == join_index:
                b.has_join = True
            grow(idx + 1)
            if s == 0:
                b.has_root = False
            if s == join_index:
                b.has_join = False
            if is_branch:
                b.branch_load -= w
                b.branch_overhead -= f
            b.load -= w
            b.overhead -= f
            b.stages.pop()
        if len(blocks) < max_blocks:
            nb = _Block()
            nb.stages.append(s)
            nb.load = w
            nb.overhead = f
            if is_branch:
                nb.branch_load = w
                nb.branch_overhead = f
            nb.has_root = s == 0
            nb.has_join = s == join_index
            blocks.append(nb)
            grow(idx + 1)
            blocks.pop()

    grow(0)


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------
def root_lower_bound(spec: ProblemSpec, objective: Objective) -> float:
    """Root-relaxation lower bound on the optimal objective value.

    The same admissible bounds the engines apply at their root node,
    evaluated in closed form: disjoint groups' speed denominators total
    at most the platform speed ``S``, so any mapping has period and
    total-delay at least ``total_work / S``; a fork root stage runs on
    at most ``max_speed`` (``S`` with data-parallelism), and a fork-join
    adds the join stage's floor.  Valid for the bi-criteria problems too
    (thresholds only shrink the feasible set).
    """
    app, platform = spec.application, spec.platform
    total_speed = platform.total_speed
    if isinstance(app, ForkApplication):
        works = {stage.index: stage.work for stage in app.all_stages}
        if objective is Objective.PERIOD:
            return sum(works.values()) / total_speed
        t0_floor = works[0] / (
            total_speed if spec.allow_data_parallel else platform.fastest.speed
        )
        if isinstance(app, ForkJoinApplication):
            return t0_floor + works[app.n + 1] / total_speed
        return t0_floor
    return sum(stage.work for stage in app.stages) / total_speed


def optimal(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    context: SolveContext | None = None,
    budget: Budget | None = None,
) -> Solution:
    """Branch-and-bound exact optimum (same contract as the enumerator).

    Minimizes ``objective``; ``period_bound`` / ``latency_bound`` turn the
    call into the paper's bi-criteria problems.  ``context`` (a
    :class:`~repro.algorithms.solve_context.SolveContext` of this instance)
    shares the search tables across the repeated solves of a threshold
    sweep; the result is bit-identical with or without one.  Raises
    :class:`InfeasibleProblemError` when no valid mapping meets the bounds.

    ``budget`` (:class:`~repro.algorithms.budget.Budget`) caps the search
    effort.  A solve that completes within budget is exact
    (``meta["status"] == "optimal"``); an exhausted budget returns the
    best incumbent found so far with ``meta["status"] ==
    "budget_exhausted"`` plus ``lower_bound`` / ``gap`` /
    ``budget_reason`` meta fields — see :mod:`repro.algorithms.budget`
    for the anytime/determinism semantics.  If the budget runs out with
    no incumbent (infeasibly tight thresholds), raises
    :class:`~repro.algorithms.budget.BudgetExhaustedError`.
    """
    context = SolveContext(spec) if context is None else context.require(spec)
    meter = (
        BudgetMeter(budget)
        if budget is not None and budget.is_bounded else None
    )
    search = _Search(objective, period_bound, latency_bound, meter)
    _seed_incumbent(spec, search, context)
    app = spec.application
    status = "optimal"
    try:
        if isinstance(app, ForkApplication):
            _solve_fork_like(spec, search, context)
        else:
            _solve_pipeline(spec, search, context)
    except _BudgetStop:
        status = "budget_exhausted"
    mapping_cls = PipelineMapping
    if isinstance(app, ForkApplication):
        mapping_cls = (
            ForkJoinMapping if isinstance(app, ForkJoinApplication) else ForkMapping
        )
    if search.best_groups is None:
        if status == "budget_exhausted":
            raise BudgetExhaustedError(
                f"budget exhausted ({meter.reason}) after {search.nodes} "
                f"nodes with no feasible incumbent "
                f"(period<={period_bound}, latency<={latency_bound}): "
                "neither solved nor proven infeasible within this budget",
                nodes=search.nodes,
                reason=meter.reason,
            )
        raise InfeasibleProblemError(
            f"no valid mapping satisfies the bounds (period<={period_bound}, "
            f"latency<={latency_bound})"
        )
    mapping = mapping_cls(
        application=app,
        platform=spec.platform,
        groups=tuple(
            GroupAssignment(stages=s, processors=procs, kind=kind)
            for s, procs, kind in search.best_groups
        ),
    )
    assert is_valid(mapping, spec.allow_data_parallel)
    meta = {
        "algorithm": "bnb",
        "nodes": search.nodes,
        "pruned": search.pruned,
        "memo_hits": search.memo_hits,
        "status": status,
    }
    if status == "budget_exhausted":
        lower = root_lower_bound(spec, objective)
        meta["lower_bound"] = lower
        meta["budget"] = meter.budget.to_dict()
        meta["budget_reason"] = meter.reason
    solution = Solution.from_mapping(mapping, **meta)
    # verified wrapper contract: the incremental value must match the
    # authoritative cost model on the returned mapping (the incumbent is
    # always a fully-priced mapping, budgeted stop or not)
    value = solution.period if objective is Objective.PERIOD else solution.latency
    scale = max(1.0, abs(value))
    assert abs(value - search.best_value) <= 1e-6 * scale, (
        f"bnb incremental value {search.best_value} drifted from "
        f"evaluate() value {value}"
    )
    if status == "budget_exhausted":
        lower = meta["lower_bound"]
        solution.meta["gap"] = (
            (value - lower) / lower if lower > 0.0
            else (0.0 if value <= FLOAT_TOL else _INF)
        )
    return solution
