"""Exhaustive optimal solvers — the reference every algorithm is tested against.

:func:`optimal` is the exact ground-truth entry point.  By default it routes
through the pruned branch-and-bound engine (:mod:`repro.algorithms.bnb`),
which extends exact solving to roughly ``n = 9..10``, ``p = 8``; pass
``engine="enumerate"`` for the historical flat enumeration, kept as
:func:`optimal_enumerated` because its very naivety makes it the trusted
oracle for the engine-equivalence property tests.

The enumerators below yield *all* valid mappings of an instance
(Section 3.4 rules).  The space is exponential in both the number of stages
and the number of processors, so flat enumeration is only usable for tiny
instances (roughly ``n <= 6``, ``p <= 6``).

Enumeration notes
-----------------
* Pipeline groups are the compositions of ``[1..n]`` into intervals; fork
  groups are the set partitions of ``{0..n}``.
* Processor sets: every assignment of disjoint non-empty subsets to groups.
  Unused processors are allowed (the paper never requires using everybody).
* A data-parallel group on one processor has exactly the costs of a
  replicated group on that processor, so single-processor groups are only
  enumerated as replicated — this halves the kind space without losing any
  optimal value.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

from ..core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from ..core.costs import FLOAT_TOL, evaluate
from ..core.exceptions import InfeasibleProblemError, ReproError
from ..core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.validation import is_valid
from .budget import CHECK_EVERY, Budget, BudgetExhaustedError, BudgetMeter
from .problem import Objective, ProblemSpec, Solution

__all__ = [
    "compositions",
    "set_partitions",
    "processor_assignments",
    "enumerate_pipeline_mappings",
    "enumerate_fork_mappings",
    "enumerate_forkjoin_mappings",
    "enumerate_mappings",
    "optimal",
    "optimal_enumerated",
]


# ----------------------------------------------------------------------
# combinatorial generators
# ----------------------------------------------------------------------
def compositions(n: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All compositions of ``n`` into exactly ``parts`` positive integers."""
    if parts == 1:
        yield (n,)
        return
    for first in range(1, n - parts + 2):
        for rest in compositions(n - first, parts - 1):
            yield (first, *rest)


def set_partitions(items: Sequence[int], blocks: int) -> Iterator[list[list[int]]]:
    """All partitions of ``items`` into exactly ``blocks`` non-empty sets.

    Standard restricted-growth enumeration; blocks come out in order of
    their smallest element, so no partition is produced twice.
    """
    items = list(items)
    if blocks < 1 or blocks > len(items):
        return

    def recurse(idx: int, groups: list[list[int]]) -> Iterator[list[list[int]]]:
        remaining = len(items) - idx
        if idx == len(items):
            if len(groups) == blocks:
                yield [list(g) for g in groups]
            return
        # prune: we can open at most `remaining` new groups
        if len(groups) + remaining < blocks:
            return
        item = items[idx]
        for group in groups:
            group.append(item)
            yield from recurse(idx + 1, groups)
            group.pop()
        if len(groups) < blocks:
            groups.append([item])
            yield from recurse(idx + 1, groups)
            groups.pop()

    yield from recurse(0, [])


def processor_assignments(
    p: int, groups: int
) -> Iterator[tuple[tuple[int, ...], ...]]:
    """All ways to give each of ``groups`` a non-empty set of processors.

    Sets are disjoint; processors may remain unused.  Implemented as a
    coloring of processors with ``{unused, 1..groups}`` filtered to
    assignments where every group is non-empty.
    """
    if groups > p:
        return
    for coloring in itertools.product(range(groups + 1), repeat=p):
        sets: list[list[int]] = [[] for _ in range(groups)]
        for proc, color in enumerate(coloring):
            if color > 0:
                sets[color - 1].append(proc)
        if all(sets):
            yield tuple(tuple(s) for s in sets)


def _kind_choices(
    group_sizes: Sequence[int],
    proc_counts: Sequence[int],
    allow_dp: bool,
) -> Iterator[tuple[AssignmentKind, ...]]:
    """Kind vectors: replicated always; data-parallel only when it can differ."""
    options: list[tuple[AssignmentKind, ...]] = []
    for size, k in zip(group_sizes, proc_counts):
        if allow_dp and k >= 2:
            options.append(
                (AssignmentKind.REPLICATED, AssignmentKind.DATA_PARALLEL)
            )
        else:
            options.append((AssignmentKind.REPLICATED,))
        del size
    yield from itertools.product(*options)


# ----------------------------------------------------------------------
# mapping enumerators
# ----------------------------------------------------------------------
def enumerate_pipeline_mappings(
    application: PipelineApplication,
    platform,
    allow_data_parallel: bool,
) -> Iterator[PipelineMapping]:
    """All valid pipeline mappings (Section 3.4 rules)."""
    n, p = application.n, platform.p
    for q in range(1, min(n, p) + 1):
        for comp in compositions(n, q):
            # stage intervals, 1-based
            intervals: list[tuple[int, ...]] = []
            start = 1
            for length in comp:
                intervals.append(tuple(range(start, start + length)))
                start += length
            for procs in processor_assignments(p, q):
                counts = [len(s) for s in procs]
                for kinds in _kind_choices(comp, counts, allow_data_parallel):
                    groups = tuple(
                        GroupAssignment(stages=itv, processors=ps, kind=kind)
                        for itv, ps, kind in zip(intervals, procs, kinds)
                    )
                    mapping = PipelineMapping(
                        application=application, platform=platform, groups=groups
                    )
                    if is_valid(mapping, allow_data_parallel):
                        yield mapping


def _enumerate_fork_like(
    application,
    platform,
    allow_data_parallel: bool,
    mapping_cls,
    stage_indices: Sequence[int],
) -> Iterator:
    p = platform.p
    n_stages = len(stage_indices)
    for q in range(1, min(n_stages, p) + 1):
        for partition in set_partitions(stage_indices, q):
            stage_sets = [tuple(sorted(block)) for block in partition]
            for procs in processor_assignments(p, q):
                counts = [len(s) for s in procs]
                sizes = [len(s) for s in stage_sets]
                for kinds in _kind_choices(sizes, counts, allow_data_parallel):
                    groups = tuple(
                        GroupAssignment(stages=ss, processors=ps, kind=kind)
                        for ss, ps, kind in zip(stage_sets, procs, kinds)
                    )
                    mapping = mapping_cls(
                        application=application, platform=platform, groups=groups
                    )
                    if is_valid(mapping, allow_data_parallel):
                        yield mapping


def enumerate_fork_mappings(
    application: ForkApplication,
    platform,
    allow_data_parallel: bool,
) -> Iterator[ForkMapping]:
    """All valid fork mappings."""
    yield from _enumerate_fork_like(
        application,
        platform,
        allow_data_parallel,
        ForkMapping,
        range(application.n + 1),
    )


def enumerate_forkjoin_mappings(
    application: ForkJoinApplication,
    platform,
    allow_data_parallel: bool,
) -> Iterator[ForkJoinMapping]:
    """All valid fork-join mappings."""
    yield from _enumerate_fork_like(
        application,
        platform,
        allow_data_parallel,
        ForkJoinMapping,
        range(application.n + 2),
    )


def enumerate_mappings(spec: ProblemSpec) -> Iterator:
    """Dispatch on the graph kind of the spec."""
    app = spec.application
    if isinstance(app, ForkJoinApplication):
        yield from enumerate_forkjoin_mappings(
            app, spec.platform, spec.allow_data_parallel
        )
    elif isinstance(app, ForkApplication):
        yield from enumerate_fork_mappings(
            app, spec.platform, spec.allow_data_parallel
        )
    else:
        yield from enumerate_pipeline_mappings(
            app, spec.platform, spec.allow_data_parallel
        )


# ----------------------------------------------------------------------
# optimizer
# ----------------------------------------------------------------------
def optimal(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    engine: str = "bnb",
    context=None,
    budget: Budget | None = None,
) -> Solution:
    """Exact optimal solution, routed through the selected engine.

    ``period_bound`` / ``latency_bound`` turn the call into the bi-criteria
    problems of the paper: minimize the objective subject to the other
    criterion not exceeding its bound.

    ``engine`` selects the search strategy:

    * ``"bnb"`` (default) — the pruned branch-and-bound engine of
      :mod:`repro.algorithms.bnb`; exact, and typically orders of magnitude
      faster (usable to roughly ``n = 9..10``, ``p = 8``);
    * ``"enumerate"`` — the historical flat enumeration
      (:func:`optimal_enumerated`), kept as the oracle for the equivalence
      property tests and the engine benchmarks;
    * ``"milp"`` — the mixed-integer programming formulation of
      :mod:`repro.algorithms.milp` over an optional backend (PuLP/CBC or
      SciPy/HiGHS), closing instances well past the combinatorial
      engines (roughly ``n = 20..30``).

    ``context`` (a :class:`~repro.algorithms.solve_context.SolveContext`
    built for this instance) lets the repeated solves of a bi-criteria
    threshold sweep share per-instance state — search tables for ``bnb``,
    the priced candidate list for ``enumerate``.  Results are
    bit-identical with or without a context.

    ``budget`` (:class:`~repro.algorithms.budget.Budget`) caps the search
    effort of either engine; see :mod:`repro.algorithms.budget` for the
    anytime/incumbent semantics on exhaustion.

    Raises :class:`InfeasibleProblemError` when no valid mapping meets the
    bounds.
    """
    if engine == "bnb":
        from .bnb import optimal as bnb_optimal

        return bnb_optimal(
            spec, objective, period_bound, latency_bound, context=context,
            budget=budget,
        )
    if engine == "milp":
        from .milp import optimal as milp_optimal

        return milp_optimal(
            spec, objective, period_bound, latency_bound, context=context,
            budget=budget,
        )
    if engine != "enumerate":
        raise ReproError(f"unknown exact engine {engine!r}")
    return optimal_enumerated(
        spec, objective, period_bound, latency_bound, context=context,
        budget=budget,
    )


#: Candidate-cache cap for context-backed enumeration.  Beyond this many
#: valid mappings the cache would dominate memory for marginal sweep wins,
#: so the context falls back to cold re-enumeration.
_MAX_ENUM_CACHE = 200_000


def _enumerated_candidates(spec: ProblemSpec, context):
    """``(candidates, replayed)``: every valid mapping, in oracle order.

    ``candidates`` yields ``(groups, period, latency)`` triples;
    ``replayed`` is True when they come from a context's priced cache
    (each consumed candidate then counts as one memo hit — a mapping
    construction and pricing avoided).  With a context the list is built
    once and replayed by later threshold solves; without one (or past
    :data:`_MAX_ENUM_CACHE` candidates) it is a streaming generator,
    exactly the historical behaviour.
    """

    def generate():
        for mapping in enumerate_mappings(spec):
            period, latency = evaluate(mapping)
            yield mapping.groups, period, latency

    if context is None:
        return generate(), False
    state = context.table("enumerate")
    if state.get("too_big"):
        return generate(), False
    candidates = state.get("candidates")
    if candidates is not None:
        return candidates, True
    generator = generate()
    candidates = []
    for item in generator:
        candidates.append(item)
        if len(candidates) > _MAX_ENUM_CACHE:
            # too large to keep: this call streams the already-priced
            # prefix plus the live generator's remainder; later calls
            # enumerate cold
            state["too_big"] = True
            return itertools.chain(candidates, generator), False
    state["candidates"] = candidates
    return candidates, False


def optimal_enumerated(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    context=None,
    budget: Budget | None = None,
) -> Solution:
    """Flat exhaustive enumeration (tiny instances only).

    Evaluates every valid mapping from scratch; exponential in both ``n``
    and ``p``.  This is the trusted oracle the branch-and-bound engine is
    property-tested against.  ``context`` caches the priced candidate
    list so a threshold sweep enumerates once and filters per threshold;
    candidate order (hence tie-breaking) is identical either way.

    ``budget`` counts each priced candidate as one search node; on
    exhaustion the scan stops and the best candidate seen so far is
    returned with ``status="budget_exhausted"`` (candidate order is
    fixed, so ``max_nodes`` stops are deterministic here too).
    """
    if context is not None:
        context.require(spec)
    meter = (
        BudgetMeter(budget)
        if budget is not None and budget.is_bounded else None
    )
    app, platform = spec.application, spec.platform
    if isinstance(app, ForkJoinApplication):
        mapping_cls = ForkJoinMapping
    elif isinstance(app, ForkApplication):
        mapping_cls = ForkMapping
    else:
        mapping_cls = PipelineMapping
    best: tuple | None = None
    best_value = float("inf")
    nodes = 0
    next_check = CHECK_EVERY if meter is not None else float("inf")
    exhausted = False
    candidates, replayed = _enumerated_candidates(spec, context)
    for groups, period, latency in candidates:
        nodes += 1
        if nodes >= next_check:
            next_check = nodes + CHECK_EVERY
            if meter.exhausted(nodes):
                exhausted = True
                break
        if period_bound is not None and period > period_bound * (1 + FLOAT_TOL):
            continue
        if latency_bound is not None and latency > latency_bound * (1 + FLOAT_TOL):
            continue
        value = period if objective is Objective.PERIOD else latency
        if value < best_value - FLOAT_TOL:
            best_value = value
            best = (groups, period, latency)
    if best is None:
        if exhausted:
            raise BudgetExhaustedError(
                f"budget exhausted ({meter.reason}) after {nodes} candidates "
                f"with no feasible incumbent (period<={period_bound}, "
                f"latency<={latency_bound}): neither solved nor proven "
                "infeasible within this budget",
                nodes=nodes,
                reason=meter.reason,
            )
        raise InfeasibleProblemError(
            f"no valid mapping satisfies the bounds (period<={period_bound}, "
            f"latency<={latency_bound})"
        )
    groups, period, latency = best
    mapping = mapping_cls(
        application=app, platform=platform, groups=groups
    )
    meta: dict = {
        "algorithm": "brute-force",
        "status": "optimal",
        # every candidate priced is one search node; a replayed context
        # cache served all of them as memo hits
        "nodes": nodes,
        "memo_hits": nodes if replayed else 0,
    }
    if exhausted:
        from .bnb import root_lower_bound

        lower = root_lower_bound(spec, objective)
        value = period if objective is Objective.PERIOD else latency
        meta.update(
            status="budget_exhausted",
            lower_bound=lower,
            gap=(value - lower) / lower if lower > 0.0 else 0.0,
            budget=meter.budget.to_dict(),
            budget_reason=meter.reason,
        )
    return Solution(
        mapping=mapping, period=period, latency=latency,
        meta=meta,
    )
