"""Communication-aware interval mapping on homogeneous platforms.

The paper's conclusion proposes, as future work, to "select some of the
polynomial instances of the problem and try to assess the complexity when
adding some communication parameters".  This module does exactly that for
the most tractable instance: pipelines on **homogeneous platforms with a
uniform interconnect**, mapped as plain interval mappings (one interval per
processor — no replication or data-parallelism), under the Equation 1-2
cost model of Section 3.3.

With identical processors (speed ``s``) and identical links (bandwidth
``b``), the cycle time of interval ``[i..j]`` is independent of which
processor runs it:

* strict one-port:   ``c(i,j) = d_{i-1}/b + W(i,j)/s + d_j/b``
* overlapped multi-port:  ``c(i,j) = max(d_{i-1}/b, W(i,j)/s, d_j/b)``

(boundary transfers with the outside world included; intervals on the same
processor never occur since processors are distinct).  Hence:

* **period** minimization = partition ``[1..n]`` into at most ``p``
  intervals minimizing ``max c`` — an ``O(n^2 p)`` interval DP
  (:func:`min_period_comm`), a direct generalization of chains-to-chains
  (which it reduces to when all data sizes are zero) and of Subhlok &
  Vondran's dynamic programming;
* **latency** minimization is trivial: merging intervals removes
  inter-processor transfers, so the whole pipeline on one processor is
  optimal (:func:`min_latency_comm`);
* **bi-criteria**: ``min latency s.t. period <= K`` is an ``O(n^2 p)``
  prefix DP (:func:`min_latency_given_period_comm`); the converse is an
  exact candidate search (:func:`min_period_given_latency_comm`).

Heterogeneous platforms make even the period problem NP-hard in general
(it contains Theorem 9's problem when ``b = inf``); no algorithm here
pretends otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.application import PipelineApplication
from ..core.comm_costs import (
    CommunicationModel,
    OnePortInterval,
    pipeline_latency_with_comm,
    pipeline_period_with_comm,
)
from ..core.costs import FLOAT_TOL
from ..core.exceptions import (
    InfeasibleProblemError,
    InvalidPlatformError,
    UnsupportedVariantError,
)
from ..core.platform import Platform
from .search import smallest_feasible, unique_sorted

__all__ = [
    "CommSolution",
    "min_period_comm",
    "min_latency_comm",
    "min_latency_given_period_comm",
    "min_period_given_latency_comm",
]


@dataclass(frozen=True)
class CommSolution:
    """An interval mapping priced under the communication model."""

    intervals: tuple[OnePortInterval, ...]
    period: float
    latency: float
    model: CommunicationModel


def _uniform_parameters(platform: Platform) -> tuple[float, float]:
    """(speed, bandwidth) after checking the homogeneity requirements."""
    if not platform.is_homogeneous:
        raise UnsupportedVariantError(
            "the communication-aware algorithms require a homogeneous "
            "platform (heterogeneous versions contain the NP-hard "
            "Theorem 9 problem)"
        )
    inter = platform.interconnect
    if inter is None:
        raise InvalidPlatformError(
            "platform has no interconnect; build it with a bandwidth, e.g. "
            "Platform.homogeneous(p, bandwidth=...)"
        )
    bandwidths = {
        *(b for row in inter.bandwidth for b in row),
        *inter.in_bandwidths,
        *inter.out_bandwidths,
    }
    if max(bandwidths) - min(bandwidths) > FLOAT_TOL * max(bandwidths):
        raise UnsupportedVariantError(
            "the communication-aware algorithms require a uniform "
            "interconnect (single bandwidth)"
        )
    return platform.processors[0].speed, next(iter(bandwidths))


def _interval_cost_table(
    app: PipelineApplication,
    s: float,
    b: float,
    model: CommunicationModel,
) -> list[list[float]]:
    """``c[i][j]`` = cycle time of stage interval ``i..j`` (0-based)."""
    n = app.n
    prefix = [0.0] * (n + 1)
    for k, w in enumerate(app.works):
        prefix[k + 1] = prefix[k] + w
    cost = [[0.0] * n for _ in range(n)]
    for i in range(n):
        recv = app.stages[i].input_size / b
        for j in range(i, n):
            compute = (prefix[j + 1] - prefix[i]) / s
            send = app.stages[j].output_size / b
            if model is CommunicationModel.ONE_PORT_STRICT:
                cost[i][j] = recv + compute + send
            else:
                cost[i][j] = max(recv, compute, send)
    return cost


def _solution(app, intervals, platform, model) -> CommSolution:
    intervals = tuple(intervals)
    return CommSolution(
        intervals=intervals,
        period=pipeline_period_with_comm(app, platform, intervals, model),
        latency=pipeline_latency_with_comm(app, platform, intervals, model),
        model=model,
    )


def min_period_comm(
    app: PipelineApplication,
    platform: Platform,
    model: CommunicationModel = CommunicationModel.ONE_PORT_STRICT,
) -> CommSolution:
    """Optimal-period interval mapping under communication costs.

    ``B[q][i]`` = min over partitions of stages ``1..i`` into exactly ``q``
    intervals of the max cycle time; answer = min over ``q <= p``.
    """
    s, b = _uniform_parameters(platform)
    n, p = app.n, platform.p
    cost = _interval_cost_table(app, s, b, model)
    INF = float("inf")
    q_max = min(n, p)
    B = [[INF] * (n + 1) for _ in range(q_max + 1)]
    back = [[0] * (n + 1) for _ in range(q_max + 1)]
    B[0][0] = 0.0
    for q in range(1, q_max + 1):
        for i in range(1, n + 1):
            best, arg = INF, 0
            for k in range(q - 1, i):
                prev = B[q - 1][k]
                if prev == INF:
                    continue
                cand = max(prev, cost[k][i - 1])
                if cand < best - FLOAT_TOL:
                    best, arg = cand, k
            B[q][i] = best
            back[q][i] = arg
    best_q = min(range(1, q_max + 1), key=lambda q: B[q][n])
    intervals: list[OnePortInterval] = []
    i, q = n, best_q
    while q > 0:
        k = back[q][i]
        intervals.append(OnePortInterval(start=k + 1, end=i, processor=q - 1))
        i, q = k, q - 1
    intervals.reverse()
    return _solution(app, intervals, platform, model)


def min_latency_comm(
    app: PipelineApplication,
    platform: Platform,
    model: CommunicationModel = CommunicationModel.ONE_PORT_STRICT,
) -> CommSolution:
    """Optimal-latency mapping: the whole pipeline on one processor.

    Splitting an interval replaces nothing and adds two transfer terms
    (strict model) or cannot reduce any term below the merged maximum
    (overlap model), so one interval is always optimal.
    """
    _uniform_parameters(platform)
    return _solution(
        app, [OnePortInterval(start=1, end=app.n, processor=0)], platform, model
    )


def min_latency_given_period_comm(
    app: PipelineApplication,
    platform: Platform,
    period_bound: float,
    model: CommunicationModel = CommunicationModel.ONE_PORT_STRICT,
) -> CommSolution:
    """Bi-criteria: minimal total latency with every cycle time <= bound.

    ``G[i][q]`` = min total latency covering stages ``1..i`` with ``q``
    intervals of cycle time <= K.
    """
    s, b = _uniform_parameters(platform)
    n, p = app.n, platform.p
    cost = _interval_cost_table(app, s, b, model)
    K = period_bound * (1 + FLOAT_TOL)
    INF = float("inf")
    q_max = min(n, p)
    G = [[INF] * (q_max + 1) for _ in range(n + 1)]
    back = [[0] * (q_max + 1) for _ in range(n + 1)]
    G[0][0] = 0.0
    for i in range(1, n + 1):
        for q in range(1, q_max + 1):
            best, arg = INF, 0
            for k in range(q - 1, i):
                if cost[k][i - 1] > K or G[k][q - 1] == INF:
                    continue
                cand = G[k][q - 1] + cost[k][i - 1]
                if cand < best - FLOAT_TOL:
                    best, arg = cand, k
            G[i][q] = best
            back[i][q] = arg
    candidates = [(G[n][q], q) for q in range(1, q_max + 1) if G[n][q] < INF]
    if not candidates:
        raise InfeasibleProblemError(
            f"no interval mapping achieves period <= {period_bound}"
        )
    _, best_q = min(candidates)
    intervals: list[OnePortInterval] = []
    i, q = n, best_q
    while q > 0:
        k = back[i][q]
        intervals.append(OnePortInterval(start=k + 1, end=i, processor=q - 1))
        i, q = k, q - 1
    intervals.reverse()
    return _solution(app, intervals, platform, model)


def min_period_given_latency_comm(
    app: PipelineApplication,
    platform: Platform,
    latency_bound: float,
    model: CommunicationModel = CommunicationModel.ONE_PORT_STRICT,
) -> CommSolution:
    """Bi-criteria converse: exact candidate search over interval costs."""
    s, b = _uniform_parameters(platform)
    cost = _interval_cost_table(app, s, b, model)
    candidates = unique_sorted(
        cost[i][j] for i in range(app.n) for j in range(i, app.n)
    )

    def feasible(period: float) -> bool:
        try:
            sol = min_latency_given_period_comm(app, platform, period, model)
        except InfeasibleProblemError:
            return False
        return sol.latency <= latency_bound * (1 + FLOAT_TOL)

    period = smallest_feasible(candidates, feasible, what="period")
    return min_latency_given_period_comm(app, platform, period, model)
