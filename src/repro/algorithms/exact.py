"""Exact solvers for the NP-hard variants of Table 1.

These complement :mod:`repro.algorithms.brute_force` (which enumerates every
valid mapping and only scales to toy sizes) with *structured* exponential
searches that exploit the exchange arguments of the paper:

* :func:`pipeline_period_exact_blocks` — heterogeneous pipeline, period,
  no data-parallelism (the Theorem 9 NP-hard problem).  Enumerates the
  ``2^{n-1}`` interval partitions; for each, the processor side collapses:
  there is an optimal solution whose replication groups are consecutive
  blocks of the speed-sorted processors (unused processors slowest), and for
  fixed blocks the loads are matched to block capacities sorted-to-sorted.
* :func:`makespan_partition_exact` — exact ``P || Cmax`` branch-and-bound,
  the combinatorial core of the Theorem 12 fork-latency problem.
* :func:`fork_latency_exact_hom_platform` — heterogeneous fork on a
  homogeneous platform, latency, no data-parallelism: equals
  ``(w0 + Cmax) / s`` where ``Cmax`` is the optimal ``P || Cmax`` makespan
  of the branch works over ``p`` machines.
* thin guards around brute force for every other variant
  (:func:`pipeline_exact`, :func:`fork_exact`, :func:`forkjoin_exact`).

All of these have exponential worst cases — that is Table 1's point — but
the structured ones handle ``n, p`` up to ~12-14 comfortably, enough to
measure the scaling gap against the polynomial entries.
"""

from __future__ import annotations

from ..core.application import ForkApplication, PipelineApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import InfeasibleProblemError, ReproError
from ..core.mapping import (
    AssignmentKind,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from ..core.platform import Platform
from .brute_force import compositions, optimal as brute_optimal
from .budget import Budget
from .problem import Objective, ProblemSpec, Solution

__all__ = [
    "pipeline_exact",
    "fork_exact",
    "forkjoin_exact",
    "pipeline_period_exact_blocks",
    "makespan_partition_exact",
    "fork_latency_exact_hom_platform",
]

#: Size guards for the generic exact wrappers, per engine.  The pruned
#: branch-and-bound engine reaches noticeably further than flat enumeration,
#: and the MILP engine (optional backend) pushes the closed frontier to a
#: few tens of stages/processors.
_ENGINE_LIMITS = {"enumerate": 7, "bnb": 10, "milp": 30}


def _guard(n_stages: int, p: int, engine: str = "bnb",
           budget: Budget | None = None) -> None:
    if engine not in _ENGINE_LIMITS:
        raise ReproError(
            f"unknown exact engine {engine!r} (choose from "
            f"{sorted(_ENGINE_LIMITS)})"
        )
    if budget is not None and budget.is_bounded:
        # a bounded budget replaces the size guard: the solve terminates
        # by construction and returns an anytime incumbent on exhaustion
        return
    limit = _ENGINE_LIMITS[engine]
    if n_stages > limit or p > limit:
        raise ReproError(
            f"exact solving with engine {engine!r} is limited to {limit} "
            f"stages/processors (got n={n_stages}, p={p}); use the structured "
            "exact solvers or repro.heuristics for larger instances"
        )


def pipeline_exact(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    engine: str = "bnb",
    context=None,
    budget: Budget | None = None,
) -> Solution:
    """Generic exact pipeline solution (any variant, small sizes).

    A bounded ``budget`` lifts the size guard: the solve terminates by
    construction, returning an anytime incumbent on exhaustion.
    """
    _guard(spec.application.n, spec.platform.p, engine, budget)
    return brute_optimal(
        spec, objective, period_bound, latency_bound, engine, context=context,
        budget=budget,
    )


def fork_exact(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    engine: str = "bnb",
    context=None,
    budget: Budget | None = None,
) -> Solution:
    """Generic exact fork solution (any variant, small sizes).

    A bounded ``budget`` lifts the size guard: the solve terminates by
    construction, returning an anytime incumbent on exhaustion.
    """
    _guard(spec.application.n + 1, spec.platform.p, engine, budget)
    return brute_optimal(
        spec, objective, period_bound, latency_bound, engine, context=context,
        budget=budget,
    )


def forkjoin_exact(
    spec: ProblemSpec,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    engine: str = "bnb",
    context=None,
    budget: Budget | None = None,
) -> Solution:
    """Generic exact fork-join solution (any variant, small sizes).

    A bounded ``budget`` lifts the size guard: the solve terminates by
    construction, returning an anytime incumbent on exhaustion.
    """
    _guard(spec.application.n + 2, spec.platform.p, engine, budget)
    return brute_optimal(
        spec, objective, period_bound, latency_bound, engine, context=context,
        budget=budget,
    )


# ======================================================================
# Theorem 9 problem: heterogeneous pipeline, period, no data-parallelism
# ======================================================================
def pipeline_period_exact_blocks(
    app: PipelineApplication, platform: Platform
) -> Solution:
    """Exact period for a heterogeneous pipeline without data-parallelism.

    Search space after the exchange arguments:

    * stage side — all ``2^{n-1}`` partitions into ``q`` intervals
      (``q <= min(n, p)``), yielding interval loads;
    * processor side — consecutive blocks over speed-*descending*
      processors (a block's replication capacity is
      ``size * min_speed = size * last_speed``); unused processors are the
      slowest (any other solution can be exchanged into this form without
      increasing the period);
    * matching — for fixed loads and blocks, pairing sorted-descending
      loads with sorted-descending capacities minimizes the max ratio.

    Pruning: a partition is abandoned when its largest load divided by the
    best single-block capacity already exceeds the incumbent.
    """
    n, p = app.n, platform.p
    works = app.works
    order = platform.sorted_by_speed(descending=True)
    speeds_desc = [proc.speed for proc in order]

    # best capacity of a block of size k (a prefix block is fastest)
    best_cap = [0.0] * (p + 1)
    for k in range(1, p + 1):
        best_cap[k] = max(best_cap[k - 1], k * speeds_desc[k - 1])
    max_cap = best_cap[p]

    prefix = [0.0] * (n + 1)
    for i, w in enumerate(works):
        prefix[i + 1] = prefix[i] + w

    best_value = float("inf")
    best_plan: tuple | None = None

    def block_compositions(q: int):
        """Compositions (k_1..k_q) with sum <= p (used processors prefix)."""
        for used in range(q, p + 1):
            yield from compositions(used, q)

    for q in range(1, min(n, p) + 1):
        for comp in compositions(n, q):
            # interval loads, in stage order
            loads = []
            start = 0
            for length in comp:
                loads.append(prefix[start + length] - prefix[start])
                start += length
            max_load = max(loads)
            if max_load / max_cap >= best_value - FLOAT_TOL:
                continue  # even the best block cannot serve the heaviest load
            loads_sorted = sorted(range(q), key=lambda r: -loads[r])
            for sizes in block_compositions(q):
                # capacities of consecutive descending blocks
                caps = []
                pos = 0
                for k in sizes:
                    caps.append((k * speeds_desc[pos + k - 1], pos, k))
                    pos += k
                caps.sort(key=lambda c: -c[0])
                value = max(
                    loads[r] / caps[t][0] for t, r in enumerate(loads_sorted)
                )
                if value < best_value - FLOAT_TOL:
                    best_value = value
                    best_plan = (comp, loads_sorted, caps)

    assert best_plan is not None
    comp, loads_sorted, caps = best_plan
    # rebuild stage intervals
    intervals = []
    start = 1
    for length in comp:
        intervals.append(tuple(range(start, start + length)))
        start += length
    # assign each load its block
    assignment: dict[int, tuple[int, int]] = {}
    for t, r in enumerate(loads_sorted):
        _, pos, k = caps[t]
        assignment[r] = (pos, k)
    groups = []
    for r, stages in enumerate(intervals):
        pos, k = assignment[r]
        procs = tuple(sorted(order[t].index for t in range(pos, pos + k)))
        groups.append(
            GroupAssignment(
                stages=stages, processors=procs, kind=AssignmentKind.REPLICATED
            )
        )
    mapping = PipelineMapping(
        application=app, platform=platform, groups=tuple(groups)
    )
    return Solution.from_mapping(mapping, algorithm="exact-blocks")


# ======================================================================
# Theorem 12 problem: P || Cmax and the het-fork latency on hom platforms
# ======================================================================
def makespan_partition_exact(
    works: list[float], machines: int
) -> tuple[float, list[list[int]]]:
    """Exact ``P || Cmax``: partition ``works`` over identical machines.

    Branch-and-bound over items sorted descending, with the classic bounds
    (average load, largest item, incumbent) and empty-machine symmetry
    breaking.  Returns ``(makespan, assignment)`` where ``assignment[m]``
    lists item indices of machine ``m``.  Practical up to ~20 items.
    """
    if machines < 1:
        raise ReproError("need at least one machine")
    items = sorted(range(len(works)), key=lambda i: -works[i])
    total = sum(works)
    lower = max(total / machines, max(works, default=0.0))

    best_value = float("inf")
    best_assign: list[list[int]] | None = None
    loads = [0.0] * machines
    assign: list[list[int]] = [[] for _ in range(machines)]

    def recurse(idx: int, remaining: float) -> None:
        nonlocal best_value, best_assign
        if idx == len(items):
            value = max(loads) if loads else 0.0
            if value < best_value - FLOAT_TOL:
                best_value = value
                best_assign = [list(m) for m in assign]
            return
        current_max = max(loads)
        # bound: even spreading the rest perfectly cannot beat the incumbent
        bound = max(current_max, (sum(loads) + remaining) / machines)
        if bound >= best_value - FLOAT_TOL:
            return
        item = items[idx]
        seen_empty = False
        for m in range(machines):
            if loads[m] == 0.0:
                if seen_empty:
                    continue  # symmetry: all empty machines are equivalent
                seen_empty = True
            if loads[m] + works[item] >= best_value - FLOAT_TOL:
                continue
            loads[m] += works[item]
            assign[m].append(item)
            recurse(idx + 1, remaining - works[item])
            assign[m].pop()
            loads[m] -= works[item]

    recurse(0, total)
    if best_assign is None:  # pragma: no cover - max(works) always feasible
        raise InfeasibleProblemError("makespan search failed")
    del lower
    return best_value, best_assign


def fork_latency_exact_hom_platform(
    app: ForkApplication, platform: Platform
) -> Solution:
    """Exact latency of a (heterogeneous) fork on a homogeneous platform,
    without data-parallelism — the Theorem 12 NP-hard problem.

    On identical processors the latency of any no-data-parallel mapping is
    ``(w0 + max_group branch_load) / s`` (the root group pays its branches
    after ``w0``; every other group starts at ``w0/s``), so the problem is
    exactly ``P || Cmax`` on the branch works with ``p`` machines — one of
    which also hosts the root.
    """
    if not platform.is_homogeneous:
        raise ReproError("this exact solver requires a homogeneous platform")
    s = platform.processors[0].speed
    works = list(app.branch_works)
    cmax, assignment = makespan_partition_exact(works, platform.p)
    groups = []
    used_proc = 0
    root_placed = False
    for m, item_indices in enumerate(assignment):
        if not item_indices and (root_placed or m > 0):
            continue
        stages = sorted(i + 1 for i in item_indices)
        if not root_placed:
            stages = [0, *stages]
            root_placed = True
        groups.append(
            GroupAssignment(
                stages=tuple(stages),
                processors=(used_proc,),
                kind=AssignmentKind.REPLICATED,
            )
        )
        used_proc += 1
    mapping = ForkMapping(
        application=app, platform=platform, groups=tuple(groups)
    )
    solution = Solution.from_mapping(mapping, algorithm="exact-pcmax")
    expected = (app.root.work + cmax) / s
    if abs(solution.latency - expected) > FLOAT_TOL * max(1.0, expected):
        raise ReproError(
            f"internal: latency mismatch {solution.latency} vs {expected}"
        )
    return solution
