"""Mapping algorithms: one solver per theorem of the paper, plus exhaustive
and structured exact references for the NP-hard entries.

Most users should go through :func:`repro.algorithms.solve` (re-exported at
the package root), which consults the Table 1 registry and dispatches to the
right polynomial algorithm — or refuses, by raising
:class:`~repro.algorithms.registry.NPHardError`, when the instance is
NP-hard.
"""

from . import (
    bnb,
    brute_force,
    budget,
    exact,
    fork_het_platform,
    fork_hom_platform,
    forkjoin,
    lemmas,
    milp,
    pipeline_het_platform,
    pipeline_hom_platform,
)
from .budget import Budget, BudgetExhaustedError
from .problem import GraphKind, Objective, ProblemSpec, Solution
from .registry import (
    TABLE,
    ComplexityEntry,
    Criterion,
    NPHardError,
    classify,
    solve,
)
from .solve_context import ContextCache, SolveContext

__all__ = [
    "Budget",
    "BudgetExhaustedError",
    "GraphKind",
    "Objective",
    "ProblemSpec",
    "Solution",
    "SolveContext",
    "ContextCache",
    "TABLE",
    "ComplexityEntry",
    "Criterion",
    "NPHardError",
    "classify",
    "solve",
    "bnb",
    "brute_force",
    "budget",
    "exact",
    "lemmas",
    "milp",
    "pipeline_hom_platform",
    "pipeline_het_platform",
    "fork_hom_platform",
    "fork_het_platform",
    "forkjoin",
]
