"""Fork on **homogeneous platforms** — Theorems 10 and 11.

* :func:`min_period` (Thm 10) — replicating *all* stages (root included) as
  one group over all processors reaches the aggregate-capacity lower bound
  :math:`(w_0 + \\sum w_i)/(p s)`; optimal for any fork, with or without
  data-parallelism.
* :func:`min_latency` / :func:`min_latency_given_period` /
  :func:`min_period_given_latency` (Thm 11) — polynomial for a
  **homogeneous fork** (equal branch works; the root may differ).  The
  optimal mapping is described by: the root group (holding :math:`S_0` and
  ``n0`` branches, replicated — or :math:`\\{S_0\\}` alone, possibly
  data-parallel), plus the remaining branches either in one data-parallel
  group (when data-parallelism is allowed: a single group dominates any
  split for both criteria on identical processors) or partitioned into
  replicated groups (found by a knapsack-style DP under the period bound).

For a **heterogeneous fork** the latency problem is NP-hard even here
(Theorem 12): the latency functions raise
:class:`UnsupportedVariantError`; use :mod:`repro.algorithms.exact`.
"""

from __future__ import annotations

from ..core.application import ForkApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import (
    InfeasibleProblemError,
    UnsupportedVariantError,
)
from ..core.mapping import AssignmentKind, ForkMapping, GroupAssignment
from ..core.platform import Platform
from .problem import Solution
from .search import ceil_div_tol, smallest_feasible, unique_sorted

__all__ = [
    "min_period",
    "min_latency",
    "min_latency_given_period",
    "min_period_given_latency",
]

INF = float("inf")


def _require_homogeneous_platform(platform: Platform) -> float:
    if not platform.is_homogeneous:
        raise UnsupportedVariantError(
            "this module implements the Homogeneous-platform fork algorithms "
            "(Theorems 10-11); use repro.algorithms.fork_het_platform (hom. "
            "fork) or repro.algorithms.exact (het. fork)"
        )
    return platform.processors[0].speed


def _require_homogeneous_fork(app: ForkApplication) -> tuple[float, float]:
    if not app.is_homogeneous:
        raise UnsupportedVariantError(
            "Theorem 11 requires a homogeneous fork (equal branch works); "
            "latency minimization for heterogeneous forks is NP-hard "
            "(Theorem 12) — use repro.algorithms.exact or repro.heuristics"
        )
    return app.root.work, app.branches[0].work


def min_period(
    app: ForkApplication, platform: Platform, allow_data_parallel: bool = True
) -> Solution:
    """Theorem 10: replicate everything on all processors (any fork)."""
    _require_homogeneous_platform(platform)
    del allow_data_parallel  # optimal either way (Lemma 1)
    group = GroupAssignment(
        stages=tuple(range(app.n + 1)),
        processors=tuple(range(platform.p)),
        kind=AssignmentKind.REPLICATED,
    )
    mapping = ForkMapping(application=app, platform=platform, groups=(group,))
    return Solution.from_mapping(mapping, algorithm="thm10-replicate-all")


# ----------------------------------------------------------------------
# Theorem 11 machinery
# ----------------------------------------------------------------------
class _Plan:
    """A candidate optimal structure: root group + rest groups."""

    __slots__ = ("latency", "n0", "q0", "root_kind", "rest")

    def __init__(self, latency, n0, q0, root_kind, rest):
        self.latency = latency
        self.n0 = n0  # branches co-located with the root
        self.q0 = q0  # processors of the root group
        self.root_kind = root_kind
        # rest: list of (branch_count, proc_count, kind)
        self.rest = rest


def _rest_dp(
    n: int, p: int, w: float, s: float, period_bound: float
) -> tuple[list[list[float]], dict]:
    """``D[i][q]`` = min max-delay for ``i`` identical branches on ``q``
    processors, split into replicated groups of period <= bound.

    A group of ``m`` branches needs ``k = ceil(m w / (K s))`` processors to
    meet the bound and has delay ``m w / s`` whatever ``k`` is, so only the
    minimal ``k`` is considered.  ``O(n^2 p)``.
    """
    D = [[INF] * (p + 1) for _ in range(n + 1)]
    back: dict[tuple[int, int], tuple[int, int]] = {}
    for q in range(p + 1):
        D[0][q] = 0.0
    for i in range(1, n + 1):
        for q in range(1, p + 1):
            best, arg = INF, None
            for m in range(1, i + 1):
                if period_bound == INF:
                    k = 1
                else:
                    k = max(1, ceil_div_tol(m * w, period_bound * s))
                if k > q:
                    continue
                prev = D[i - m][q - k]
                if prev == INF:
                    continue
                cand = max(m * w / s, prev)
                if cand < best - FLOAT_TOL:
                    best, arg = cand, (m, k)
            D[i][q] = best
            if arg is not None:
                back[(i, q)] = arg
    return D, back


def _rest_groups_from_dp(back: dict, i: int, q: int) -> list[tuple[int, int]]:
    groups = []
    while i > 0:
        m, k = back[(i, q)]
        groups.append((m, k))
        i, q = i - m, q - k
    return groups


def _require_zero_dp_overhead(app: ForkApplication) -> None:
    if any(stage.dp_overhead > 0 for stage in app.all_stages):
        raise UnsupportedVariantError(
            "the Theorem 11/14 closed forms assume the paper's simplified "
            "model (zero Amdahl overhead f_i); with overheads a single "
            "data-parallel group no longer dominates — use "
            "repro.algorithms.brute_force for small instances"
        )


def _best_plan(
    app: ForkApplication,
    platform: Platform,
    period_bound: float,
    allow_data_parallel: bool,
) -> _Plan | None:
    """Enumerate the optimal structures of Theorem 11 under a period bound."""
    if allow_data_parallel:
        _require_zero_dp_overhead(app)
    s = platform.processors[0].speed
    w0, w = _require_homogeneous_fork(app)
    n, p = app.n, platform.p
    K = period_bound
    best: _Plan | None = None

    def consider(plan: _Plan) -> None:
        nonlocal best
        if best is None or plan.latency < best.latency - FLOAT_TOL:
            best = plan

    if allow_data_parallel:
        # the remaining branches always form a single data-parallel group:
        # merging data-parallel groups improves both criteria on identical
        # processors, and a data-parallel group dominates a replicated one.
        # (a) root replicated together with n0 branches on minimal q0
        for n0 in range(n + 1):
            root_work = w0 + n0 * w
            q0 = 1 if K == INF else max(1, ceil_div_tol(root_work, K * s))
            if q0 > p:
                continue
            rest = n - n0
            if rest == 0:
                consider(_Plan(root_work / s, n0, q0, AssignmentKind.REPLICATED, []))
                continue
            qr = p - q0
            if qr < 1:
                continue
            rest_cost = rest * w / (qr * s)
            if rest_cost > K * (1 + FLOAT_TOL):
                continue
            latency = max(root_work / s, w0 / s + rest_cost)
            consider(
                _Plan(
                    latency, n0, q0, AssignmentKind.REPLICATED,
                    [(rest, qr, AssignmentKind.DATA_PARALLEL)],
                )
            )
        # (b) root alone, data-parallel on q0 processors
        for q0 in range(1, p):
            t0 = w0 / (q0 * s)
            if t0 > K * (1 + FLOAT_TOL):
                continue
            qr = p - q0
            rest_cost = n * w / (qr * s)
            if rest_cost > K * (1 + FLOAT_TOL):
                continue
            consider(
                _Plan(
                    t0 + rest_cost, 0, q0, AssignmentKind.DATA_PARALLEL,
                    [(n, qr, AssignmentKind.DATA_PARALLEL)],
                )
            )
        return best

    # without data-parallelism: knapsack DP for the remaining branches
    D, back = _rest_dp(n, p, w, s, K)
    for n0 in range(n + 1):
        root_work = w0 + n0 * w
        q0 = 1 if K == INF else max(1, ceil_div_tol(root_work, K * s))
        if q0 > p:
            continue
        rest = n - n0
        if rest == 0:
            consider(_Plan(root_work / s, n0, q0, AssignmentKind.REPLICATED, []))
            continue
        d = D[rest][p - q0] if p - q0 >= 0 else INF
        if d == INF:
            continue
        latency = max(root_work / s, w0 / s + d)
        rest_groups = [
            (m, k, AssignmentKind.REPLICATED)
            for m, k in _rest_groups_from_dp(back, rest, p - q0)
        ]
        consider(_Plan(latency, n0, q0, AssignmentKind.REPLICATED, rest_groups))
    return best


def _mapping_from_plan(
    app: ForkApplication, platform: Platform, plan: _Plan
) -> ForkMapping:
    groups: list[GroupAssignment] = []
    next_branch, next_proc = 1, 0

    root_stages: list[int] = [0]
    root_stages += list(range(next_branch, next_branch + plan.n0))
    next_branch += plan.n0
    groups.append(
        GroupAssignment(
            stages=tuple(root_stages),
            processors=tuple(range(next_proc, next_proc + plan.q0)),
            kind=plan.root_kind,
        )
    )
    next_proc += plan.q0
    for count, k, kind in plan.rest:
        groups.append(
            GroupAssignment(
                stages=tuple(range(next_branch, next_branch + count)),
                processors=tuple(range(next_proc, next_proc + k)),
                kind=kind,
            )
        )
        next_branch += count
        next_proc += k
    return ForkMapping(application=app, platform=platform, groups=tuple(groups))


def min_latency_given_period(
    app: ForkApplication,
    platform: Platform,
    period_bound: float,
    allow_data_parallel: bool = True,
) -> Solution:
    """Theorem 11: minimize latency subject to a period bound (hom fork)."""
    _require_homogeneous_platform(platform)
    plan = _best_plan(
        app, platform, period_bound * (1 + FLOAT_TOL), allow_data_parallel
    )
    if plan is None:
        raise InfeasibleProblemError(
            f"no mapping achieves period <= {period_bound}"
        )
    mapping = _mapping_from_plan(app, platform, plan)
    return Solution.from_mapping(mapping, algorithm="thm11-dp")


def min_latency(
    app: ForkApplication,
    platform: Platform,
    allow_data_parallel: bool = True,
) -> Solution:
    """Theorem 11: optimal latency of a homogeneous fork, hom. platform."""
    _require_homogeneous_platform(platform)
    plan = _best_plan(app, platform, INF, allow_data_parallel)
    assert plan is not None  # unconstrained problem is always feasible
    mapping = _mapping_from_plan(app, platform, plan)
    return Solution.from_mapping(mapping, algorithm="thm11-dp")


def _period_candidates(
    app: ForkApplication, platform: Platform
) -> list[float]:
    s = platform.processors[0].speed
    w0, w = app.root.work, app.branches[0].work
    n, p = app.n, platform.p
    values = []
    for k in range(1, p + 1):
        values.append(w0 / (k * s))  # root alone (maybe data-parallel)
        for a in range(n + 1):
            values.append((w0 + a * w) / (k * s))
        for m in range(1, n + 1):
            values.append(m * w / (k * s))
    return unique_sorted(values)


def min_period_given_latency(
    app: ForkApplication,
    platform: Platform,
    latency_bound: float,
    allow_data_parallel: bool = True,
) -> Solution:
    """Theorem 11 (converse): minimize period subject to a latency bound."""
    _require_homogeneous_platform(platform)
    _require_homogeneous_fork(app)

    def feasible(period: float) -> bool:
        plan = _best_plan(
            app, platform, period * (1 + FLOAT_TOL), allow_data_parallel
        )
        return plan is not None and plan.latency <= latency_bound * (1 + FLOAT_TOL)

    period = smallest_feasible(
        _period_candidates(app, platform), feasible, what="period"
    )
    solution = min_latency_given_period(
        app, platform, period, allow_data_parallel
    )
    return Solution(
        mapping=solution.mapping,
        period=solution.period,
        latency=solution.latency,
        meta={"algorithm": "thm11-binary-search"},
    )
