"""Mapping transformations backing the paper's preliminary lemmas.

* **Lemma 1** — on homogeneous platforms there is an optimal mapping that
  minimizes the *period* without data-parallelism: a data-parallel group of
  work ``W`` on ``k`` identical processors has period ``W / (k s)``, exactly
  the period of the same group replicated.  :func:`strip_data_parallelism_hom`
  performs the transformation (it preserves the period; the latency may only
  increase, which Lemma 1 does not need).

* **Lemma 2** — there is an optimal mapping that minimizes the *latency*
  without replication: the delay of a replicated group is the delay of its
  slowest processor, so dropping all but the fastest processor of every
  replicated group preserves the latency.
  :func:`strip_replication_for_latency` performs it (the period may only
  increase, which Lemma 2 does not need).

Both transformations are exercised as property tests: they witness the
exchange arguments on random mappings.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.exceptions import ReproError
from ..core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)

__all__ = ["strip_data_parallelism_hom", "strip_replication_for_latency"]


def strip_data_parallelism_hom(mapping):
    """Replace every data-parallel group by a replicated one (Lemma 1).

    Only meaningful on homogeneous platforms, where the period is preserved;
    raises :class:`ReproError` on heterogeneous platforms where the claim
    does not hold.
    """
    if not mapping.platform.is_homogeneous:
        raise ReproError("Lemma 1 only applies to homogeneous platforms")
    groups = tuple(
        replace(group, kind=AssignmentKind.REPLICATED) for group in mapping.groups
    )
    return replace(mapping, groups=groups)


def strip_replication_for_latency(mapping):
    """Drop all but the *slowest* processor of every replicated group
    (Lemma 2).

    The delay of a replicated group is the time of its slowest enrolled
    processor, so keeping exactly that processor preserves the latency on
    any platform while freeing the others (the period may increase, which
    Lemma 2 does not need).  This mirrors the paper's transformation of an
    optimal mapping into one without replication at the same latency.
    """
    speeds = mapping.platform.speeds
    groups = []
    for group in mapping.groups:
        if group.kind is AssignmentKind.REPLICATED and group.k > 1:
            slowest = min(group.processors, key=lambda u: (speeds[u], u))
            groups.append(replace(group, processors=(slowest,)))
        else:
            groups.append(group)
    return replace(mapping, groups=tuple(groups))
