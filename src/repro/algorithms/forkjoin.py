"""Fork-join graphs (Section 6.3): every fork result extends.

* :func:`min_period_hom_platform` — replicate-all is still optimal on
  homogeneous platforms (Theorem 10 extension), for any fork-join.
* :func:`solve_hom_platform` — homogeneous fork-join on a homogeneous
  platform: the Theorem 11 dynamic programs gain two outer loops, over the
  branches co-located with the join stage and over its processor count (the
  paper sketches exactly this extension, raising the complexity by
  ``O(n p)``).
* :func:`solve_het_platform` — homogeneous fork-join on a heterogeneous
  platform without data-parallelism: the Theorem 14 block DP gains a second
  special block for the join stage (one more loop, ``O(p)`` extra as in the
  paper's ``O(p^6)`` bound).

Latency model (see :func:`repro.core.costs.forkjoin_latency`): all branch
stages must complete before the join work starts; the join group first
processes its own branch stages.  On a homogeneous platform the latency of
a plan is therefore::

    max(t0 + n0 w/s, t0 + nj w/s, t0 + max_rest m w/s) + wj/s_join

with ``t0`` the root completion time — minimizing the *largest group branch
count* under the processor budget, which the DPs below do.
"""

from __future__ import annotations

import itertools

from ..core.application import ForkJoinApplication
from ..core.costs import FLOAT_TOL
from ..core.exceptions import (
    InfeasibleProblemError,
    UnsupportedVariantError,
)
from ..core.mapping import AssignmentKind, ForkJoinMapping, GroupAssignment
from ..core.platform import Platform
from .problem import Objective, Solution
from .search import ceil_div_tol, floor_div_tol, smallest_feasible, unique_sorted

__all__ = [
    "min_period_hom_platform",
    "solve_hom_platform",
    "solve_het_platform",
]

INF = float("inf")


def min_period_hom_platform(
    app: ForkJoinApplication, platform: Platform, allow_data_parallel: bool = True
) -> Solution:
    """Replicate all stages (root, branches, join) over all processors."""
    if not platform.is_homogeneous:
        raise UnsupportedVariantError(
            "replicate-all is only optimal on homogeneous platforms; use "
            "solve_het_platform for heterogeneous ones"
        )
    del allow_data_parallel
    group = GroupAssignment(
        stages=tuple(range(app.n + 2)),
        processors=tuple(range(platform.p)),
        kind=AssignmentKind.REPLICATED,
    )
    mapping = ForkJoinMapping(application=app, platform=platform, groups=(group,))
    return Solution.from_mapping(mapping, algorithm="thm10-forkjoin")


# ======================================================================
# homogeneous platform (Theorem 11 extension)
# ======================================================================
def _require_hom_forkjoin(app: ForkJoinApplication) -> tuple[float, float, float]:
    if not app.is_homogeneous:
        raise UnsupportedVariantError(
            "the polynomial fork-join algorithms require equal branch works "
            "(Theorem 12 makes the heterogeneous case NP-hard); use "
            "repro.algorithms.exact"
        )
    return app.root.work, app.branches[0].work, app.join.work


class _Plan:
    """root group, optional join group, rest groups; all counts/kinds."""

    __slots__ = ("latency", "n0", "q0", "root_kind", "join_in_root",
                 "nj", "qj", "join_kind", "rest")

    def __init__(self, latency, n0, q0, root_kind, join_in_root, nj, qj,
                 join_kind, rest):
        self.latency = latency
        self.n0, self.q0, self.root_kind = n0, q0, root_kind
        self.join_in_root = join_in_root
        self.nj, self.qj, self.join_kind = nj, qj, join_kind
        self.rest = rest  # list of (branch_count, proc_count, kind)


def _rest_dp_hom(n: int, p: int, w: float, s: float, K: float):
    """Same knapsack DP as the fork case: min max-delay of ``i`` branches on
    ``q`` processors in replicated groups of period <= K."""
    D = [[INF] * (p + 1) for _ in range(n + 1)]
    back: dict[tuple[int, int], tuple[int, int]] = {}
    for q in range(p + 1):
        D[0][q] = 0.0
    for i in range(1, n + 1):
        for q in range(1, p + 1):
            best, arg = INF, None
            for m in range(1, i + 1):
                k = 1 if K == INF else max(1, ceil_div_tol(m * w, K * s))
                if k > q:
                    continue
                prev = D[i - m][q - k]
                if prev == INF:
                    continue
                cand = max(m * w / s, prev)
                if cand < best - FLOAT_TOL:
                    best, arg = cand, (m, k)
            D[i][q] = best
            if arg is not None:
                back[(i, q)] = arg
    return D, back


def _best_plan_hom(
    app: ForkJoinApplication,
    platform: Platform,
    K: float,
    allow_dp: bool,
) -> _Plan | None:
    if allow_dp and any(s.dp_overhead > 0 for s in app.all_stages):
        raise UnsupportedVariantError(
            "the fork-join closed forms assume zero Amdahl overhead; use "
            "repro.algorithms.brute_force for small instances with overheads"
        )
    w0, w, wj = _require_hom_forkjoin(app)
    s = platform.processors[0].speed
    n, p = app.n, platform.p
    best: _Plan | None = None

    def consider(plan: _Plan) -> None:
        nonlocal best
        if best is None or plan.latency < best.latency - FLOAT_TOL:
            best = plan

    def fits(value: float) -> bool:
        return value <= K * (1 + FLOAT_TOL)

    D = back = None
    if not allow_dp:
        D, back = _rest_dp_hom(n, p, w, s, K)

    def rest_plans(rest: int, qr: int):
        """Yield (max_rest_delay, groups) choices for the leftover branches."""
        if rest == 0:
            yield 0.0, []
            return
        if qr < 1:
            return
        if allow_dp:
            cost = rest * w / (qr * s)
            if fits(cost):
                yield cost, [(rest, qr, AssignmentKind.DATA_PARALLEL)]
            return
        d = D[rest][qr]
        if d < INF:
            groups = []
            i, q = rest, qr
            while i > 0:
                m, k = back[(i, q)]
                groups.append((m, k, AssignmentKind.REPLICATED))
                i, q = i - m, q - k
            yield d, groups

    # --- case A: join inside the root group (replicated) -----------------
    for n0 in range(n + 1):
        root_work = w0 + n0 * w + wj
        q0 = 1 if K == INF else max(1, ceil_div_tol(root_work, K * s))
        if q0 > p:
            continue
        t0 = w0 / s
        for d, rest in rest_plans(n - n0, p - q0):
            branches_done = max(t0 + n0 * w / s, t0 + d if n - n0 else 0.0)
            latency = max(branches_done, t0 + n0 * w / s) + wj / s
            consider(
                _Plan(latency, n0, q0, AssignmentKind.REPLICATED, True,
                      0, 0, None, rest)
            )

    # --- case B: join in its own group ------------------------------------
    root_options = []
    for n0 in range(n + 1):
        root_work = w0 + n0 * w
        q0 = 1 if K == INF else max(1, ceil_div_tol(root_work, K * s))
        if q0 <= p:
            root_options.append((AssignmentKind.REPLICATED, n0, q0, w0 / s))
    if allow_dp:
        for q0 in range(1, p):
            if fits(w0 / (q0 * s)):
                root_options.append(
                    (AssignmentKind.DATA_PARALLEL, 0, q0, w0 / (q0 * s))
                )

    join_options = []
    for nj in range(n + 1):
        join_work = nj * w + wj
        qj = 1 if K == INF else max(1, ceil_div_tol(join_work, K * s))
        join_options.append((AssignmentKind.REPLICATED, nj, qj, s))
    if allow_dp:
        for qj in range(2, p):
            if fits(wj / (qj * s)):
                join_options.append((AssignmentKind.DATA_PARALLEL, 0, qj, qj * s))

    for (rk, n0, q0, t0), (jk, nj, qj, s_join) in itertools.product(
        root_options, join_options
    ):
        if n0 + nj > n or q0 + qj > p:
            continue
        for d, rest in rest_plans(n - n0 - nj, p - q0 - qj):
            branches_done = max(
                t0 + n0 * w / s,
                t0 + nj * w / s,
                t0 + d if n - n0 - nj else t0,
            )
            latency = branches_done + wj / s_join
            consider(_Plan(latency, n0, q0, rk, False, nj, qj, jk, rest))
    return best


def _mapping_from_plan_hom(
    app: ForkJoinApplication, platform: Platform, plan: _Plan
) -> ForkJoinMapping:
    groups: list[GroupAssignment] = []
    next_branch, next_proc = 1, 0
    join_index = app.n + 1

    root_stages = [0, *range(next_branch, next_branch + plan.n0)]
    next_branch += plan.n0
    if plan.join_in_root:
        root_stages.append(join_index)
    groups.append(
        GroupAssignment(
            stages=tuple(root_stages),
            processors=tuple(range(next_proc, next_proc + plan.q0)),
            kind=plan.root_kind,
        )
    )
    next_proc += plan.q0

    if not plan.join_in_root:
        join_stages = list(range(next_branch, next_branch + plan.nj))
        next_branch += plan.nj
        join_stages.append(join_index)
        groups.append(
            GroupAssignment(
                stages=tuple(join_stages),
                processors=tuple(range(next_proc, next_proc + plan.qj)),
                kind=plan.join_kind,
            )
        )
        next_proc += plan.qj

    for count, k, kind in plan.rest:
        groups.append(
            GroupAssignment(
                stages=tuple(range(next_branch, next_branch + count)),
                processors=tuple(range(next_proc, next_proc + k)),
                kind=kind,
            )
        )
        next_branch += count
        next_proc += k
    return ForkJoinMapping(application=app, platform=platform, groups=tuple(groups))


def _period_candidates_hom(app: ForkJoinApplication, platform: Platform):
    w0, w, wj = app.root.work, app.branches[0].work, app.join.work
    s = platform.processors[0].speed
    n, p = app.n, platform.p
    values = []
    for k in range(1, p + 1):
        for m in range(n + 1):
            values.append((w0 + m * w) / (k * s))
            values.append((w0 + m * w + wj) / (k * s))
            values.append((m * w + wj) / (k * s))
            if m:
                values.append(m * w / (k * s))
        values.append(w0 / (k * s))
        values.append(wj / (k * s))
    return unique_sorted(values)


def solve_hom_platform(
    app: ForkJoinApplication,
    platform: Platform,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
    allow_data_parallel: bool = True,
) -> Solution:
    """Homogeneous fork-join on a homogeneous platform: latency/bi-criteria.

    ``objective = PERIOD`` without a latency bound is the replicate-all case
    (use :func:`min_period_hom_platform`); with a latency bound we binary
    search the candidate periods.
    """
    if not platform.is_homogeneous:
        raise UnsupportedVariantError("use solve_het_platform")

    if objective is Objective.LATENCY:
        K = INF if period_bound is None else period_bound
        plan = _best_plan_hom(app, platform, K, allow_data_parallel)
        if plan is None:
            raise InfeasibleProblemError(
                f"no mapping achieves period <= {period_bound}"
            )
        mapping = _mapping_from_plan_hom(app, platform, plan)
        return Solution.from_mapping(mapping, algorithm="thm11-forkjoin")

    if latency_bound is None:
        return min_period_hom_platform(app, platform, allow_data_parallel)

    def feasible(period: float) -> bool:
        plan = _best_plan_hom(
            app, platform, period * (1 + FLOAT_TOL), allow_data_parallel
        )
        return plan is not None and plan.latency <= latency_bound * (1 + FLOAT_TOL)

    period = smallest_feasible(
        _period_candidates_hom(app, platform), feasible, what="period"
    )
    plan = _best_plan_hom(
        app, platform, period * (1 + FLOAT_TOL), allow_data_parallel
    )
    assert plan is not None
    mapping = _mapping_from_plan_hom(app, platform, plan)
    return Solution.from_mapping(mapping, algorithm="thm11-forkjoin-binary-search")


# ======================================================================
# heterogeneous platform, no data-parallelism (Theorem 14 extension)
# ======================================================================
class _HetEngine:
    """Feasibility under (K, L) with a root block and a join block.

    Processors are sorted by non-decreasing speed; groups are consecutive
    blocks (Lemma 4 extended as the paper sketches in Section 6.3).  The two
    special blocks may coincide (root and join in one group).
    """

    def __init__(self, app: ForkJoinApplication, platform: Platform) -> None:
        self.app, self.platform = app, platform
        self.w0, self.w, self.wj = _require_hom_forkjoin(app)
        self.order = platform.sorted_by_speed(descending=False)
        self.speeds = [proc.speed for proc in self.order]
        self.n, self.p = app.n, platform.p

    # -- capacities --------------------------------------------------------
    def _cap_from_limit(self, limit: float) -> int:
        if limit == INF:
            return self.n
        if limit < -FLOAT_TOL:
            return -1
        return min(self.n, max(0, floor_div_tol(limit, self.w)))

    def _cap_other(self, i: int, k: int, K: float, budget: float) -> int:
        """Branch capacity of a plain block; ``budget`` = L' - t0."""
        limit = INF
        if K != INF:
            limit = K * k * self.speeds[i]
        if budget != INF:
            limit = min(limit, budget * self.speeds[i])
        cap = self._cap_from_limit(limit)
        return max(cap, 0)

    def _cap_root(self, i: int, k: int, K: float, Lp: float) -> int:
        """Root-only block: period (w0+mw)/(k s) <= K, done (w0+mw)/s <= L'."""
        limit = INF
        if K != INF:
            limit = K * k * self.speeds[i] - self.w0
        if Lp != INF:
            limit = min(limit, Lp * self.speeds[i] - self.w0)
        return self._cap_from_limit(limit)

    def _cap_join(self, i: int, k: int, K: float, Lp: float, t0: float) -> int:
        """Join-only block: period (mw+wj)/(k s) <= K, t0 + mw/s <= L'."""
        limit = INF
        if K != INF:
            limit = K * k * self.speeds[i] - self.wj
        if Lp != INF:
            limit = min(limit, (Lp - t0) * self.speeds[i])
        return self._cap_from_limit(limit)

    def _cap_rootjoin(self, i: int, k: int, K: float, Lp: float) -> int:
        """Combined block: period (w0+mw+wj)/(k s) <= K, (w0+mw)/s <= L'."""
        limit = INF
        if K != INF:
            limit = K * k * self.speeds[i] - self.w0 - self.wj
        if Lp != INF:
            limit = min(limit, Lp * self.speeds[i] - self.w0)
        return self._cap_from_limit(limit)

    # -- interval DP over plain blocks --------------------------------------
    def _interval_table(self, K: float, budget: float):
        """``M[a][b]`` = max branches over procs ``a..b`` in plain blocks
        (with the usual split trick this is an O(p^3) prefix-style DP)."""
        p = self.p
        M = [[0] * (p + 1) for _ in range(p + 2)]
        split = [[-1] * (p + 1) for _ in range(p + 2)]
        for a in range(p - 1, -1, -1):
            for b in range(a, p):
                best, arg = -1, a
                for e in range(a, b + 1):
                    value = self._cap_other(a, e - a + 1, K, budget) + (
                        M[e + 1][b] if e + 1 <= b else 0
                    )
                    if value > best:
                        best, arg = value, e
                M[a][b] = best
                split[a][b] = arg
        return M, split

    def _segment(self, M, a: int, b: int) -> int:
        if a > b:
            return 0
        return M[a][b]

    # -- search --------------------------------------------------------------
    def _search(self, K: float, L: float):
        """Find a feasible block layout; returns a description or ``None``."""
        p, n = self.p, self.n
        # combined root+join block
        for i in range(p):
            Lp = INF if L == INF else L - self.wj / self.speeds[i]
            t0 = self.w0 / self.speeds[i]
            budget = INF if Lp == INF else Lp - t0
            M, split = self._interval_table(K, budget)
            for j in range(i, p):
                cap = self._cap_rootjoin(i, j - i + 1, K, Lp)
                if cap < 0:
                    continue
                if (
                    self._segment(M, 0, i - 1)
                    + cap
                    + self._segment(M, j + 1, p - 1)
                    >= n
                ):
                    return {
                        "combined": (i, j, cap),
                        "segments": [(0, i - 1), (j + 1, p - 1)],
                        "tables": (M, split),
                        "K": K, "budget": budget, "Lp": Lp, "t0": t0,
                    }
        # separate blocks, both orders on the speed line
        for i0 in range(p):
            t0 = self.w0 / self.speeds[i0]
            for ij in range(p):
                if ij == i0:
                    continue
                Lp = INF if L == INF else L - self.wj / self.speeds[ij]
                budget = INF if Lp == INF else Lp - t0
                M, split = self._interval_table(K, budget)
                lo, hi = min(i0, ij), max(i0, ij)
                for j_lo in range(lo, hi):
                    for j_hi in range(hi, p):
                        if i0 < ij:
                            root_span, join_span = (i0, j_lo), (ij, j_hi)
                        else:
                            join_span, root_span = (ij, j_lo), (i0, j_hi)
                        if root_span[0] > root_span[1] or join_span[0] > join_span[1]:
                            continue
                        cap0 = self._cap_root(
                            root_span[0], root_span[1] - root_span[0] + 1, K, Lp
                        )
                        capj = self._cap_join(
                            join_span[0], join_span[1] - join_span[0] + 1, K, Lp, t0
                        )
                        if cap0 < 0 or capj < 0:
                            continue
                        total = (
                            self._segment(M, 0, lo - 1)
                            + cap0
                            + capj
                            + self._segment(M, j_lo + 1, hi - 1)
                            + self._segment(M, j_hi + 1, p - 1)
                        )
                        if total >= n:
                            return {
                                "root": (*root_span, cap0),
                                "join": (*join_span, capj),
                                "segments": [
                                    (0, lo - 1),
                                    (j_lo + 1, hi - 1),
                                    (j_hi + 1, p - 1),
                                ],
                                "tables": (M, split),
                                "K": K, "budget": budget, "Lp": Lp, "t0": t0,
                            }
        return None

    def feasible(self, K: float, L: float) -> bool:
        return self._search(K, L) is not None

    # -- reconstruction --------------------------------------------------------
    def build(self, K: float, L: float) -> ForkJoinMapping:
        found = self._search(K, L)
        if found is None:
            raise InfeasibleProblemError(
                f"no mapping achieves period <= {K} and latency <= {L}"
            )
        M, split = found["tables"]
        blocks: list[tuple[int, int, int, str]] = []
        if "combined" in found:
            i, j, cap = found["combined"]
            blocks.append((i, j, cap, "root+join"))
        else:
            blocks.append((*found["root"], "root"))
            blocks.append((*found["join"], "join"))
        budget, K_ = found["budget"], found["K"]
        for a, b in found["segments"]:
            pos = a
            while pos <= b:
                e = split[pos][b]
                blocks.append(
                    (pos, e, self._cap_other(pos, e - pos + 1, K_, budget), "plain")
                )
                pos = e + 1

        # special blocks first so they always receive their stages
        priority = {"root+join": 0, "root": 0, "join": 0, "plain": 1}
        blocks.sort(key=lambda blk: priority[blk[3]])
        remaining = self.n
        next_branch = 1
        join_index = self.n + 1
        groups = []
        for start, end, cap, role in blocks:
            take = min(remaining, max(cap, 0))
            remaining -= take
            stages = list(range(next_branch, next_branch + take))
            next_branch += take
            if role in ("root", "root+join"):
                stages.insert(0, 0)
            if role in ("join", "root+join"):
                stages.append(join_index)
            if not stages:
                continue
            procs = tuple(
                sorted(self.order[t].index for t in range(start, end + 1))
            )
            groups.append(
                GroupAssignment(
                    stages=tuple(stages),
                    processors=procs,
                    kind=AssignmentKind.REPLICATED,
                )
            )
        if remaining > 0:
            raise InfeasibleProblemError("internal: reconstruction failed")
        return ForkJoinMapping(
            application=self.app, platform=self.platform, groups=tuple(groups)
        )

    # -- candidates ---------------------------------------------------------
    def period_candidates(self):
        values = []
        for i in range(self.p):
            s = self.speeds[i]
            for k in range(1, self.p - i + 1):
                for m in range(self.n + 1):
                    base = m * self.w
                    values.append((base + self.w0) / (k * s))
                    values.append((base + self.wj) / (k * s))
                    values.append((base + self.w0 + self.wj) / (k * s))
                    if m:
                        values.append(base / (k * s))
        return unique_sorted(values)

    def latency_candidates(self):
        values = []
        for i0 in range(self.p):
            t0 = self.w0 / self.speeds[i0]
            for ij in range(self.p):
                tj = self.wj / self.speeds[ij]
                for m in range(self.n + 1):
                    values.append((self.w0 + m * self.w) / self.speeds[i0] + tj)
                    for i in range(self.p):
                        if m:
                            values.append(t0 + m * self.w / self.speeds[i] + tj)
        return unique_sorted(values)


def solve_het_platform(
    app: ForkJoinApplication,
    platform: Platform,
    objective: Objective,
    period_bound: float | None = None,
    latency_bound: float | None = None,
) -> Solution:
    """Homogeneous fork-join on a heterogeneous platform (no data-par)."""
    engine = _HetEngine(app, platform)
    K = INF if period_bound is None else period_bound * (1 + FLOAT_TOL)
    L = INF if latency_bound is None else latency_bound * (1 + FLOAT_TOL)

    if objective is Objective.PERIOD:
        value = smallest_feasible(
            engine.period_candidates(),
            lambda cand: engine.feasible(cand * (1 + FLOAT_TOL), L),
            what="period",
        )
        K = value * (1 + FLOAT_TOL)
    else:
        value = smallest_feasible(
            engine.latency_candidates(),
            lambda cand: engine.feasible(K, cand * (1 + FLOAT_TOL)),
            what="latency",
        )
        L = value * (1 + FLOAT_TOL)

    mapping = engine.build(K, L)
    return Solution.from_mapping(mapping, algorithm="thm14-forkjoin")
