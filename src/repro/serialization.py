"""JSON-friendly serialization of instances, mappings and solutions.

Round-trippable dictionaries for every model object, so instances can be
stored in files, shipped to the CLI (``python -m repro solve --file
instance.json``) and solutions archived next to benchmark reports.

Format (versioned, one top-level ``kind`` discriminator)::

    {"kind": "pipeline", "works": [...], "data_sizes": [...],
     "dp_overheads": [...]}
    {"kind": "fork", "root_work": w0, "branch_works": [...]}
    {"kind": "fork-join", "root_work": w0, "branch_works": [...],
     "join_work": wj}
    {"kind": "platform", "speeds": [...], "bandwidth": b | null}
    {"kind": "instance", "application": {...}, "platform": {...},
     "allow_data_parallel": true | false}
    {"kind": "mapping", "application": {...}, "platform": {...},
     "groups": [{"stages": [...], "processors": [...],
                 "assignment": "replicated" | "data-parallel"}]}

Canonical hashing
-----------------
The campaign subsystem (:mod:`repro.campaign`) keys its persistent result
cache on :func:`content_hash` of canonical documents.  Canonicalization
(:func:`canonical_instance_dict`) round-trips a document through the model
classes (normalizing ints vs floats and dropping empty optional fields) and
sorts the permutation-invariant parts — platform speeds and fork/fork-join
branch works — so that permuted-equivalent constructions of the *same*
instance hash identically, while any change to an actual model field
changes the hash.
"""

from __future__ import annotations

import hashlib
import json

from .core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from .core.exceptions import ReproError
from .core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from .core.platform import Platform

__all__ = [
    "application_to_dict",
    "application_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
    "dumps",
    "loads",
    "canonical_json",
    "content_hash",
    "normalized_instance_dict",
    "canonical_instance_dict",
    "instance_digest",
]


# ---------------------------------------------------------------- applications
def application_to_dict(app) -> dict:
    if isinstance(app, ForkJoinApplication):
        return {
            "kind": "fork-join",
            "root_work": app.root.work,
            "branch_works": list(app.branch_works),
            "join_work": app.join.work,
        }
    if isinstance(app, ForkApplication):
        return {
            "kind": "fork",
            "root_work": app.root.work,
            "branch_works": list(app.branch_works),
        }
    if isinstance(app, PipelineApplication):
        out = {"kind": "pipeline", "works": list(app.works)}
        sizes = [app.stages[0].input_size] + [
            stage.output_size for stage in app.stages
        ]
        if any(sizes):
            out["data_sizes"] = sizes
        overheads = [stage.dp_overhead for stage in app.stages]
        if any(overheads):
            out["dp_overheads"] = overheads
        return out
    raise ReproError(f"cannot serialize {type(app).__name__}")


def application_from_dict(data: dict):
    kind = data.get("kind")
    if kind == "pipeline":
        return PipelineApplication.from_works(
            data["works"],
            data_sizes=data.get("data_sizes"),
            dp_overheads=data.get("dp_overheads"),
        )
    if kind == "fork":
        return ForkApplication.from_works(
            data["root_work"], data["branch_works"]
        )
    if kind == "fork-join":
        return ForkJoinApplication.from_works(
            data["root_work"], data["branch_works"], data["join_work"]
        )
    raise ReproError(f"unknown application kind {kind!r}")


# ---------------------------------------------------------------- platforms
def platform_to_dict(platform: Platform) -> dict:
    out: dict = {"kind": "platform", "speeds": list(platform.speeds)}
    if platform.interconnect is not None:
        bandwidths = {
            *(b for row in platform.interconnect.bandwidth for b in row),
            *platform.interconnect.in_bandwidths,
            *platform.interconnect.out_bandwidths,
        }
        if len(bandwidths) != 1:
            raise ReproError(
                "only uniform interconnects are serializable"
            )
        out["bandwidth"] = next(iter(bandwidths))
    return out


def platform_from_dict(data: dict) -> Platform:
    if data.get("kind") != "platform":
        raise ReproError(f"not a platform document: {data.get('kind')!r}")
    bandwidth = data.get("bandwidth")
    if bandwidth is None:
        return Platform.heterogeneous(data["speeds"])
    from .core.platform import Interconnect

    speeds = data["speeds"]
    return Platform.heterogeneous(
        speeds, interconnect=Interconnect.uniform(len(speeds), bandwidth)
    )


# ---------------------------------------------------------------- instances
def spec_to_dict(spec) -> dict:
    """Serialize a :class:`~repro.algorithms.problem.ProblemSpec`."""
    return {
        "kind": "instance",
        "application": application_to_dict(spec.application),
        "platform": platform_to_dict(spec.platform),
        "allow_data_parallel": bool(spec.allow_data_parallel),
    }


def spec_from_dict(data: dict):
    """Deserialize an ``{"kind": "instance", ...}`` document."""
    from .algorithms.problem import ProblemSpec

    if data.get("kind") != "instance":
        raise ReproError(f"not an instance document: {data.get('kind')!r}")
    return ProblemSpec(
        application=application_from_dict(data["application"]),
        platform=platform_from_dict(data["platform"]),
        allow_data_parallel=bool(data.get("allow_data_parallel", False)),
    )


# ---------------------------------------------------------------- mappings
def mapping_to_dict(mapping) -> dict:
    return {
        "kind": "mapping",
        "application": application_to_dict(mapping.application),
        "platform": platform_to_dict(mapping.platform),
        "groups": [
            {
                "stages": list(group.stages),
                "processors": list(group.processors),
                "assignment": group.kind.value,
            }
            for group in mapping.groups
        ],
    }


def mapping_from_dict(data: dict):
    if data.get("kind") != "mapping":
        raise ReproError(f"not a mapping document: {data.get('kind')!r}")
    app = application_from_dict(data["application"])
    platform = platform_from_dict(data["platform"])
    groups = tuple(
        GroupAssignment(
            stages=tuple(entry["stages"]),
            processors=tuple(entry["processors"]),
            kind=AssignmentKind(entry["assignment"]),
        )
        for entry in data["groups"]
    )
    if isinstance(app, ForkJoinApplication):
        cls = ForkJoinMapping
    elif isinstance(app, ForkApplication):
        cls = ForkMapping
    else:
        cls = PipelineMapping
    return cls(application=app, platform=platform, groups=groups)


# ---------------------------------------------------------------- json text
def dumps(obj) -> str:
    """Serialize an application, platform or mapping to JSON text."""
    if isinstance(obj, Platform):
        return json.dumps(platform_to_dict(obj), indent=2)
    if isinstance(
        obj, (PipelineMapping, ForkMapping, ForkJoinMapping)
    ):
        return json.dumps(mapping_to_dict(obj), indent=2)
    return json.dumps(application_to_dict(obj), indent=2)


def loads(text: str):
    """Deserialize JSON text produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "platform":
        return platform_from_dict(data)
    if kind == "mapping":
        return mapping_from_dict(data)
    if kind == "instance":
        return spec_from_dict(data)
    return application_from_dict(data)


# ---------------------------------------------------------------- hashing
def canonical_json(data) -> str:
    """Deterministic JSON text: sorted keys, compact separators.

    Python's ``repr``-based float formatting is itself deterministic, so
    equal documents always produce byte-identical text.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_hash(data) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``data``."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def normalized_instance_dict(data: dict) -> dict:
    """Normal form of an application / platform / instance document.

    The document is round-tripped through the model classes, coercing ints
    to the floats the model stores and dropping empty optional fields —
    so hand-written and model-generated documents of the *same* instance
    normalize to byte-identical JSON.  Index order is preserved: mappings
    built against the original document stay valid against the normal
    form.  This is the form the campaign cache keys on.
    """
    kind = data.get("kind")
    if kind == "instance":
        return {
            "kind": "instance",
            "application": normalized_instance_dict(data["application"]),
            "platform": normalized_instance_dict(data["platform"]),
            "allow_data_parallel": bool(data.get("allow_data_parallel", False)),
        }
    if kind == "platform":
        return platform_to_dict(platform_from_dict(data))
    return application_to_dict(application_from_dict(data))


def canonical_instance_dict(data: dict) -> dict:
    """Like :func:`normalized_instance_dict`, plus permutation invariance.

    The permutation-invariant parts are additionally sorted:

    * platform ``speeds`` — processors are interchangeable up to speed;
    * fork / fork-join ``branch_works`` — branches are independent, so any
      reordering describes the same instance.

    Pipeline ``works`` (and ``data_sizes`` / ``dp_overheads``) keep their
    order: stage order is structural for a pipeline.

    NOTE: sorting re-indexes processors/branches, so this form identifies
    instances *up to renumbering* — right for value-level identity
    (:func:`instance_digest`, dedup, analysis), wrong as a key for cached
    artifacts that carry processor or branch indices (a mapping solved for
    ``speeds [1, 3]`` must not be served for ``speeds [3, 1]``); the
    campaign cache keys on :func:`normalized_instance_dict` instead.
    """
    doc = normalized_instance_dict(data)
    kind = doc.get("kind")
    if kind == "instance":
        doc["application"] = canonical_instance_dict(doc["application"])
        doc["platform"] = canonical_instance_dict(doc["platform"])
    elif kind == "platform":
        doc["speeds"] = sorted(doc["speeds"], reverse=True)
    elif kind in ("fork", "fork-join"):
        doc["branch_works"] = sorted(doc["branch_works"], reverse=True)
    return doc


def instance_digest(data: dict) -> str:
    """Content hash of the canonical form of an instance-shaped document.

    Permutation-invariant: equivalent constructions of one instance (any
    processor or branch ordering) digest identically.
    """
    return content_hash(canonical_instance_dict(data))
