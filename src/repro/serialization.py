"""JSON-friendly serialization of instances, mappings and solutions.

Round-trippable dictionaries for every model object, so instances can be
stored in files, shipped to the CLI (``python -m repro solve --file
instance.json``) and solutions archived next to benchmark reports.

Format (versioned, one top-level ``kind`` discriminator)::

    {"kind": "pipeline", "works": [...], "data_sizes": [...],
     "dp_overheads": [...]}
    {"kind": "fork", "root_work": w0, "branch_works": [...]}
    {"kind": "fork-join", "root_work": w0, "branch_works": [...],
     "join_work": wj}
    {"kind": "platform", "speeds": [...], "bandwidth": b | null}
    {"kind": "mapping", "application": {...}, "platform": {...},
     "groups": [{"stages": [...], "processors": [...],
                 "assignment": "replicated" | "data-parallel"}]}
"""

from __future__ import annotations

import json

from .core.application import (
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
)
from .core.exceptions import ReproError
from .core.mapping import (
    AssignmentKind,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineMapping,
)
from .core.platform import Platform

__all__ = [
    "application_to_dict",
    "application_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
    "dumps",
    "loads",
]


# ---------------------------------------------------------------- applications
def application_to_dict(app) -> dict:
    if isinstance(app, ForkJoinApplication):
        return {
            "kind": "fork-join",
            "root_work": app.root.work,
            "branch_works": list(app.branch_works),
            "join_work": app.join.work,
        }
    if isinstance(app, ForkApplication):
        return {
            "kind": "fork",
            "root_work": app.root.work,
            "branch_works": list(app.branch_works),
        }
    if isinstance(app, PipelineApplication):
        out = {"kind": "pipeline", "works": list(app.works)}
        sizes = [app.stages[0].input_size] + [
            stage.output_size for stage in app.stages
        ]
        if any(sizes):
            out["data_sizes"] = sizes
        overheads = [stage.dp_overhead for stage in app.stages]
        if any(overheads):
            out["dp_overheads"] = overheads
        return out
    raise ReproError(f"cannot serialize {type(app).__name__}")


def application_from_dict(data: dict):
    kind = data.get("kind")
    if kind == "pipeline":
        return PipelineApplication.from_works(
            data["works"],
            data_sizes=data.get("data_sizes"),
            dp_overheads=data.get("dp_overheads"),
        )
    if kind == "fork":
        return ForkApplication.from_works(
            data["root_work"], data["branch_works"]
        )
    if kind == "fork-join":
        return ForkJoinApplication.from_works(
            data["root_work"], data["branch_works"], data["join_work"]
        )
    raise ReproError(f"unknown application kind {kind!r}")


# ---------------------------------------------------------------- platforms
def platform_to_dict(platform: Platform) -> dict:
    out: dict = {"kind": "platform", "speeds": list(platform.speeds)}
    if platform.interconnect is not None:
        bandwidths = {
            *(b for row in platform.interconnect.bandwidth for b in row),
            *platform.interconnect.in_bandwidths,
            *platform.interconnect.out_bandwidths,
        }
        if len(bandwidths) != 1:
            raise ReproError(
                "only uniform interconnects are serializable"
            )
        out["bandwidth"] = next(iter(bandwidths))
    return out


def platform_from_dict(data: dict) -> Platform:
    if data.get("kind") != "platform":
        raise ReproError(f"not a platform document: {data.get('kind')!r}")
    bandwidth = data.get("bandwidth")
    if bandwidth is None:
        return Platform.heterogeneous(data["speeds"])
    from .core.platform import Interconnect

    speeds = data["speeds"]
    return Platform.heterogeneous(
        speeds, interconnect=Interconnect.uniform(len(speeds), bandwidth)
    )


# ---------------------------------------------------------------- mappings
def mapping_to_dict(mapping) -> dict:
    return {
        "kind": "mapping",
        "application": application_to_dict(mapping.application),
        "platform": platform_to_dict(mapping.platform),
        "groups": [
            {
                "stages": list(group.stages),
                "processors": list(group.processors),
                "assignment": group.kind.value,
            }
            for group in mapping.groups
        ],
    }


def mapping_from_dict(data: dict):
    if data.get("kind") != "mapping":
        raise ReproError(f"not a mapping document: {data.get('kind')!r}")
    app = application_from_dict(data["application"])
    platform = platform_from_dict(data["platform"])
    groups = tuple(
        GroupAssignment(
            stages=tuple(entry["stages"]),
            processors=tuple(entry["processors"]),
            kind=AssignmentKind(entry["assignment"]),
        )
        for entry in data["groups"]
    )
    if isinstance(app, ForkJoinApplication):
        cls = ForkJoinMapping
    elif isinstance(app, ForkApplication):
        cls = ForkMapping
    else:
        cls = PipelineMapping
    return cls(application=app, platform=platform, groups=groups)


# ---------------------------------------------------------------- json text
def dumps(obj) -> str:
    """Serialize an application, platform or mapping to JSON text."""
    if isinstance(obj, Platform):
        return json.dumps(platform_to_dict(obj), indent=2)
    if isinstance(
        obj, (PipelineMapping, ForkMapping, ForkJoinMapping)
    ):
        return json.dumps(mapping_to_dict(obj), indent=2)
    return json.dumps(application_to_dict(obj), indent=2)


def loads(text: str):
    """Deserialize JSON text produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "platform":
        return platform_from_dict(data)
    if kind == "mapping":
        return mapping_from_dict(data)
    return application_from_dict(data)
