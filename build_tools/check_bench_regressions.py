#!/usr/bin/env python
"""Perf-trajectory regression gate over the committed ``BENCH_*.json``.

The repository commits its measured performance trajectories so every
PR leaves an auditable perf record.  This script gates two of them —
``BENCH_exact.json`` and ``BENCH_campaign.json`` (``BENCH_service.json``
is recorded but not gated: its request latencies are floored by the
loopback HTTP round-trip, see PERFORMANCE.md).  The *recorded* numbers
must clear the floors future PRs may not regress:

* the matrix section of ``BENCH_exact.json`` — branch-and-bound must
  stay >= 10x faster than flat enumeration at every measured size, and
  every entry must carry the search-effort counters (``bnb_nodes`` /
  ``bnb_pruned``) the instrumented engines now report — together these
  gate that per-solve instrumentation stays free on the hot path (the
  counters are read post-solve from state the search already kept);
* the sweep section of ``BENCH_exact.json`` — context-reuse must stay
  >= 2x faster than cold per-point solves (and the sweep rows must have
  been verified bit-identical when the file was generated), with
  search-effort totals present in every entry;
* the budget section of ``BENCH_exact.json`` — the anytime contract:
  incumbents were verified monotone in the node budget and sound
  against their lower bounds, every recorded gap is finite, and the
  gap at the largest budget is no worse than at the smallest;
* the campaign warm-cache hit fraction of ``BENCH_campaign.json`` —
  a repeat campaign must stay >= 95% cache hits.

Thresholds are the honest single-core ones (see the ROADMAP note): both
ratios are CPU-bound and hold on the 1-CPU reference container —
multi-core fan-out numbers are deliberately *not* gated here.

Usage::

    python build_tools/check_bench_regressions.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Floors for the committed trajectory (single-core honest, see module doc).
MIN_MATRIX_SPEEDUP = 10.0
MIN_SWEEP_SPEEDUP = 2.0
MIN_WARM_HIT_FRACTION = 0.95
#: The MILP engine must keep closing instances past the combinatorial
#: guard (frontier strictly beyond n=10) and hold the ISSUE 10 acceptance
#: floor: at least one n >= 14 instance closed exactly (gap 0).
MIN_MILP_FRONTIER_N = 10
MIN_MILP_EXACT_N = 14

#: Search-effort fields the instrumented engines must keep recording —
#: their absence would mean the free post-solve instrumentation was lost.
MATRIX_EFFORT_FIELDS = ("bnb_nodes", "bnb_pruned")
SWEEP_EFFORT_FIELDS = ("cold_effort", "context_effort")


def _fail(message: str) -> None:
    print(f"REGRESSION: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_matrix(path: Path, doc: dict) -> list[str]:
    """The instrumentation-overhead gate: engine speedups must hold at
    their historical floor *with* the effort counters recorded."""
    entries = doc.get("entries", [])
    if not entries:
        _fail(f"{path.name} has no matrix entries — regenerate with "
              "PYTHONPATH=src python benchmarks/bench_exact_engines.py")
    lines = []
    for entry in entries:
        label = f"matrix {entry['n']}x{entry['p']}"
        missing = [f for f in MATRIX_EFFORT_FIELDS if f not in entry]
        if missing:
            _fail(f"{label}: search-effort fields {missing} missing — "
                  "engine instrumentation was lost")
        if entry["speedup"] < MIN_MATRIX_SPEEDUP:
            _fail(f"{label}: bnb speedup {entry['speedup']}x fell below "
                  f"the {MIN_MATRIX_SPEEDUP}x floor (instrumentation "
                  "overhead on the hot path?)")
        lines.append(
            f"  {label}: {entry['speedup']}x (>= {MIN_MATRIX_SPEEDUP}x), "
            f"{entry['bnb_nodes']} nodes / {entry['bnb_pruned']} pruned"
        )
    return lines


def check_exact(path: Path) -> list[str]:
    doc = json.loads(path.read_text())
    lines = check_matrix(path, doc)
    sweep = doc.get("sweep", {})
    entries = sweep.get("entries", [])
    if not entries:
        _fail(f"{path.name} has no sweep section — regenerate with "
              "PYTHONPATH=src python benchmarks/bench_exact_engines.py")
    for entry in entries:
        label = (f"sweep {entry['engine']} {entry['n']}x{entry['p']} "
                 f"({entry['points']} points)")
        if not entry.get("rows_identical"):
            _fail(f"{label}: rows were not verified bit-identical")
        missing = [f for f in SWEEP_EFFORT_FIELDS if f not in entry]
        if missing:
            _fail(f"{label}: search-effort totals {missing} missing — "
                  "regenerate after restoring SolveStats timing blocks")
        if entry["speedup"] < MIN_SWEEP_SPEEDUP:
            _fail(f"{label}: context-reuse speedup {entry['speedup']}x "
                  f"fell below the {MIN_SWEEP_SPEEDUP}x floor")
        lines.append(f"  {label}: {entry['speedup']}x (>= {MIN_SWEEP_SPEEDUP}x)")
    lines += check_budget(path, doc)
    lines += check_milp(path, doc)
    return lines


def check_milp(path: Path, doc: dict) -> list[str]:
    """The MILP frontier gate: the committed trajectory must prove the
    engine closes instances past the combinatorial guard, exactly."""
    section = doc.get("milp")
    if not section:
        _fail(f"{path.name} has no milp section — regenerate with an MILP "
              "backend installed: PYTHONPATH=src python "
              "benchmarks/bench_exact_engines.py --milp-only")
    entries = section.get("entries", [])
    closed = [e for e in entries
              if e.get("status") == "optimal" and e.get("gap") == 0.0]
    if not closed:
        _fail("milp: no instance closed exactly (gap 0)")
    frontier = max(e["n"] for e in closed)
    if frontier <= MIN_MILP_FRONTIER_N:
        _fail(f"milp: closed frontier n={frontier} regressed to within "
              f"the combinatorial guard (must exceed "
              f"n={MIN_MILP_FRONTIER_N})")
    if not any(e["n"] >= MIN_MILP_EXACT_N for e in closed):
        _fail(f"milp: no n>={MIN_MILP_EXACT_N} instance closed exactly — "
              "the ISSUE 10 acceptance floor")
    lines = []
    for e in entries:
        label = f"milp {e['n']}x{e['p']}"
        for field in ("lp_bound", "combinatorial_bound"):
            if field not in e:
                _fail(f"{label}: {field} missing — bound comparison was "
                      "lost")
        if e["lp_bound"] > e["optimum"] * (1 + 1e-9):
            _fail(f"{label}: LP bound {e['lp_bound']} exceeds the optimum "
                  f"{e['optimum']} — unsound relaxation")
        lines.append(
            f"  {label}: {e['status']} gap {e['gap'] * 100:.1f}% "
            f"in {e['seconds']:.2f}s ({section['backend']})"
        )
    budgeted = section.get("budgeted")
    if not budgeted:
        _fail("milp: no budgeted anytime entry recorded")
    gap = budgeted["gap"]
    if not (0.0 <= gap < float("inf")):
        _fail(f"milp budgeted: non-finite or negative gap {gap}")
    if budgeted["value"] < budgeted["lower_bound"] * (1 - 1e-9):
        _fail(f"milp budgeted: incumbent {budgeted['value']} below its "
              f"dual bound {budgeted['lower_bound']}")
    lines.append(
        f"  milp budgeted {budgeted['n']}x{budgeted['p']} "
        f"({budgeted['max_seconds']}s): {budgeted['status']}, "
        f"gap {gap * 100:.1f}%"
    )
    return lines


def check_budget(path: Path, doc: dict) -> list[str]:
    budget = doc.get("budget", {})
    entries = budget.get("entries", [])
    if not entries:
        _fail(f"{path.name} has no budget section — regenerate with "
              "PYTHONPATH=src python benchmarks/bench_exact_engines.py")
    lines = []
    for entry in entries:
        label = f"budget {entry['n']}x{entry['p']}"
        if not (entry.get("anytime_monotone") and entry.get("sound")):
            _fail(f"{label}: anytime contract was not verified at "
                  "generation time")
        gaps = [pt["gap"] for pt in entry["points"]]
        if any(not (0.0 <= g < float("inf")) for g in gaps):
            _fail(f"{label}: non-finite or negative gap recorded: {gaps}")
        if gaps[-1] > gaps[0]:
            _fail(f"{label}: gap widened with budget ({gaps[0]} -> "
                  f"{gaps[-1]})")
        lines.append(
            f"  {label}: gap {gaps[0] * 100:.1f}% @ "
            f"{entry['points'][0]['max_nodes']} nodes -> "
            f"{gaps[-1] * 100:.1f}% @ {entry['points'][-1]['max_nodes']}"
        )
    return lines


def check_campaign(path: Path) -> list[str]:
    doc = json.loads(path.read_text())
    fraction = doc.get("cache_hit_fraction")
    if fraction is None:
        _fail(f"{path.name} lacks cache_hit_fraction")
    if fraction < MIN_WARM_HIT_FRACTION:
        _fail(f"campaign warm-cache hit fraction {fraction} fell below "
              f"{MIN_WARM_HIT_FRACTION}")
    if not doc.get("rows_identical", True):
        _fail("campaign serial/parallel rows diverged")
    return [f"  campaign warm-cache hit fraction: {fraction} "
            f"(>= {MIN_WARM_HIT_FRACTION})"]


def main() -> int:
    lines = check_exact(ROOT / "BENCH_exact.json")
    lines += check_campaign(ROOT / "BENCH_campaign.json")
    print("perf trajectory OK:")
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
