#!/usr/bin/env python
"""CI chaos smoke: one campaign survives a worker kill and a cache outage.

The fire drill for the fault-tolerance layer, end to end and in one
process:

1. a solver service goes up and a campaign that contains a *killer*
   instance (its worker is SIGKILLed by the fault hook) runs against it
   through the breaker-wrapped http cache with two workers — and the
   service is killed from the progress callback, mid-run;
2. the run must complete anyway: the killer quarantined as an error
   row, every surviving row bit-identical to a fault-free serial
   reference, and the puts that found the remote dead spilled to the
   local journal;
3. the service comes back on the same port; the breaker's half-open
   probe must replay the journal so the remote ends up holding every
   cacheable row;
4. a repeat run re-solves only the quarantined instance, and a third
   run is 100% cache hits.

Exercised in tier-1 CI (see ``.github/workflows/ci.yml``); the unit
versions of each guarantee live in ``tests/campaign/`` — this script is
the integration pass over all of them at once.

Usage::

    PYTHONPATH=src python build_tools/chaos_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    CircuitBreakerBackend,
    ResultCache,
    run_campaign,
    strip_volatile,
)
from repro.campaign.cache import HttpCacheBackend
from repro.campaign.runner import _FAULT_KILL_ENV
from repro.service import ServiceClient
from repro.service.server import make_server


class _Service:
    """A solver service that can be killed and restarted on one port."""

    def __init__(self, cache_dir: Path) -> None:
        self.cache_dir = cache_dir
        self.port = 0                       # first start picks a free port
        self.server = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> None:
        srv = make_server(host="127.0.0.1", port=self.port,
                          cache=ResultCache(self.cache_dir))
        self.port = srv.server_address[1]
        self.server = srv
        self._thread = threading.Thread(target=srv.serve_forever,
                                        daemon=True)
        self._thread.start()
        ServiceClient(self.url, timeout=5.0).wait_ready(timeout=30)

    def kill(self) -> None:
        srv, self.server = self.server, None
        if srv is None:
            return
        srv.shutdown()
        srv.server_close()
        srv.service.close()
        self._thread.join(timeout=5)


def _instance(iid: str, works: list) -> dict:
    return {
        "type": "explicit",
        "id": iid,
        "application": {"kind": "pipeline", "works": works},
        "platform": {"kind": "platform", "speeds": [1.0, 1.0, 1.0]},
    }


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="chaos-smoke",
        instances=(
            _instance("alpha", [14.0, 4.0, 2.0, 4.0]),
            _instance("victim", [3.0, 3.0, 3.0]),
            _instance("omega", [5.0, 1.0, 2.0, 8.0]),
            _instance("delta", [2.0, 7.0, 1.0, 1.0, 6.0]),
        ),
        objectives=("period", "latency"),
        solvers=({"name": "smoke", "mode": "auto", "exact_fallback": True},),
    )


def _breaker_cache(url: str, journal_dir: Path):
    backend = CircuitBreakerBackend(
        HttpCacheBackend(url, timeout=5.0, retries=0),
        journal_dir=journal_dir,
        failure_threshold=2,
        reset_after=0.05,
    )
    return ResultCache(backend=backend), backend


def main() -> int:
    spec = _spec()
    tasks = len(spec.tasks())
    reference = run_campaign(spec, workers=0)     # fault-free serial truth
    assert reference.stats["errors"] == 0, reference.stats

    tmp = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    service = _Service(tmp / "remote")
    service.start()
    cache, breaker = _breaker_cache(service.url, tmp / "journal")

    def _kill_after_first_chunk(done: int, total: int) -> None:
        if service.server is not None:
            service.kill()                  # outage lands mid-write-back

    os.environ[_FAULT_KILL_ENV] = "victim"
    try:
        result = run_campaign(spec, cache=cache, workers=2, chunk_size=2,
                              progress=_kill_after_first_chunk)
    finally:
        os.environ.pop(_FAULT_KILL_ENV, None)

    assert result.stats["crashed"] == 2, result.stats
    assert result.stats["ok"] == tasks - 2, result.stats
    survivors = [strip_volatile(r) for r in result.rows
                 if r["instance_id"] != "victim"]
    expected = [strip_volatile(r) for r in reference.rows
                if r["instance_id"] != "victim"]
    assert survivors == expected, "surviving rows diverged from serial"
    assert breaker.opens >= 1, breaker.breaker_state()
    assert breaker.spilled_puts >= 1, breaker.breaker_state()
    print(f"[chaos] outage survived: {result.stats['ok']} ok rows, "
          f"2 quarantined, {breaker.spilled_puts} puts journaled")

    service.start()                         # same port, same disk cache
    deadline = time.monotonic() + 30.0
    while breaker.breaker_state()["journal_entries"] > 0:
        assert time.monotonic() < deadline, "journal never replayed"
        cache.get("00" * 32)                # half-open probe / replay tick
        time.sleep(0.02)
    assert breaker.state == "closed", breaker.breaker_state()
    assert breaker.replayed_puts >= 1, breaker.breaker_state()
    remote = ResultCache(url=service.url, backend="http")
    assert len(remote.keys()) == tasks - 2, remote.keys()
    print(f"[chaos] recovery: {breaker.replayed_puts} puts replayed, "
          f"remote holds {tasks - 2} rows")

    # the killer was never cached: a clean run re-solves exactly it ...
    second_cache, _ = _breaker_cache(service.url, tmp / "journal-2")
    second = run_campaign(spec, cache=second_cache, workers=0)
    assert second.stats["errors"] == 0, second.stats
    assert second.stats["cache_hits"] == tasks - 2, second.stats
    # ... and after that back-fill, a third run is pure cache hits
    third_cache, _ = _breaker_cache(service.url, tmp / "journal-3")
    third = run_campaign(spec, cache=third_cache, workers=0)
    assert third.stats["cache_hits"] == tasks, third.stats
    service.kill()
    print(f"[chaos] warm re-runs: {second.stats['cache_hits']} then "
          f"{third.stats['cache_hits']}/{tasks} hits — chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
