"""Minimal stdlib-only PEP 517 build backend.

This environment has no network access and no ``wheel`` package, so the
stock setuptools backend cannot produce wheels.  This backend builds valid
wheels (regular and editable) for the pure-Python ``repro`` package using
only the standard library, which makes ``pip install -e .`` work offline.

It is intentionally specific to this project: metadata is read from
``pyproject.toml`` and the code lives under ``src/``.
"""

from __future__ import annotations

import base64
import hashlib
import os
import tomllib
import zipfile

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _project() -> dict:
    with open(os.path.join(_ROOT, "pyproject.toml"), "rb") as fh:
        return tomllib.load(fh)["project"]


def _dist_info_name() -> str:
    proj = _project()
    return f"{proj['name']}-{proj['version']}.dist-info"


def _metadata_text() -> str:
    proj = _project()
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {proj['name']}",
        f"Version: {proj['version']}",
    ]
    if "description" in proj:
        lines.append(f"Summary: {proj['description']}")
    if "requires-python" in proj:
        lines.append(f"Requires-Python: {proj['requires-python']}")
    for dep in proj.get("dependencies", []):
        lines.append(f"Requires-Dist: {dep}")
    return "\n".join(lines) + "\n"


_WHEEL_TEXT = (
    "Wheel-Version: 1.0\n"
    "Generator: repro-offline-backend\n"
    "Root-Is-Purelib: true\n"
    "Tag: py3-none-any\n"
)


def _record_entry(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest())
    return f"{name},sha256={digest.rstrip(b'=').decode()},{len(data)}"


def _write_wheel(wheel_directory: str, payload: dict[str, bytes]) -> str:
    proj = _project()
    fname = f"{proj['name']}-{proj['version']}-py3-none-any.whl"
    dist_info = _dist_info_name()
    payload = dict(payload)
    payload[f"{dist_info}/METADATA"] = _metadata_text().encode()
    payload[f"{dist_info}/WHEEL"] = _WHEEL_TEXT.encode()
    record_name = f"{dist_info}/RECORD"
    record_lines = [_record_entry(name, data) for name, data in payload.items()]
    record_lines.append(f"{record_name},,")
    payload[record_name] = ("\n".join(record_lines) + "\n").encode()
    path = os.path.join(wheel_directory, fname)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, data in payload.items():
            zf.writestr(name, data)
    return fname


def _package_payload() -> dict[str, bytes]:
    payload: dict[str, bytes] = {}
    src = os.path.join(_ROOT, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, src).replace(os.sep, "/")
            with open(full, "rb") as fh:
                payload[rel] = fh.read()
    return payload


# ---------------------------------------------------------------- PEP 517
def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    dist_info = _dist_info_name()
    target = os.path.join(metadata_directory, dist_info)
    os.makedirs(target, exist_ok=True)
    with open(os.path.join(target, "METADATA"), "w") as fh:
        fh.write(_metadata_text())
    with open(os.path.join(target, "WHEEL"), "w") as fh:
        fh.write(_WHEEL_TEXT)
    return dist_info


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    return _write_wheel(wheel_directory, _package_payload())


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    src = os.path.join(_ROOT, "src")
    proj = _project()
    payload = {f"{proj['name']}.pth": (src + "\n").encode()}
    return _write_wheel(wheel_directory, payload)
