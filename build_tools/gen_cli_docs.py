#!/usr/bin/env python
"""Generate ``docs/CLI.md`` from the live argparse tree.

The CLI reference is *derived*, never hand-edited: this script walks
``repro.cli.build_parser()`` — every subcommand, nested subcommand,
option, default and help string — and renders deterministic markdown.

Usage::

    PYTHONPATH=src python build_tools/gen_cli_docs.py           # rewrite
    PYTHONPATH=src python build_tools/gen_cli_docs.py --check   # CI drift gate

``--check`` regenerates to memory and exits 1 if the committed file
differs, so a CLI change that forgets to regenerate the docs fails the
build instead of silently rotting the reference.
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys
from pathlib import Path

# argparse wraps usage lines to the terminal width; pin it so the
# generated file is identical on laptops and CI runners alike
os.environ["COLUMNS"] = "79"

ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = ROOT / "docs" / "CLI.md"

HEADER = """\
# `python -m repro` — CLI reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: PYTHONPATH=src python build_tools/gen_cli_docs.py
     CI fails on drift via: ... gen_cli_docs.py --check -->

Every command below is dispatched by `repro.cli.build_parser()`; this
reference is generated from that argparse tree, so it cannot drift from
the implementation (CI regenerates it and fails on any diff).

Global invocation: `PYTHONPATH=src python -m repro <command> [options]`.
"""


def _describe_default(action: argparse.Action) -> str:
    if action.default is None or action.default is argparse.SUPPRESS:
        return ""
    if isinstance(action.default, bool):
        return "" if action.default is False else f"`{action.default}`"
    return f"`{action.default}`"


def _option_label(action: argparse.Action) -> str:
    if not action.option_strings:  # positional
        return f"`{action.dest}`"
    label = ", ".join(f"`{opt}`" for opt in action.option_strings)
    if action.nargs == 0 or isinstance(
        action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
    ):
        return label
    metavar = action.metavar or action.dest.upper()
    if action.choices is not None:
        metavar = "{" + ",".join(str(c) for c in action.choices) + "}"
    return f"{label} `{metavar}`"


def _clean(text: str | None) -> str:
    if not text:
        return ""
    return " ".join(text.split()).replace("|", "\\|")


def _subparser_actions(parser: argparse.ArgumentParser):
    return [
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]


def _render_parser(
    parser: argparse.ArgumentParser, path: list[str], out: list[str]
) -> None:
    """Render one (sub)command section, then recurse into its children."""
    subactions = _subparser_actions(parser)
    if path:
        depth = min(len(path) + 1, 4)
        out.append(f"{'#' * depth} `{' '.join(path)}`\n")
        help_lines = _clean(getattr(parser, "description", None))
        if help_lines:
            out.append(help_lines + "\n")
        usage = parser.format_usage().replace("usage: ", "").rstrip()
        out.append("```text\n" + usage + "\n```\n")
    rows = []
    for action in parser._actions:
        if isinstance(
            action, (argparse._HelpAction, argparse._SubParsersAction)
        ):
            continue
        rows.append(
            f"| {_option_label(action)} "
            f"| {_describe_default(action)} "
            f"| {_clean(action.help)} |"
        )
    if rows and path:
        out.append("| option | default | description |")
        out.append("|--------|---------|-------------|")
        out.extend(rows)
        out.append("")
    for subaction in subactions:
        # choices map names to subparsers; _name_parser_map preserves the
        # registration order (dict) — deterministic across runs
        seen = set()
        for name, sub in subaction.choices.items():
            if id(sub) in seen:  # aliased names render once
                continue
            seen.add(id(sub))
            help_text = ""
            for choice_action in subaction._choices_actions:
                if choice_action.dest == name:
                    help_text = _clean(choice_action.help)
            sub.description = sub.description or help_text
            _render_parser(sub, [*path, name], out)


def generate() -> str:
    from repro.cli import build_parser

    parser = build_parser()
    out: list[str] = [HEADER]
    toc: list[str] = ["## Commands\n"]
    for subaction in _subparser_actions(parser):
        for choice_action in subaction._choices_actions:
            toc.append(
                f"- [`{choice_action.dest}`](#{choice_action.dest}) — "
                f"{_clean(choice_action.help)}"
            )
    out.extend(toc)
    out.append("")
    _render_parser(parser, [], out)
    return "\n".join(out).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    args = argparse.ArgumentParser(description=__doc__)
    args.add_argument(
        "--check", action="store_true",
        help="exit 1 if docs/CLI.md is stale instead of rewriting it",
    )
    opts = args.parse_args(argv)
    sys.path.insert(0, str(ROOT / "src"))
    text = generate()
    if opts.check:
        current = DOC_PATH.read_text() if DOC_PATH.exists() else ""
        if current != text:
            diff = difflib.unified_diff(
                current.splitlines(), text.splitlines(),
                fromfile="docs/CLI.md (committed)",
                tofile="docs/CLI.md (regenerated)",
                lineterm="",
            )
            print("\n".join(diff))
            print(
                "\ndocs/CLI.md is stale — regenerate with:\n"
                "  PYTHONPATH=src python build_tools/gen_cli_docs.py",
                file=sys.stderr,
            )
            return 1
        print("docs/CLI.md is up to date")
        return 0
    DOC_PATH.parent.mkdir(exist_ok=True)
    DOC_PATH.write_text(text)
    print(f"[wrote {DOC_PATH}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
