#!/usr/bin/env python
"""Validate a Prometheus exposition payload from the solver service.

The CI observability smoke drives a campaign through a live ``repro
serve`` instance, scrapes ``GET /metrics``, and pipes the payload
through this script.  It checks three things:

* every line of the payload obeys the text exposition format 0.0.4
  (``# HELP``/``# TYPE`` comments, ``name{labels} value`` samples);
* the metric families the dashboards rely on are all present
  (``REQUIRED_FAMILIES``);
* traffic actually registered — ``repro_solves_total`` summed over its
  ``(engine, status)`` series is positive, so a silently-unwired
  metrics layer fails the build rather than scraping zeros forever.

Usage::

    python build_tools/check_metrics.py http://127.0.0.1:8321/metrics
    python build_tools/check_metrics.py /tmp/metrics.txt
"""

from __future__ import annotations

import re
import sys
import urllib.request

#: Families the service must always export (see docs/OBSERVABILITY.md).
REQUIRED_FAMILIES = (
    "repro_solve_requests_total",
    "repro_solves_total",
    "repro_coalesced_total",
    "repro_cache_served_total",
    "repro_solve_errors_total",
    "repro_cache_ops_total",
    "repro_inflight_solves",
    "repro_solve_seconds",
    "repro_request_seconds",
    "repro_http_requests_total",
)

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_NAME}) .+$")
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(
    rf'^({_NAME})'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (-?(\d+(\.\d+)?([eE][+-]?\d+)?|[0-9.]+)|\+Inf|-Inf|NaN)$"
)


def _fail(message: str) -> None:
    print(f"METRICS: {message}", file=sys.stderr)
    raise SystemExit(1)


def fetch(source: str) -> str:
    if source.startswith(("http://", "https://")):
        with urllib.request.urlopen(source, timeout=30) as response:
            return response.read().decode("utf-8")
    with open(source, encoding="utf-8") as handle:
        return handle.read()


def check(text: str) -> dict[str, float]:
    """Validate the payload; return ``{sample line -> value}``."""
    if not text.strip():
        _fail("empty exposition payload")
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if not (_HELP_RE.match(line) or _TYPE_RE.match(line)):
                _fail(f"line {lineno}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            _fail(f"line {lineno}: malformed sample: {line!r}")
        samples[line.rsplit(" ", 1)[0]] = float(match.group(4))
    for family in REQUIRED_FAMILIES:
        if f"# TYPE {family} " not in text:
            _fail(f"required family missing: {family}")
    solves = sum(
        value for name, value in samples.items()
        if name.startswith("repro_solves_total")
    )
    if solves <= 0:
        _fail("repro_solves_total is zero: no solve was ever counted")
    return samples


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    samples = check(fetch(argv[1]))
    solves = sum(
        value for name, value in samples.items()
        if name.startswith("repro_solves_total")
    )
    print(
        f"metrics OK: {len(samples)} samples, "
        f"{len(REQUIRED_FAMILIES)} required families, "
        f"{solves:.0f} solves counted"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
