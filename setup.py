"""Minimal packaging metadata (the project is usually run from source
with ``PYTHONPATH=src``; installing is only needed for the optional
extras, e.g. ``pip install -e .[milp]`` for the MILP engine backend)."""
from setuptools import find_packages, setup

setup(
    name="repro-conf-cluster-benoitr07",
    version="0.10.0",
    description=(
        "Reproduction of Benoit & Robert (CLUSTER 2007): mapping "
        "pipeline and fork graphs onto heterogeneous platforms"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    extras_require={
        # backend for repro.algorithms.milp (engine="milp"); an installed
        # scipy also works as a fallback without this extra
        "milp": ["pulp>=2.7"],
    },
)
