"""Crash-isolated workers: quarantine, rescue, and task timeouts.

The fault hook (`REPRO_FAULT_KILL_INSTANCE`) SIGKILLs any *worker*
process that picks up a task of the named instance — the closest
reproducible stand-in for an OOM kill or a segfaulting native library.
The runner must quarantine exactly the killer tasks and keep every
surviving row bit-identical to a fault-free serial run.
"""

from __future__ import annotations

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    run_campaign,
    strip_volatile,
)
from repro.campaign.runner import _FAULT_KILL_ENV


def _instance(iid: str, works: list) -> dict:
    return {
        "type": "explicit",
        "id": iid,
        "application": {"kind": "pipeline", "works": works},
        "platform": {"kind": "platform", "speeds": [1.0, 1.0, 1.0]},
    }


def crash_spec() -> CampaignSpec:
    return CampaignSpec(
        name="crashy",
        instances=(
            _instance("alpha", [14.0, 4.0, 2.0, 4.0]),
            _instance("victim", [3.0, 3.0, 3.0]),
            _instance("omega", [5.0, 1.0, 2.0, 8.0]),
        ),
        objectives=("period", "latency"),
        solvers=({"name": "exact", "mode": "auto", "exact_fallback": True},),
    )


def test_killer_task_is_quarantined_and_survivors_identical(monkeypatch):
    spec = crash_spec()
    reference = run_campaign(spec, workers=0)
    monkeypatch.setenv(_FAULT_KILL_ENV, "victim")
    # chunk_size=3 puts the killer in a chunk with innocent neighbours,
    # exercising the bisection rescue, not just single-task quarantine
    result = run_campaign(spec, workers=2, chunk_size=3)
    crashed = [r for r in result.rows if r["instance_id"] == "victim"]
    survivors = [r for r in result.rows if r["instance_id"] != "victim"]
    reference_survivors = [
        r for r in reference.rows if r["instance_id"] != "victim"
    ]
    assert len(crashed) == 2
    for row in crashed:
        assert row["status"] == "error"
        assert row["error_type"] == "WorkerCrashError"
        assert row["resolution"] == "crashed"
        assert row["execution"] == {"status": "crashed"}
    assert [strip_volatile(r) for r in survivors] == \
        [strip_volatile(r) for r in reference_survivors]
    assert result.stats["crashed"] == 2
    assert result.stats["errors"] == 2


def test_serial_reference_path_is_immune_to_the_fault_hook(monkeypatch):
    monkeypatch.setenv(_FAULT_KILL_ENV, "victim")
    result = run_campaign(crash_spec(), workers=0)
    assert result.stats["errors"] == 0
    assert result.stats["crashed"] == 0


def test_crashed_rows_are_never_cached(tmp_path, monkeypatch):
    spec = crash_spec()
    cache = ResultCache(tmp_path / "cache")
    monkeypatch.setenv(_FAULT_KILL_ENV, "victim")
    first = run_campaign(spec, cache=cache, workers=2, chunk_size=1)
    assert first.stats["crashed"] == 2
    # the crash is transient runner state: once the fault clears, the
    # same campaign re-solves exactly the quarantined tasks
    monkeypatch.delenv(_FAULT_KILL_ENV)
    healed = run_campaign(spec, cache=cache, workers=2, chunk_size=1)
    assert healed.stats["errors"] == 0
    assert healed.stats["crashed"] == 0
    reference = run_campaign(spec, workers=0)
    assert [strip_volatile(r) for r in healed.rows] == \
        [strip_volatile(r) for r in reference.rows]


def test_task_timeout_converts_runaway_solve_into_budgeted_row(tmp_path):
    # a 10-branch fork-join on a heterogeneous platform: the unbudgeted
    # exact solve runs for minutes; the runner's timeout turns it into
    # an anytime row in ~0.2s
    spec = CampaignSpec(
        name="runaway",
        instances=(
            {
                "type": "explicit",
                "id": "big",
                "application": {
                    "kind": "fork-join",
                    "root_work": 2.0,
                    "branch_works": [3, 1, 4, 1, 5, 9, 2, 6, 5, 3],
                    "join_work": 1.5,
                },
                "platform": {
                    "kind": "platform", "speeds": [1, 2, 3, 2, 1, 2]
                },
            },
        ),
        objectives=("latency",),
        solvers=({"name": "exact", "mode": "exact", "engine": "bnb"},),
    )
    cache = ResultCache(tmp_path / "cache")
    result = run_campaign(spec, cache=cache, workers=0, task_timeout=0.2)
    (row,) = result.rows
    assert row["status"] == "ok"
    execution = row["execution"]
    assert execution["status"] == "budget_exhausted"
    assert execution["reason"] == "max_seconds"
    assert execution["interrupted"] == "task-timeout"
    assert execution["lower_bound"] > 0.0
    assert execution["gap"] >= 0.0
    assert result.stats["budget_exhausted"] == 1
    # the timeout is runner state, not task content — caching the row
    # would alias the untimed cache key
    assert cache.keys() == []


def test_config_budget_rows_are_cached(tmp_path):
    spec = CampaignSpec(
        name="budgeted",
        instances=(
            {
                "type": "explicit",
                "id": "big",
                "application": {
                    "kind": "pipeline",
                    "works": [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8],
                },
                "platform": {
                    "kind": "platform", "speeds": [1, 2, 3, 2, 1, 2, 3, 1]
                },
            },
        ),
        objectives=("period",),
        solvers=(
            {"name": "exact", "mode": "exact", "engine": "bnb",
             "max_nodes": 2000},
        ),
    )
    cache = ResultCache(tmp_path / "cache")
    first = run_campaign(spec, cache=cache, workers=0)
    (row,) = first.rows
    assert row["execution"]["status"] == "budget_exhausted"
    assert "interrupted" not in row["execution"]
    assert len(cache.keys()) == 1   # the budget is task content: cacheable
    again = run_campaign(spec, cache=cache, workers=0)
    assert again.stats["cache_hits"] == 1
    assert again.stats["budget_exhausted"] == 1
    assert strip_volatile(again.rows[0]) == strip_volatile(row)
