"""Tests for the content-addressed result cache."""

import json

from repro.campaign import CACHE_VERSION, ResultCache


KEY_A = "aa" + "0" * 62
KEY_B = "ab" + "0" * 62


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"status": "ok", "value": 1.5})
        assert cache.get(KEY_A) == {"status": "ok", "value": 1.5}
        assert cache.stats == {"hits": 1, "misses": 1, "puts": 1}

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(KEY_A, {"value": 2.0})
        again = ResultCache(tmp_path)
        assert again.get(KEY_A) == {"value": 2.0}
        assert KEY_A in again
        assert KEY_B not in again

    def test_sharding_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        assert (tmp_path / "aa.jsonl").exists()
        assert (tmp_path / "ab.jsonl").exists()
        assert len(cache) == 2

    def test_last_put_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_A, {"value": 2})
        assert ResultCache(tmp_path).get(KEY_A) == {"value": 2}

    def test_corrupt_lines_degrade_to_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        shard = tmp_path / "aa.jsonl"
        shard.write_text(
            "not json at all\n"
            + json.dumps({"version": CACHE_VERSION - 1, "key": KEY_A,
                          "row": {"value": "stale"}}) + "\n"
            + json.dumps({"wrong": "shape"}) + "\n"
        )
        assert ResultCache(tmp_path).get(KEY_A) is None

    def test_returned_rows_are_copies(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        row = cache.get(KEY_A)
        row["value"] = 99
        assert cache.get(KEY_A) == {"value": 1}
