"""Contract tests for the result cache, run against every backend.

The parametrized ``cache`` fixture makes each contract test execute once
per registered backend (jsonl, sqlite, http) — the storage formats must
be behaviourally interchangeable.  The http backend runs against a live
in-process solver service (jsonl-backed), so "persists across
instances" means "persists server-side".  Backend-specific on-disk
details (shard files, append-only duplicates, sqlite version rows,
eviction clocks) get their own classes below.
"""

import json
import sqlite3
import threading
import time

import pytest

import repro.campaign.cache as cache_mod
from repro.campaign import CACHE_BACKENDS, CACHE_VERSION, ResultCache
from repro.core import ReproError


KEY_A = "aa" + "0" * 62
KEY_B = "ab" + "0" * 62
LOCAL_BACKENDS = ("jsonl", "sqlite")


@pytest.fixture(params=sorted(CACHE_BACKENDS))
def backend(request):
    return request.param


@pytest.fixture
def make_cache(tmp_path, backend):
    """Factory for :class:`ResultCache` instances over one shared store.

    Local backends re-open the same ``tmp_path`` directory; the http
    backend lazily starts one solver service per test and every instance
    becomes a remote client of it.
    """
    state = {}

    def factory():
        if backend == "http":
            if "server" not in state:
                from repro.service.server import make_server

                server = make_server(
                    port=0, cache=ResultCache(tmp_path / "server")
                )
                threading.Thread(
                    target=server.serve_forever, daemon=True
                ).start()
                state["server"] = server
            return ResultCache(url=state["server"].url, backend="http")
        return ResultCache(tmp_path, backend=backend)

    yield factory
    server = state.get("server")
    if server is not None:
        server.shutdown()
        server.server_close()
        server.service.close()


@pytest.fixture
def cache(make_cache):
    return make_cache()


class TestResultCacheContract:
    def test_miss_then_hit(self, cache):
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"status": "ok", "value": 1.5})
        assert cache.get(KEY_A) == {"status": "ok", "value": 1.5}
        assert cache.stats == {"hits": 1, "misses": 1, "puts": 1}

    def test_persists_across_instances(self, make_cache):
        make_cache().put(KEY_A, {"value": 2.0})
        again = make_cache()
        assert again.get(KEY_A) == {"value": 2.0}
        assert KEY_A in again
        assert KEY_B not in again

    def test_last_put_wins(self, make_cache, cache):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_A, {"value": 2})
        assert cache.get(KEY_A) == {"value": 2}
        assert make_cache().get(KEY_A) == {"value": 2}

    def test_len_and_keys(self, cache):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        cache.put(KEY_A, {"value": 3})  # overwrite, not a new key
        assert len(cache) == 2
        assert sorted(cache.keys()) == [KEY_A, KEY_B]

    def test_returned_rows_are_copies(self, cache):
        cache.put(KEY_A, {"value": 1})
        row = cache.get(KEY_A)
        row["value"] = 99
        assert cache.get(KEY_A) == {"value": 1}

    def test_hits_never_alias_nested_state(self, cache):
        # regression: `get` used to return a *shallow* copy, so callers
        # shared the nested "mapping" dict with the in-memory shard —
        # mutating one hit poisoned every later hit for the same key
        cache.put(KEY_A, {"status": "ok",
                          "mapping": {"groups": [{"stages": [0, 1]}]}})
        first = cache.get(KEY_A)
        first["mapping"]["groups"][0]["stages"].append(99)
        first["mapping"]["poisoned"] = True
        second = cache.get(KEY_A)
        assert second == {"status": "ok",
                          "mapping": {"groups": [{"stages": [0, 1]}]}}

    def test_put_does_not_alias_callers_dict(self, cache):
        row = {"status": "ok", "mapping": {"groups": [1, 2]}}
        cache.put(KEY_A, row)
        row["mapping"]["groups"].append(3)
        assert cache.get(KEY_A)["mapping"]["groups"] == [1, 2]

    def test_storage_stats_shape(self, cache, backend):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        info = cache.storage_stats()
        assert info["backend"] == backend
        assert info["keys"] == 2
        assert info["files"] >= 1
        assert info["bytes"] > 0
        assert info["stale_records"] == 0

    def test_counters_reported_in_storage_stats(self, cache):
        # the hit/miss/put counters must surface identically through
        # storage_stats() on every backend (and through /v1/stats for a
        # service — covered in tests/service/)
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"value": 1})
        assert cache.get(KEY_A) == {"value": 1}
        info = cache.storage_stats()
        assert info["counters"] == {"hits": 1, "misses": 1, "puts": 1}
        assert info["counters"] == cache.stats

    def test_compact_preserves_every_row(self, make_cache, cache, backend):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_A, {"value": 2})
        cache.put(KEY_B, {"value": 9})
        info = cache.compact()
        assert info["backend"] == backend
        assert info["bytes_reclaimed"] >= 0
        assert info["records_evicted"] == 0
        assert cache.get(KEY_A) == {"value": 2}
        assert cache.get(KEY_B) == {"value": 9}
        reloaded = make_cache()
        assert reloaded.get(KEY_A) == {"value": 2}
        assert len(reloaded) == 2

    def test_compact_max_age_zero_evicts_everything(self, cache):
        # max_age_days=0 puts the horizon at "now"; every record was
        # written strictly before, so the policy empties the store
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        info = cache.compact(max_age_days=0)
        assert info["records_evicted"] == 2
        assert cache.get(KEY_A) is None
        assert cache.get(KEY_B) is None
        assert len(cache) == 0

    def test_compact_max_bytes_keeps_newest(self, cache):
        pad = "x" * 512
        cache.put(KEY_A, {"value": 1, "pad": pad})
        time.sleep(0.02)  # distinct write timestamps
        cache.put(KEY_B, {"value": 2, "pad": pad})
        # budget fits one ~600-byte record on every backend: the older
        # KEY_A goes, the newer KEY_B survives
        info = cache.compact(max_bytes=800)
        assert info["records_evicted"] == 1
        assert cache.get(KEY_A) is None
        assert cache.get(KEY_B) == {"value": 2, "pad": pad}

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path, backend="cloud")

    def test_http_backend_needs_url(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path, backend="http")

    def test_url_rejected_for_local_backends(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path, backend="jsonl", url="http://x")

    def test_local_backend_needs_root(self):
        with pytest.raises(ReproError):
            ResultCache(backend="sqlite")


class TestJsonlBackend:
    def test_sharding_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        assert (tmp_path / "aa.jsonl").exists()
        assert (tmp_path / "ab.jsonl").exists()
        assert len(cache) == 2

    def test_corrupt_lines_degrade_to_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        shard = tmp_path / "aa.jsonl"
        shard.write_text(
            "not json at all\n"
            + json.dumps({"version": CACHE_VERSION - 1, "key": KEY_A,
                          "row": {"value": "stale"}}) + "\n"
            + json.dumps({"wrong": "shape"}) + "\n"
        )
        assert ResultCache(tmp_path).get(KEY_A) is None

    def test_compact_drops_superseded_duplicate_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 0, "mapping": {"big": "x" * 200}})
        for i in range(20):  # 20 superseded re-puts of the same key
            cache.put(KEY_A, {"value": i + 1, "mapping": {"big": "x" * 200}})
        shard = tmp_path / "aa.jsonl"
        before = shard.stat().st_size
        assert cache.storage_stats()["stale_records"] == 20
        info = cache.compact()
        assert info["records_dropped"] == 20
        assert info["bytes_reclaimed"] > 0
        assert shard.stat().st_size < before
        assert sum(1 for line in shard.open() if line.strip()) == 1
        assert ResultCache(tmp_path).get(KEY_A)["value"] == 20
        # a second compact is a no-op
        assert cache.compact()["records_dropped"] == 0

    def test_torn_trailing_line_is_counted_and_repaired(self, tmp_path):
        # simulate a crash mid-append: the shard ends in half a record
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        shard = tmp_path / "aa.jsonl"
        whole = shard.read_text()
        line = json.dumps({"version": CACHE_VERSION, "key": KEY_A,
                           "row": {"value": 99}})
        shard.write_text(whole + line[: len(line) // 2])  # torn append
        fresh = ResultCache(tmp_path)
        # the torn write is lost (its key keeps the previous value)...
        assert fresh.get(KEY_A) == {"value": 1}
        assert fresh.get(KEY_B) == {"value": 2}
        stats = fresh.storage_stats()
        assert stats["corrupt_lines"] == 1
        assert stats["stale_records"] == 0
        # ...and compact repairs the shard in place
        info = fresh.compact()
        assert info["corrupt_dropped"] == 1
        assert info["records_dropped"] == 0
        repaired = ResultCache(tmp_path)
        assert repaired.get(KEY_A) == {"value": 1}
        assert repaired.storage_stats()["corrupt_lines"] == 0

    def test_compact_drops_corrupt_and_stale_version_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        shard = tmp_path / "aa.jsonl"
        with shard.open("a") as fh:
            fh.write("garbage line\n")
            fh.write(json.dumps({"version": CACHE_VERSION + 1,
                                 "key": KEY_B, "row": {}}) + "\n")
        fresh = ResultCache(tmp_path)
        stats = fresh.storage_stats()
        assert stats["stale_records"] == 1  # the version-mismatched record
        assert stats["corrupt_lines"] == 1  # the unparseable garbage line
        info = fresh.compact()
        assert info["records_dropped"] == 1
        assert info["corrupt_dropped"] == 1
        assert ResultCache(tmp_path).get(KEY_A) == {"value": 1}


class TestSqliteBackend:
    def test_single_database_file(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        assert (tmp_path / "cache.sqlite").exists()
        assert not list(tmp_path.glob("*.jsonl"))
        assert cache.storage_stats()["files"] == 1

    def test_durable_without_close(self, tmp_path):
        # every put commits: a killed campaign loses nothing
        ResultCache(tmp_path, backend="sqlite").put(KEY_A, {"value": 7})
        db = sqlite3.connect(tmp_path / "cache.sqlite")
        rows = db.execute("SELECT key, row FROM rows").fetchall()
        db.close()
        assert rows == [(KEY_A, '{"value":7}')]

    def test_stale_version_rows_skipped_and_compacted(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(KEY_A, {"value": 1})
        db = sqlite3.connect(tmp_path / "cache.sqlite")
        db.execute(
            "INSERT OR REPLACE INTO rows (key, version, row) "
            "VALUES (?, ?, ?)",
            (KEY_B, CACHE_VERSION + 1, '{"value": "future"}'),
        )
        db.commit()
        db.close()
        fresh = ResultCache(tmp_path, backend="sqlite")
        assert fresh.get(KEY_B) is None
        assert fresh.storage_stats()["stale_records"] == 1
        assert fresh.compact()["records_dropped"] == 1
        assert fresh.storage_stats()["stale_records"] == 0
        assert fresh.get(KEY_A) == {"value": 1}
        fresh.close()

    def test_corrupt_row_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(KEY_A, {"value": 1})
        db = sqlite3.connect(tmp_path / "cache.sqlite")
        db.execute("UPDATE rows SET row = 'not json' WHERE key = ?",
                   (KEY_A,))
        db.commit()
        db.close()
        assert ResultCache(tmp_path, backend="sqlite").get(KEY_A) is None


class TestEvictionPolicies:
    """Pinned-clock eviction behaviour of the local backends."""

    @pytest.fixture(params=LOCAL_BACKENDS)
    def local_backend(self, request):
        return request.param

    def test_age_horizon_is_precise(self, tmp_path, monkeypatch,
                                    local_backend):
        day = 86400.0
        t0 = 1_000_000_000.0
        monkeypatch.setattr(cache_mod, "_now", lambda: t0)
        cache = ResultCache(tmp_path, backend=local_backend)
        cache.put(KEY_A, {"value": "old"})
        monkeypatch.setattr(cache_mod, "_now", lambda: t0 + 10 * day)
        cache.put(KEY_B, {"value": "new"})
        info = cache.compact(max_age_days=5)
        assert info["records_evicted"] == 1
        assert cache.get(KEY_A) is None
        assert cache.get(KEY_B) == {"value": "new"}
        # stamps survive the rewrite: a reload under a wider horizon
        # keeps the young record
        cache.close()
        reloaded = ResultCache(tmp_path, backend=local_backend)
        assert reloaded.compact(max_age_days=20)["records_evicted"] == 0
        assert reloaded.get(KEY_B) == {"value": "new"}
        reloaded.close()

    def test_max_bytes_noop_when_under_budget(self, tmp_path, local_backend):
        cache = ResultCache(tmp_path, backend=local_backend)
        cache.put(KEY_A, {"value": 1})
        info = cache.compact(max_bytes=10_000_000)
        assert info["records_evicted"] == 0
        assert cache.get(KEY_A) == {"value": 1}
        cache.close()

    def test_pre_timestamp_jsonl_records_evicted_first(self, tmp_path):
        # a shard written before record timestamps existed: its records
        # read as age 0.0 and fall to any age policy
        shard = tmp_path / "aa.jsonl"
        shard.write_text(json.dumps({
            "version": CACHE_VERSION, "key": KEY_A,
            "row": {"value": "ancient"},
        }) + "\n")
        cache = ResultCache(tmp_path)
        cache.put(KEY_B, {"value": "fresh"})
        # one-year horizon: far older than the fresh record, far younger
        # than the epoch the stamp-less record is pinned to
        info = cache.compact(max_age_days=365)
        assert info["records_evicted"] == 1
        assert cache.get(KEY_A) is None
        assert cache.get(KEY_B) == {"value": "fresh"}

    def test_sqlite_schema_migration_adds_ts(self, tmp_path):
        # databases created before the ts column must open cleanly; the
        # migrated rows read as infinitely old
        db = sqlite3.connect(tmp_path / "cache.sqlite")
        db.execute(
            "CREATE TABLE rows (key TEXT PRIMARY KEY,"
            " version INTEGER NOT NULL, row TEXT NOT NULL)"
        )
        db.execute("INSERT INTO rows VALUES (?, ?, ?)",
                   (KEY_A, CACHE_VERSION, '{"value":1}'))
        db.commit()
        db.close()
        cache = ResultCache(tmp_path, backend="sqlite")
        assert cache.get(KEY_A) == {"value": 1}
        cache.put(KEY_B, {"value": 2})
        assert cache.compact(max_age_days=365)["records_evicted"] == 1
        assert cache.get(KEY_A) is None
        assert cache.get(KEY_B) == {"value": 2}
        cache.close()
