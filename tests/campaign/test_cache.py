"""Contract tests for the result cache, run against every backend.

The parametrized ``cache`` fixture makes each contract test execute once
per registered backend (jsonl, sqlite) — the two storage formats must be
behaviourally interchangeable.  Backend-specific on-disk details (shard
files, append-only duplicates, sqlite version rows) get their own
classes below.
"""

import json
import sqlite3

import pytest

from repro.campaign import CACHE_BACKENDS, CACHE_VERSION, ResultCache
from repro.core import ReproError


KEY_A = "aa" + "0" * 62
KEY_B = "ab" + "0" * 62


@pytest.fixture(params=sorted(CACHE_BACKENDS))
def backend(request):
    return request.param


@pytest.fixture
def cache(tmp_path, backend):
    return ResultCache(tmp_path, backend=backend)


class TestResultCacheContract:
    def test_miss_then_hit(self, cache):
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"status": "ok", "value": 1.5})
        assert cache.get(KEY_A) == {"status": "ok", "value": 1.5}
        assert cache.stats == {"hits": 1, "misses": 1, "puts": 1}

    def test_persists_across_instances(self, tmp_path, backend):
        ResultCache(tmp_path, backend=backend).put(KEY_A, {"value": 2.0})
        again = ResultCache(tmp_path, backend=backend)
        assert again.get(KEY_A) == {"value": 2.0}
        assert KEY_A in again
        assert KEY_B not in again

    def test_last_put_wins(self, tmp_path, cache, backend):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_A, {"value": 2})
        assert cache.get(KEY_A) == {"value": 2}
        assert ResultCache(tmp_path, backend=backend).get(KEY_A) == \
            {"value": 2}

    def test_len_and_keys(self, cache):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        cache.put(KEY_A, {"value": 3})  # overwrite, not a new key
        assert len(cache) == 2
        assert sorted(cache.keys()) == [KEY_A, KEY_B]

    def test_returned_rows_are_copies(self, cache):
        cache.put(KEY_A, {"value": 1})
        row = cache.get(KEY_A)
        row["value"] = 99
        assert cache.get(KEY_A) == {"value": 1}

    def test_hits_never_alias_nested_state(self, cache):
        # regression: `get` used to return a *shallow* copy, so callers
        # shared the nested "mapping" dict with the in-memory shard —
        # mutating one hit poisoned every later hit for the same key
        cache.put(KEY_A, {"status": "ok",
                          "mapping": {"groups": [{"stages": [0, 1]}]}})
        first = cache.get(KEY_A)
        first["mapping"]["groups"][0]["stages"].append(99)
        first["mapping"]["poisoned"] = True
        second = cache.get(KEY_A)
        assert second == {"status": "ok",
                          "mapping": {"groups": [{"stages": [0, 1]}]}}

    def test_put_does_not_alias_callers_dict(self, cache):
        row = {"status": "ok", "mapping": {"groups": [1, 2]}}
        cache.put(KEY_A, row)
        row["mapping"]["groups"].append(3)
        assert cache.get(KEY_A)["mapping"]["groups"] == [1, 2]

    def test_storage_stats_shape(self, cache, backend):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        info = cache.storage_stats()
        assert info["backend"] == backend
        assert info["keys"] == 2
        assert info["files"] >= 1
        assert info["bytes"] > 0
        assert info["stale_records"] == 0

    def test_compact_preserves_every_row(self, tmp_path, cache, backend):
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_A, {"value": 2})
        cache.put(KEY_B, {"value": 9})
        info = cache.compact()
        assert info["backend"] == backend
        assert info["bytes_reclaimed"] >= 0
        assert cache.get(KEY_A) == {"value": 2}
        assert cache.get(KEY_B) == {"value": 9}
        reloaded = ResultCache(tmp_path, backend=backend)
        assert reloaded.get(KEY_A) == {"value": 2}
        assert len(reloaded) == 2

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path, backend="cloud")


class TestJsonlBackend:
    def test_sharding_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        assert (tmp_path / "aa.jsonl").exists()
        assert (tmp_path / "ab.jsonl").exists()
        assert len(cache) == 2

    def test_corrupt_lines_degrade_to_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        shard = tmp_path / "aa.jsonl"
        shard.write_text(
            "not json at all\n"
            + json.dumps({"version": CACHE_VERSION - 1, "key": KEY_A,
                          "row": {"value": "stale"}}) + "\n"
            + json.dumps({"wrong": "shape"}) + "\n"
        )
        assert ResultCache(tmp_path).get(KEY_A) is None

    def test_compact_drops_superseded_duplicate_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 0, "mapping": {"big": "x" * 200}})
        for i in range(20):  # 20 superseded re-puts of the same key
            cache.put(KEY_A, {"value": i + 1, "mapping": {"big": "x" * 200}})
        shard = tmp_path / "aa.jsonl"
        before = shard.stat().st_size
        assert cache.storage_stats()["stale_records"] == 20
        info = cache.compact()
        assert info["records_dropped"] == 20
        assert info["bytes_reclaimed"] > 0
        assert shard.stat().st_size < before
        assert sum(1 for line in shard.open() if line.strip()) == 1
        assert ResultCache(tmp_path).get(KEY_A)["value"] == 20
        # a second compact is a no-op
        assert cache.compact()["records_dropped"] == 0

    def test_compact_drops_corrupt_and_stale_version_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"value": 1})
        shard = tmp_path / "aa.jsonl"
        with shard.open("a") as fh:
            fh.write("garbage line\n")
            fh.write(json.dumps({"version": CACHE_VERSION + 1,
                                 "key": KEY_B, "row": {}}) + "\n")
        fresh = ResultCache(tmp_path)
        assert fresh.storage_stats()["stale_records"] == 2
        assert fresh.compact()["records_dropped"] == 2
        assert ResultCache(tmp_path).get(KEY_A) == {"value": 1}


class TestSqliteBackend:
    def test_single_database_file(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(KEY_A, {"value": 1})
        cache.put(KEY_B, {"value": 2})
        assert (tmp_path / "cache.sqlite").exists()
        assert not list(tmp_path.glob("*.jsonl"))
        assert cache.storage_stats()["files"] == 1

    def test_durable_without_close(self, tmp_path):
        # every put commits: a killed campaign loses nothing
        ResultCache(tmp_path, backend="sqlite").put(KEY_A, {"value": 7})
        db = sqlite3.connect(tmp_path / "cache.sqlite")
        rows = db.execute("SELECT key, row FROM rows").fetchall()
        db.close()
        assert rows == [(KEY_A, '{"value":7}')]

    def test_stale_version_rows_skipped_and_compacted(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(KEY_A, {"value": 1})
        db = sqlite3.connect(tmp_path / "cache.sqlite")
        db.execute(
            "INSERT OR REPLACE INTO rows (key, version, row) "
            "VALUES (?, ?, ?)",
            (KEY_B, CACHE_VERSION + 1, '{"value": "future"}'),
        )
        db.commit()
        db.close()
        fresh = ResultCache(tmp_path, backend="sqlite")
        assert fresh.get(KEY_B) is None
        assert fresh.storage_stats()["stale_records"] == 1
        assert fresh.compact()["records_dropped"] == 1
        assert fresh.storage_stats()["stale_records"] == 0
        assert fresh.get(KEY_A) == {"value": 1}
        fresh.close()

    def test_corrupt_row_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(KEY_A, {"value": 1})
        db = sqlite3.connect(tmp_path / "cache.sqlite")
        db.execute("UPDATE rows SET row = 'not json' WHERE key = ?",
                   (KEY_A,))
        db.commit()
        db.close()
        assert ResultCache(tmp_path, backend="sqlite").get(KEY_A) is None
