"""The ``timing`` block: present on every row, volatile, trace spans."""

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    VOLATILE_FIELDS,
    run_campaign,
    strip_volatile,
)
from repro.campaign.runner import execute_tasks, solve_task
from repro.campaign.spec import Task
from repro.obs import Tracer, read_spans

TIMING_KEYS = [
    "seconds", "engine", "status", "objective", "nodes", "pruned",
    "memo_hits", "budget_reason", "graph", "n", "p",
]


def small_spec(**overrides):
    fields = dict(
        name="timing",
        instances=(
            {"type": "random", "graph": "pipeline", "count": 3, "seed": 11,
             "n": [3, 4], "p": 3},
        ),
        objectives=("period",),
        solvers=(
            {"name": "exact", "mode": "auto", "exact_fallback": True},
        ),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def _poison_task(index=0):
    return Task(
        index=index, instance_id="poisoned",
        instance={
            "kind": "instance",
            "application": {"kind": "pipeline", "works": [-1.0, 2.0]},
            "platform": {"kind": "platform", "speeds": [1.0]},
            "allow_data_parallel": False,
        },
        objective="period", period_bound=None, latency_bound=None,
        solver={"name": "exact", "mode": "auto", "exact_fallback": True},
    )


class TestTimingBlock:
    def test_every_row_carries_timing(self):
        result = run_campaign(small_spec(), workers=0)
        assert result.rows
        for row in result.rows:
            timing = row["timing"]
            assert list(timing) == TIMING_KEYS
            assert timing["seconds"] >= 0.0
            assert timing["engine"] == row["algorithm"]
            assert timing["status"] == "completed"
            assert timing["objective"] == "period"
            assert timing["graph"] == "pipeline"
            assert timing["n"] >= 3 and timing["p"] == 3

    def test_timing_is_volatile(self):
        # regression guard for the VOLATILE_FIELDS contract: wall time
        # and memo hits legitimately differ between runs, so timing must
        # never enter bit-identity comparisons or cache keys
        assert "timing" in VOLATILE_FIELDS
        row = {"index": 0, "timing": {"seconds": 1.0}, "status": "ok"}
        assert "timing" not in strip_volatile(row)

    def test_serial_and_parallel_identical_up_to_timing(self):
        spec = small_spec()
        serial = run_campaign(spec, workers=0)
        parallel = run_campaign(spec, workers=2, chunk_size=1)
        assert [strip_volatile(r) for r in serial.rows] == \
            [strip_volatile(r) for r in parallel.rows]

    def test_error_rows_carry_timing_too(self):
        payload, seconds = solve_task(_poison_task())
        assert payload["status"] == "error"
        timing = payload["timing"]
        assert timing["status"] == "error"
        assert timing["engine"] is None
        assert timing["seconds"] == seconds

    def test_timing_rides_inside_the_cached_payload(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        cold = run_campaign(spec, cache=cache, workers=0)
        warm = run_campaign(spec, cache=cache, workers=0)
        assert warm.stats["cache_hits"] == warm.stats["tasks"]
        # the warm rows replay the original solves' timing blocks
        for cold_row, warm_row in zip(cold.rows, warm.rows):
            assert warm_row["timing"] == cold_row["timing"]

    def test_solve_engine_hot_path_unchanged(self):
        # the unbudgeted, untraced path must not grow per-node callbacks:
        # SolveStats reads counters the search already kept, after the
        # solve.  Spot-check that meta and timing agree exactly.
        payload, _ = solve_task(Task(
            index=0, instance_id="hot",
            instance={
                "kind": "instance",
                "application": {"kind": "pipeline",
                                "works": [3.0, 5.0, 2.0, 4.0]},
                "platform": {"kind": "platform", "speeds": [2.0, 1.0, 1.0]},
                "allow_data_parallel": False,
            },
            objective="period", period_bound=None, latency_bound=None,
            solver={"name": "exact", "mode": "exact", "engine": "bnb"},
        ))
        timing = payload["timing"]
        assert timing["engine"] == "bnb"
        assert timing["nodes"] > 0
        assert timing["pruned"] is not None


class TestRunTracing:
    def test_campaign_spans(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        trace_path = tmp_path / "spans.jsonl"
        with Tracer(trace_path) as tracer:
            result = run_campaign(spec, cache=cache, workers=0,
                                  tracer=tracer)
        spans = read_spans(trace_path)
        names = [s["span"] for s in spans]
        tasks = result.stats["tasks"]
        assert names.count("cache-get") == tasks
        assert names.count("solve") == tasks
        assert names.count("cache-put") == tasks
        assert names[-1] == "campaign"
        # one trace id stamps the whole run
        assert len({s["trace"] for s in spans}) == 1
        campaign = spans[-1]
        assert campaign["tasks"] == tasks and campaign["ok"] == tasks
        hits = [s for s in spans if s["span"] == "cache-get" and s["hit"]]
        assert hits == []                     # cold run: all misses
        solve = next(s for s in spans if s["span"] == "solve")
        assert solve["engine"] and solve["status"] == "completed"

    def test_warm_run_emits_hit_spans_and_no_solves(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        run_campaign(spec, cache=cache, workers=0)
        trace_path = tmp_path / "spans.jsonl"
        with Tracer(trace_path) as tracer:
            run_campaign(spec, cache=cache, workers=0, tracer=tracer)
        spans = read_spans(trace_path)
        gets = [s for s in spans if s["span"] == "cache-get"]
        assert gets and all(s["hit"] for s in gets)
        assert not any(s["span"] == "solve" for s in spans)

    def test_parallel_run_traces_from_the_parent(self, tmp_path):
        # workers cannot share the trace file; solve spans are emitted at
        # consume time in the parent with the measured wall seconds
        spec = small_spec()
        trace_path = tmp_path / "spans.jsonl"
        with Tracer(trace_path) as tracer:
            result = run_campaign(spec, workers=2, chunk_size=1,
                                  tracer=tracer)
        spans = read_spans(trace_path)
        solves = [s for s in spans if s["span"] == "solve"]
        assert len(solves) == result.stats["tasks"]

    def test_null_tracer_is_default(self):
        # no tracer argument: no spans, no file, rows unaffected
        result = run_campaign(small_spec(), workers=0)
        assert result.stats["errors"] == 0

    def test_execute_tasks_spans_carry_explicit_trace(self, tmp_path):
        tasks = [_poison_task()]
        trace_path = tmp_path / "spans.jsonl"
        with Tracer(trace_path) as tracer:
            rows = execute_tasks(tasks, tracer=tracer, trace="fixed01")
        assert rows[0]["status"] == "error"
        spans = read_spans(trace_path)
        assert spans and all(s["trace"] == "fixed01" for s in spans)
        solve = next(s for s in spans if s["span"] == "solve")
        assert solve["status"] == "error"


class TestTimingBreakdownReport:
    def test_breakdown_table(self):
        from repro.campaign import timing_breakdown

        result = run_campaign(small_spec(), workers=0)
        text = timing_breakdown(result)
        assert "engine timing breakdown" in text
        assert "nodes" in text and "memo hits" in text

    def test_empty_without_timing(self):
        from repro.campaign import timing_breakdown

        rows = [{"status": "ok", "seconds": 0.1}]      # pre-timing row
        assert timing_breakdown(rows) == ""


@pytest.mark.parametrize("workers", [0, 2])
def test_saved_rows_round_trip_timing(tmp_path, workers):
    from repro.campaign import load_rows, save_rows

    result = run_campaign(small_spec(), workers=workers)
    path = tmp_path / "rows.jsonl"
    save_rows(path, result)
    loaded = load_rows(path)
    assert [r["timing"] for r in loaded.rows] == \
        [r["timing"] for r in result.rows]
