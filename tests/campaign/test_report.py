"""Tests for campaign aggregation: summaries, gaps, Pareto comparisons."""

import pytest

import repro
from repro.campaign import (
    CampaignSpec,
    ResultCache,
    heuristic_gap,
    pareto_comparison,
    run_campaign,
    summarize,
)
from repro.core import ReproError


def quality_result():
    spec = CampaignSpec(
        name="quality",
        instances=(
            {"type": "random", "graph": "pipeline", "count": 4, "seed": 21,
             "n": [4, 6], "p": [4, 5], "work_high": 9, "speed_high": 4},
        ),
        objectives=("period",),
        solvers=(
            {"name": "exact", "mode": "auto", "exact_fallback": True},
            {"name": "portfolio", "mode": "heuristic", "seed": 1},
            {"name": "random", "mode": "random", "seed": 2, "samples": 4},
        ),
    )
    return run_campaign(spec, workers=0)


class TestSummarize:
    def test_counts_and_columns(self):
        result = quality_result()
        text = summarize(result, title="T")
        assert text.splitlines()[0] == "T"
        assert "exact" in text and "portfolio" in text and "random" in text
        # every solver row reports 4 tasks, 4 ok, 0 errors
        for line in text.splitlines()[2:]:
            cells = [c.strip() for c in line.split("|")]
            if cells[0] in ("exact", "portfolio", "random"):
                assert cells[2:5] == ["4", "4", "0"]

    def test_accepts_plain_row_lists(self):
        result = quality_result()
        assert summarize(result.rows) == summarize(result)

    def test_resolution_breakdown_columns(self, tmp_path):
        spec = CampaignSpec(
            name="res",
            instances=(
                {"type": "explicit", "id": "np",
                 "application": {"kind": "pipeline",
                                 "works": [9.0, 2.0, 7.0]},
                 "platform": {"kind": "platform", "speeds": [3.0, 1.0]}},
            ),
            objectives=("period",),
            solvers=({"name": "auto"},),
        )
        cache = ResultCache(tmp_path)
        run_campaign(spec, cache=cache, workers=0)
        resumed = run_campaign(spec, cache=cache, workers=0,
                               retry_errors=True)
        text = summarize(resumed)
        header = [c.strip() for c in text.splitlines()[1].split("|")]
        assert header[5:9] == ["cached-ok", "cached-err", "solved",
                               "retried"]
        row = [c.strip() for c in text.splitlines()[3].split("|")]
        assert row[5:9] == ["0", "0", "0", "1"]

    def test_legacy_rows_without_resolution_field(self):
        # rows saved before the resolution field existed still summarize
        result = quality_result()
        legacy = [{k: v for k, v in r.items() if k != "resolution"}
                  for r in result.rows]
        assert summarize(legacy) == summarize(result)


class TestHeuristicGap:
    def test_ratios_at_least_one(self):
        stats, text = heuristic_gap(quality_result(), baseline="exact")
        assert set(stats) == {"portfolio", "random"}
        for solver_stats in stats.values():
            assert solver_stats["count"] == 4
            # exact is optimal for the period objective: ratios >= 1
            assert solver_stats["mean"] >= 1.0 - 1e-9
            assert solver_stats["max"] >= solver_stats["median"] >= 1.0 - 1e-9
        assert "mean ratio" in text

    def test_missing_baseline_raises(self):
        with pytest.raises(ReproError):
            heuristic_gap(quality_result(), baseline="nope")


class TestParetoComparison:
    def test_fronts_and_table(self, tmp_path):
        app = repro.PipelineApplication.from_works([14.0, 4.0, 2.0, 4.0])
        instances = [
            ("p3", repro.ProblemSpec(app, repro.Platform.homogeneous(3, 1.0),
                                     allow_data_parallel=True)),
            ("p4", repro.ProblemSpec(app, repro.Platform.homogeneous(4, 1.0),
                                     allow_data_parallel=True)),
        ]
        cache = ResultCache(tmp_path)
        fronts, text = pareto_comparison(
            instances, num_points=8, cache=cache
        )
        assert set(fronts) == {"p3", "p4"}
        for front in fronts.values():
            assert front
            for a, b in zip(front, front[1:]):
                assert a.period <= b.period + 1e-9
                assert a.latency >= b.latency - 1e-9
        # more processors cannot worsen the best period
        assert fronts["p4"][0].period <= fronts["p3"][0].period + 1e-9
        assert "p3" in text and "p4" in text
        # the comparison populated the shared cache
        assert cache.puts > 0
        fronts2, _ = pareto_comparison(instances, num_points=8, cache=cache)
        assert [(s.period, s.latency) for s in fronts2["p3"]] == \
            [(s.period, s.latency) for s in fronts["p3"]]


class TestParetoFrontArtifact:
    def _fronts(self):
        spec = repro.ProblemSpec(
            repro.PipelineApplication.from_works([6.0, 2.0, 8.0]),
            repro.Platform.homogeneous(3, 2.0),
            allow_data_parallel=True,
        )
        fronts, _text = pareto_comparison([("demo", spec)], num_points=6)
        return fronts

    def test_round_trip_is_exact(self, tmp_path):
        from repro.campaign import (
            load_pareto_fronts,
            pareto_fronts_doc,
            save_pareto_fronts,
        )

        fronts = self._fronts()
        path = tmp_path / "fronts.json"
        written = save_pareto_fronts(path, fronts, num_points=6)
        loaded = load_pareto_fronts(path)
        # bit-exact round trip: JSON preserves Python floats, so the
        # reloaded document equals the in-memory one, including every
        # period/latency float and the winning mapping documents
        assert loaded == written
        assert loaded == pareto_fronts_doc(fronts, num_points=6)
        assert loaded["kind"] == "pareto-fronts"
        assert loaded["num_points"] == 6
        points = loaded["fronts"]["demo"]
        assert [p["period"] for p in points] == \
            [s.period for s in fronts["demo"]]
        assert [p["latency"] for p in points] == \
            [s.latency for s in fronts["demo"]]
        assert all(p["mapping"]["kind"] == "mapping" for p in points)

    def test_mappings_reload_and_revalidate(self, tmp_path):
        from repro.campaign import load_pareto_fronts, save_pareto_fronts
        from repro.core.costs import pipeline_latency, pipeline_period
        from repro.serialization import mapping_from_dict

        fronts = self._fronts()
        path = tmp_path / "fronts.json"
        save_pareto_fronts(path, fronts)
        for point, sol in zip(load_pareto_fronts(path)["fronts"]["demo"],
                              fronts["demo"]):
            mapping = mapping_from_dict(point["mapping"])
            assert pipeline_period(mapping) == sol.period
            assert pipeline_latency(mapping) == sol.latency

    def test_load_rejects_other_documents(self, tmp_path):
        import json

        from repro.campaign import load_pareto_fronts

        path = tmp_path / "not-fronts.json"
        path.write_text(json.dumps({"kind": "campaign"}))
        with pytest.raises(ReproError):
            load_pareto_fronts(path)
        path.write_text(json.dumps({"kind": "pareto-fronts", "version": 99}))
        with pytest.raises(ReproError):
            load_pareto_fronts(path)
