"""Circuit-breaker cache backend: state machine, journal, campaigns.

Driven through :class:`~repro.campaign.chaos.ChaosBackend` — its
injected :class:`~repro.campaign.chaos.ChaosError` is a
``ConnectionError``, which the breaker classifies as a transport
failure.  Time is pinned through the cache module's ``_now`` seam so
backoff arithmetic is deterministic.
"""

from __future__ import annotations

import pytest

import repro.campaign.cache as cache_mod
from repro.campaign import (
    CampaignSpec,
    ChaosBackend,
    CircuitBreakerBackend,
    JsonlBackend,
    ResultCache,
    run_campaign,
    strip_volatile,
)
from repro.core import ReproError

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62
ROW = {"status": "ok", "value": 1.5}


@pytest.fixture
def clock(monkeypatch):
    now = [0.0]
    monkeypatch.setattr(cache_mod, "_now", lambda: now[0])
    return now


def _rig(tmp_path, journal=True, **chaos_kwargs):
    root = tmp_path / "remote"
    root.mkdir(exist_ok=True)
    inner = JsonlBackend(root)
    chaos = ChaosBackend(inner, **chaos_kwargs)
    journal_dir = None
    if journal:
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir(exist_ok=True)
    breaker = CircuitBreakerBackend(chaos, journal_dir=journal_dir)
    return inner, chaos, breaker


def test_threshold_opens_spills_and_recovery_replays(tmp_path, clock):
    # calls 1-2 succeed, 3-6 are the outage, 7+ succeed again
    inner, chaos, breaker = _rig(tmp_path, fail_after=2, recover_after=6)
    breaker.store(KEY_A, ROW)                        # call 1
    assert breaker.load(KEY_A) == ROW                # call 2
    assert breaker.state == "closed"

    assert breaker.load(KEY_A) is None               # call 3: degraded miss
    assert breaker.load(KEY_A) is None               # call 4
    breaker.store(KEY_B, {"v": 2})                   # call 5: opens + spills
    assert breaker.state == "open"
    assert breaker.opens == 1
    assert breaker.spilled_puts == 1

    # while open the remote is never touched: spill without a chaos call
    calls_before = chaos.calls
    breaker.store(KEY_C, {"v": 3})
    assert chaos.calls == calls_before
    assert breaker.breaker_state()["journal_entries"] == 2
    assert breaker.degraded_gets == 2

    clock[0] = 1.0                                   # backoff elapsed
    assert breaker.load(KEY_A) is None               # call 6: failed probe
    assert breaker.state == "open"
    # failed probe doubles the backoff: 1.0 -> 2.0
    assert breaker.breaker_state()["retry_in"] == pytest.approx(2.0)

    clock[0] = 3.0
    assert breaker.load(KEY_A) == ROW                # call 7: recovery
    assert breaker.state == "closed"
    # the journal replayed straight into the remote, oldest first
    assert breaker.replayed_puts == 2
    assert breaker.breaker_state()["journal_entries"] == 0
    assert breaker.journal_path is not None
    assert not breaker.journal_path.exists()
    assert inner.load(KEY_B) == {"v": 2}
    assert inner.load(KEY_C) == {"v": 3}


def test_without_journal_puts_are_dropped(tmp_path, clock):
    root = tmp_path / "remote"
    root.mkdir()
    chaos = ChaosBackend(JsonlBackend(root), fail_after=0)
    breaker = CircuitBreakerBackend(chaos, failure_threshold=1)
    breaker.store(KEY_A, ROW)        # failure -> open -> dropped
    breaker.store(KEY_B, ROW)        # open -> dropped without a call
    assert breaker.state == "open"
    assert breaker.dropped_puts == 2
    assert breaker.spilled_puts == 0


def test_degraded_stats_carry_breaker_state_and_compact_refuses(
        tmp_path, clock):
    _, _, breaker = _rig(tmp_path, fail_after=0)
    breaker.failure_threshold = 1
    assert breaker.load(KEY_A) is None               # opens
    stats = breaker.storage_stats()                  # open: degraded stub
    assert stats["degraded"] is True
    assert stats["keys"] == 0
    assert stats["breaker"]["state"] == "open"
    assert stats["breaker"]["degraded_gets"] == 1
    with pytest.raises(ReproError, match="breaker is open"):
        breaker.compact()


def test_journal_survives_process_restart(tmp_path, clock):
    _, _, breaker = _rig(tmp_path, fail_after=0)
    breaker.failure_threshold = 1
    breaker.store(KEY_A, ROW)                        # opens + spills
    assert breaker.breaker_state()["journal_entries"] == 1
    # a fresh breaker over the same journal dir picks the entries up
    root = tmp_path / "remote"
    reborn = CircuitBreakerBackend(
        ChaosBackend(JsonlBackend(root)),            # healthy this time
        journal_dir=tmp_path / "journal",
    )
    assert reborn.breaker_state()["journal_entries"] == 1
    assert reborn.load(KEY_A) is None                # success -> replay
    assert reborn.replayed_puts == 1
    assert reborn.load(KEY_A) == ROW


def test_campaign_survives_cache_outage(tmp_path):
    spec = CampaignSpec(
        name="outage",
        instances=(
            {"type": "random", "graph": "pipeline", "count": 3, "seed": 7,
             "n": [3, 5], "p": 3},
        ),
        objectives=("period", "latency"),
        solvers=({"name": "exact", "mode": "auto", "exact_fallback": True},),
    )
    reference = run_campaign(spec, workers=0)
    tasks = reference.stats["tasks"]
    root = tmp_path / "remote"
    root.mkdir()
    journal = tmp_path / "journal"
    journal.mkdir()
    # each task is one load (miss) + one store; fail the middle third
    chaos = ChaosBackend(JsonlBackend(root), fail_after=3,
                         recover_after=2 * tasks - 3)
    breaker = CircuitBreakerBackend(chaos, journal_dir=journal,
                                    failure_threshold=2, reset_after=0.0)
    result = run_campaign(spec, cache=ResultCache(backend=breaker), workers=0)
    # every row is present and bit-identical despite the outage
    assert [strip_volatile(r) for r in result.rows] == \
        [strip_volatile(r) for r in reference.rows]
    assert breaker.opens >= 1
    assert breaker.spilled_puts >= 1
    # the journal was fully replayed once the remote recovered...
    assert breaker.breaker_state()["journal_entries"] == 0
    assert breaker.replayed_puts == breaker.spilled_puts
    # ...so a healthy second run over the same store is 100% cache hits
    second = run_campaign(spec, cache=ResultCache(root), workers=0)
    assert second.stats["cache_hits"] == tasks
    assert [strip_volatile(r) for r in second.rows] == \
        [strip_volatile(r) for r in reference.rows]


def test_resultcache_fallback_dir_wraps_and_validates(tmp_path):
    with pytest.raises(ReproError, match="fallback_dir"):
        ResultCache(tmp_path / "local", backend="jsonl",
                    fallback_dir=tmp_path / "journal")
    root = tmp_path / "remote"
    root.mkdir()
    chaos = ChaosBackend(JsonlBackend(root))
    cache = ResultCache(backend=chaos, fallback_dir=tmp_path / "journal")
    assert isinstance(cache._backend, CircuitBreakerBackend)
    assert (tmp_path / "journal").is_dir()
    stats = cache.storage_stats()
    assert stats["breaker"]["state"] == "closed"
