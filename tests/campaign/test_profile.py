"""``campaign profile``: percentiles + aggregation of timing blocks."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    collect_timings,
    percentile,
    profile_doc,
    profile_groups,
    profile_table,
    run_campaign,
)
from repro.campaign.profile import PROFILE_DOC_KIND, PROFILE_DOC_VERSION
from repro.core import ReproError


def _timing(engine="bnb", seconds=0.1, n=4, p=2, **extra):
    doc = {
        "seconds": seconds, "engine": engine, "status": "completed",
        "objective": "period", "nodes": 10, "pruned": 5, "memo_hits": 1,
        "budget_reason": None, "graph": "pipeline", "n": n, "p": p,
    }
    doc.update(extra)
    return doc


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 11)]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.95) == 10.0
        assert percentile(values, 0.10) == 1.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_single_value(self):
        assert percentile([7.0], 0.01) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            percentile([], 0.5)


class TestCollectTimings:
    def test_from_rows_skips_blockless(self):
        rows = [
            {"status": "ok", "timing": _timing()},
            {"status": "crashed"},                 # quarantined: no block
            {"status": "ok", "timing": _timing(engine="brute-force")},
        ]
        timings = collect_timings(rows=rows)
        assert [t["engine"] for t in timings] == ["bnb", "brute-force"]

    def test_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {"status": "ok", "timing": _timing(seconds=0.2)})
        cache.put("b", {"status": "ok"})           # pre-timing payload
        timings = collect_timings(cache=cache)
        assert len(timings) == 1
        assert timings[0]["seconds"] == 0.2

    def test_cache_and_rows_combine(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {"timing": _timing()})
        timings = collect_timings(
            cache=cache, rows=[{"timing": _timing(engine="enumerate")}]
        )
        assert len(timings) == 2

    def test_nothing_given_is_empty(self):
        assert collect_timings() == []


class TestProfileGroups:
    def test_groups_by_engine_and_shape(self):
        timings = (
            [_timing(engine="bnb", n=4, seconds=s)
             for s in (0.1, 0.2, 0.3)]
            + [_timing(engine="bnb", n=5, seconds=0.4)]
            + [_timing(engine="brute-force", n=4, seconds=1.0)]
        )
        groups = profile_groups(timings)
        assert [(g["engine"], g["n"], g["p"]) for g in groups] == [
            ("bnb", 4, 2), ("bnb", 5, 2), ("brute-force", 4, 2),
        ]
        bnb4 = groups[0]
        assert bnb4["count"] == 3
        assert bnb4["p50"] == 0.2
        assert bnb4["p95"] == 0.3
        assert bnb4["seconds_total"] == pytest.approx(0.6)
        assert bnb4["nodes"] == 30 and bnb4["memo_hits"] == 3

    def test_missing_shape_uses_none(self):
        groups = profile_groups([_timing(engine=None, n=None, p=None)])
        assert groups[0]["engine"] == "-"
        assert groups[0]["n"] is None and groups[0]["p"] is None

    def test_none_effort_counters_sum_as_zero(self):
        groups = profile_groups(
            [_timing(nodes=None, pruned=None, memo_hits=None)]
        )
        assert groups[0]["nodes"] == 0
        assert groups[0]["pruned"] == 0
        assert groups[0]["memo_hits"] == 0


class TestProfileDoc:
    def test_shape_and_json_round_trip(self):
        doc = profile_doc([_timing(), _timing(engine="enumerate")])
        assert doc["kind"] == PROFILE_DOC_KIND
        assert doc["version"] == PROFILE_DOC_VERSION
        assert doc["samples"] == 2
        assert len(doc["groups"]) == 2
        assert json.loads(json.dumps(doc)) == doc


class TestProfileTable:
    def test_renders_groups(self):
        text = profile_table([_timing(seconds=0.25)])
        assert "solve profile" in text
        assert "bnb" in text
        assert "250.00" in text                    # p50 in ms

    def test_empty_is_empty_string(self):
        assert profile_table([]) == ""


def test_warm_cache_is_a_profiling_data_set(tmp_path):
    # the advertised workflow: run a campaign with a cache, then profile
    # the cache alone — no result rows needed
    spec = CampaignSpec(
        name="profiled",
        instances=(
            {"type": "random", "graph": "pipeline", "count": 2, "seed": 5,
             "n": 3, "p": 2},
        ),
        objectives=("period",),
        solvers=({"name": "exact", "mode": "auto"},),
    )
    cache = ResultCache(tmp_path)
    result = run_campaign(spec, cache=cache, workers=0)
    timings = collect_timings(cache=cache)
    assert len(timings) == result.stats["tasks"]
    doc = profile_doc(timings)
    assert doc["samples"] == len(timings)
    assert sum(g["count"] for g in doc["groups"]) == len(timings)
    assert profile_table(timings) != ""
