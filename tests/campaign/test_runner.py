"""Tests for the campaign runner: determinism, caching, isolation."""

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    load_rows,
    run_campaign,
    save_rows,
    strip_volatile,
)
from repro.core import ReproError


def grid_spec(**overrides):
    fields = dict(
        name="grid",
        instances=(
            {"type": "random", "graph": "pipeline", "count": 4, "seed": 3,
             "n": [3, 5], "p": [3, 4]},
            {"type": "random", "graph": "fork", "count": 3, "seed": 4,
             "n": [2, 4], "p": 3},
        ),
        objectives=("period", "latency"),
        solvers=(
            {"name": "exact", "mode": "auto", "exact_fallback": True},
            {"name": "random", "mode": "random", "seed": 5, "samples": 8},
        ),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


POISON = {
    "type": "explicit",
    "id": "poisoned",
    "application": {"kind": "pipeline", "works": [-1.0, 2.0]},
    "platform": {"kind": "platform", "speeds": [1.0]},
}


class TestDeterminism:
    def test_serial_and_parallel_rows_identical(self):
        spec = grid_spec()
        serial = run_campaign(spec, workers=0)
        parallel = run_campaign(spec, workers=2, chunk_size=3)
        assert [strip_volatile(r) for r in serial.rows] == \
            [strip_volatile(r) for r in parallel.rows]
        assert serial.stats["errors"] == 0

    def test_rows_come_back_in_task_order(self):
        result = run_campaign(grid_spec(), workers=2, chunk_size=1)
        assert [r["index"] for r in result.rows] == \
            list(range(result.stats["tasks"]))


class TestStreaming:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_progress_reported_incrementally(self, workers):
        spec = grid_spec(objectives=("period",),
                         solvers=({"name": "exact", "mode": "auto",
                                   "exact_fallback": True},))
        calls = []
        run_campaign(spec, workers=workers, chunk_size=1,
                     progress=lambda done, total: calls.append((done, total)))
        total = len(spec.tasks())
        assert len(calls) == total  # one callback per task-sized chunk
        assert [c[0] for c in calls] == sorted(c[0] for c in calls)
        assert calls[-1] == (total, total)

    def test_cache_written_as_chunks_complete(self, tmp_path):
        # every put must land before the run returns AND incrementally:
        # observe the cache growing from inside the progress callback
        spec = grid_spec(objectives=("period",),
                         solvers=({"name": "exact", "mode": "auto",
                                   "exact_fallback": True},))
        cache = ResultCache(tmp_path)
        puts_seen = []
        run_campaign(spec, cache=cache, workers=0, chunk_size=1,
                     progress=lambda done, total: puts_seen.append(cache.puts))
        assert puts_seen == sorted(puts_seen)
        assert puts_seen[0] >= 1  # first chunk was cached before the last ran
        assert cache.puts == len(spec.tasks())


class TestCache:
    def test_second_run_fully_cached(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path)
        first = run_campaign(spec, cache=cache, workers=0)
        assert first.stats["cache_hits"] == 0
        second = run_campaign(spec, cache=cache, workers=0)
        assert second.stats["cache_hits"] == second.stats["tasks"]
        assert [strip_volatile(r) for r in first.rows] == \
            [strip_volatile(r) for r in second.rows]

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path)
        run_campaign(spec, cache=cache, workers=0)
        parallel = run_campaign(spec, cache=cache, workers=2)
        assert parallel.stats["cache_hits"] == parallel.stats["tasks"]

    def test_solver_knob_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = grid_spec(solvers=({"name": "r", "mode": "random",
                                   "seed": 5},))
        run_campaign(base, cache=cache, workers=0)
        reseeded = grid_spec(solvers=({"name": "r", "mode": "random",
                                       "seed": 6},))
        result = run_campaign(reseeded, cache=cache, workers=0)
        assert result.stats["cache_hits"] == 0

    def test_permuted_platform_never_served_foreign_mapping(self, tmp_path):
        # speeds [3, 1] and [1, 3] describe the same instance up to
        # renumbering, but a cached mapping's processor indices only make
        # sense for the ordering it was solved with — permutations must
        # miss, and every returned mapping must embed the caller's platform
        def spec_for(speeds):
            return grid_spec(instances=(
                {"type": "explicit", "id": "perm",
                 "application": {"kind": "pipeline", "works": [9.0, 2.0]},
                 "platform": {"kind": "platform", "speeds": list(speeds)}},
            ), solvers=({"name": "exact", "mode": "exact"},))

        cache = ResultCache(tmp_path)
        first = run_campaign(spec_for([3.0, 1.0]), cache=cache, workers=0)
        second = run_campaign(spec_for([1.0, 3.0]), cache=cache, workers=0)
        assert second.stats["cache_hits"] == 0
        for result, speeds in ((first, [3.0, 1.0]), (second, [1.0, 3.0])):
            for row in result.ok_rows:
                assert row["mapping"]["platform"]["speeds"] == speeds

    def test_transient_errors_not_cached_deterministic_ones_are(
        self, tmp_path
    ):
        # a malformed document raises KeyError (not a ReproError): retried
        # every run; the NP-hard refusal is deterministic: served from cache
        spec = grid_spec(
            instances=(
                {"type": "explicit", "id": "malformed",
                 "application": {"kind": "pipeline"},
                 "platform": {"kind": "platform", "speeds": [1.0]}},
                {"type": "explicit", "id": "np",
                 "application": {"kind": "pipeline", "works": [9.0, 2.0, 7.0]},
                 "platform": {"kind": "platform", "speeds": [3.0, 1.0]}},
            ),
            objectives=("period",),
            solvers=({"name": "auto"},),
        )
        cache = ResultCache(tmp_path)
        first = run_campaign(spec, cache=cache, workers=0)
        assert first.stats["errors"] == 2
        second = run_campaign(spec, cache=cache, workers=0)
        by_id = {r["instance_id"]: r for r in second.rows}
        assert not by_id["malformed"]["cached"]
        assert by_id["np"]["cached"]
        assert by_id["np"]["error_type"] == "NPHardError"
        # the volatile-stripped rows still agree between runs
        assert [strip_volatile(r) for r in first.rows] == \
            [strip_volatile(r) for r in second.rows]

    def test_solver_rename_does_not_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(
            grid_spec(solvers=({"name": "a", "mode": "random", "seed": 5},)),
            cache=cache, workers=0,
        )
        renamed = run_campaign(
            grid_spec(solvers=({"name": "b", "mode": "random", "seed": 5},)),
            cache=cache, workers=0,
        )
        assert renamed.stats["cache_hits"] == renamed.stats["tasks"]


class TestFailureIsolation:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_poisoned_instance_yields_one_error_row(self, workers):
        spec = grid_spec(
            instances=(
                POISON,
                {"type": "random", "graph": "pipeline", "count": 3,
                 "seed": 3, "n": 3, "p": 3},
            ),
            objectives=("period",),
            solvers=({"name": "exact", "mode": "auto",
                      "exact_fallback": True},),
        )
        result = run_campaign(spec, workers=workers)
        assert result.stats["tasks"] == 4
        assert result.stats["errors"] == 1
        [bad] = result.error_rows
        assert bad["instance_id"] == "poisoned"
        assert bad["error_type"] == "InvalidApplicationError"
        assert bad["value"] is None and bad["error"]
        assert len(result.ok_rows) == 3

    def test_np_hard_without_fallback_is_an_error_row(self):
        spec = grid_spec(
            instances=(
                {"type": "explicit", "id": "np",
                 "application": {"kind": "pipeline", "works": [9.0, 2.0, 7.0]},
                 "platform": {"kind": "platform", "speeds": [3.0, 1.0]}},
            ),
            objectives=("period",),
            solvers=({"name": "auto"},),
        )
        [row] = run_campaign(spec, workers=0).rows
        assert row["status"] == "error"
        assert row["error_type"] == "NPHardError"

    def test_heuristic_mode_mismatch_is_isolated(self):
        # LPT only targets latency: the period task errors, latency works
        spec = grid_spec(
            instances=(
                {"type": "random", "graph": "fork", "count": 1, "seed": 9,
                 "n": 4, "p": 2, "homogeneous_platform": True},
            ),
            objectives=("period", "latency"),
            solvers=({"name": "lpt", "mode": "heuristic"},),
        )
        rows = run_campaign(spec, workers=0).rows
        by_objective = {r["objective"]: r for r in rows}
        assert by_objective["latency"]["status"] == "ok"
        assert by_objective["period"]["status"] == "error"
        assert by_objective["period"]["error_type"] == "ReproError"


class TestModes:
    def test_exact_mode_matches_auto_on_poly_cell(self):
        # hom pipeline on hom platform: poly algorithm vs forced brute force
        spec = grid_spec(
            instances=(
                {"type": "explicit", "id": "tiny",
                 "application": {"kind": "pipeline",
                                 "works": [14.0, 4.0, 2.0, 4.0]},
                 "platform": {"kind": "platform",
                              "speeds": [1.0, 1.0, 1.0]}},
            ),
            objectives=("period",),
            solvers=({"name": "poly", "mode": "auto"},
                     {"name": "brute", "mode": "exact"}),
        )
        poly, brute = run_campaign(spec, workers=0).rows
        assert poly["status"] == brute["status"] == "ok"
        assert poly["value"] == pytest.approx(brute["value"])

    def test_random_mode_seed_determinism(self):
        spec = grid_spec(solvers=({"name": "r", "mode": "random",
                                   "seed": 7, "samples": 16},))
        a = run_campaign(spec, workers=0)
        b = run_campaign(spec, workers=2)
        assert [strip_volatile(r) for r in a.rows] == \
            [strip_volatile(r) for r in b.rows]


class TestRetryErrors:
    def mixed_spec(self, ok_count=3):
        # NP-hard cell without fallback -> deterministic cached error rows
        return grid_spec(
            instances=(
                {"type": "explicit", "id": "np",
                 "application": {"kind": "pipeline",
                                 "works": [9.0, 2.0, 7.0]},
                 "platform": {"kind": "platform", "speeds": [3.0, 1.0]}},
                {"type": "random", "graph": "pipeline", "count": ok_count,
                 "seed": 11, "n": 3, "p": 3, "homogeneous_app": True,
                 "homogeneous_platform": True},
            ),
            objectives=("period",),
            solvers=({"name": "auto"},),
        )

    @pytest.mark.parametrize("workers", [0, 2])
    def test_serial_parallel_identical_with_error_rows(self, workers,
                                                       tmp_path):
        spec = grid_spec(
            instances=(
                POISON,
                {"type": "explicit", "id": "np",
                 "application": {"kind": "pipeline",
                                 "works": [9.0, 2.0, 7.0]},
                 "platform": {"kind": "platform", "speeds": [3.0, 1.0]}},
                {"type": "random", "graph": "pipeline", "count": 3,
                 "seed": 3, "n": 3, "p": 3},
            ),
            objectives=("period",),
            solvers=({"name": "auto"},),
        )
        serial = run_campaign(spec, workers=0)
        assert serial.stats["errors"] >= 2
        other = run_campaign(spec, cache=ResultCache(tmp_path),
                             workers=workers, chunk_size=2,
                             retry_errors=True)
        assert [strip_volatile(r) for r in serial.rows] == \
            [strip_volatile(r) for r in other.rows]

    def test_retry_resolves_only_error_and_missing_rows(
        self, tmp_path, monkeypatch
    ):
        from repro.campaign import runner as runner_mod

        spec = self.mixed_spec(ok_count=3)
        cache = ResultCache(tmp_path)
        first = run_campaign(spec, cache=cache, workers=0)
        assert first.stats == {**first.stats, "ok": 3, "errors": 1,
                               "retried": 0}

        solved_keys = []
        real_solve = runner_mod.solve_task
        monkeypatch.setattr(
            runner_mod, "solve_task",
            lambda task, *a, **kw: (
                solved_keys.append(task.key) or real_solve(task, *a, **kw)
            ),
        )

        # plain re-run: everything (even the error row) is served cached
        second = run_campaign(spec, cache=cache, workers=0)
        assert solved_keys == []
        assert second.stats["cache_hits"] == second.stats["tasks"]

        # --retry-errors: exactly the one error row is re-solved
        third = run_campaign(spec, cache=cache, workers=0,
                             retry_errors=True)
        errors = [r for r in first.rows if r["status"] == "error"]
        assert solved_keys == [r["key"] for r in errors]
        assert third.stats["retried"] == 1
        assert third.stats["cache_hits"] == 3

        # a grid extension re-solves errors + the genuinely new rows only
        solved_keys.clear()
        bigger = self.mixed_spec(ok_count=5)
        fourth = run_campaign(bigger, cache=cache, workers=0,
                              retry_errors=True)
        old_keys = {r["key"] for r in first.rows}
        fresh = [r["key"] for r in fourth.rows if r["key"] not in old_keys]
        assert sorted(solved_keys) == sorted([errors[0]["key"], *fresh])
        assert len(fresh) == 2

    def test_resolution_field_values(self, tmp_path):
        spec = self.mixed_spec()
        cache = ResultCache(tmp_path)
        first = run_campaign(spec, cache=cache, workers=0)
        assert {r["resolution"] for r in first.rows} == {"solved"}
        second = run_campaign(spec, cache=cache, workers=0)
        by_status = {r["status"]: r["resolution"] for r in second.rows}
        assert by_status == {"ok": "cached-ok", "error": "cached-error"}
        third = run_campaign(spec, cache=cache, workers=0,
                             retry_errors=True)
        assert sorted(r["resolution"] for r in third.rows) == \
            ["cached-ok"] * 3 + ["retried"]

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_solver_fix_changes_cached_verdict(self, tmp_path, backend):
        # simulate "a solver fix changes the verdict": overwrite the ok
        # rows with error payloads, as if the first run predated the fix
        spec = grid_spec(objectives=("period",),
                         solvers=({"name": "exact", "mode": "auto",
                                   "exact_fallback": True},))
        cache = ResultCache(tmp_path, backend=backend)
        first = run_campaign(spec, cache=cache, workers=0)
        assert first.stats["errors"] == 0
        broken = dict(first.rows[0])
        for field_name in ("index", "instance_id", "key", "objective",
                          "period_bound", "latency_bound", "solver",
                          "seconds", "cached", "resolution"):
            broken.pop(field_name)
        broken.update(status="error", period=None, latency=None, value=None,
                      mapping=None, algorithm=None,
                      error="pre-fix solver crash", error_type="ReproError")
        for row in first.rows:
            cache.put(row["key"], broken)

        stale = run_campaign(spec, cache=cache, workers=0)
        assert stale.stats["errors"] == stale.stats["tasks"]

        fixed = run_campaign(spec, cache=cache, workers=0,
                             retry_errors=True)
        assert fixed.stats["errors"] == 0
        assert fixed.stats["retried"] == fixed.stats["tasks"]
        assert [strip_volatile(r) for r in fixed.rows] == \
            [strip_volatile(r) for r in first.rows]
        # the re-puts overwrote the cache: a plain re-run is all ok again
        healed = run_campaign(spec, cache=cache, workers=0)
        assert healed.stats["errors"] == 0
        assert healed.stats["cache_hits"] == healed.stats["tasks"]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_retry_serial_parallel_equivalent(self, tmp_path, workers):
        spec = self.mixed_spec()
        cache = ResultCache(tmp_path)
        reference = run_campaign(spec, workers=0)
        run_campaign(spec, cache=cache, workers=0)
        resumed = run_campaign(spec, cache=cache, workers=workers,
                               chunk_size=1, retry_errors=True)
        assert [strip_volatile(r) for r in resumed.rows] == \
            [strip_volatile(r) for r in reference.rows]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        result = run_campaign(grid_spec(), workers=0)
        path = tmp_path / "rows.jsonl"
        save_rows(path, result)
        back = load_rows(path)
        assert back.name == result.name
        assert back.rows == result.rows
        assert back.stats == result.stats

    def test_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ReproError):
            load_rows(path)
