"""Tests for campaign specs: round-trips, expansion, task keys."""

import pytest

from repro.core import ReproError
from repro.campaign import CampaignSpec, SolverConfig
from repro.campaign.spec import canonical_solver_dict

PIPE = {"kind": "pipeline", "works": [3.0, 5.0, 2.0]}
PLAT = {"kind": "platform", "speeds": [2.0, 1.0]}


def small_spec(**overrides):
    fields = dict(
        name="t",
        instances=(
            {"type": "explicit", "application": PIPE, "platform": PLAT,
             "id": "one"},
        ),
        objectives=("period",),
        solvers=({"name": "auto"},),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestSolverConfig:
    def test_roundtrip(self):
        cfg = SolverConfig(name="x", mode="random", seed=3, samples=9)
        assert SolverConfig.from_dict(cfg.to_dict()) == cfg

    def test_rejects_unknown_mode(self):
        with pytest.raises(ReproError):
            SolverConfig(name="x", mode="quantum")

    def test_rejects_unknown_engine(self):
        with pytest.raises(ReproError):
            SolverConfig(name="x", engine="dfs")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ReproError):
            SolverConfig.from_dict({"name": "x", "threads": 4})

    def test_requires_name(self):
        with pytest.raises(ReproError):
            SolverConfig.from_dict({"mode": "auto"})


class TestCampaignSpec:
    def test_json_roundtrip_preserves_tasks(self):
        spec = small_spec(
            objectives=("period", {"objective": "latency",
                                   "period_bound": 4.0}),
            solvers=({"name": "a"}, {"name": "b", "mode": "random"}),
        )
        back = CampaignSpec.loads(spec.dumps())
        assert [t.to_dict() for t in back.tasks()] == \
            [t.to_dict() for t in spec.tasks()]

    def test_version_check(self):
        with pytest.raises(ReproError):
            small_spec(version=99)
        doc = small_spec().to_dict()
        doc["version"] = 99
        with pytest.raises(ReproError):
            CampaignSpec.from_dict(doc)

    def test_not_a_campaign_document(self):
        with pytest.raises(ReproError):
            CampaignSpec.from_dict({"kind": "pipeline"})

    def test_needs_instances_and_solvers(self):
        with pytest.raises(ReproError):
            small_spec(instances=())
        with pytest.raises(ReproError):
            small_spec(solvers=())

    def test_duplicate_solver_names_rejected(self):
        with pytest.raises(ReproError):
            small_spec(solvers=({"name": "a"}, {"name": "a", "seed": 1}))

    def test_bad_objective_rejected(self):
        with pytest.raises(ReproError):
            small_spec(objectives=("throughput",))

    def test_random_source_is_deterministic(self):
        src = {"type": "random", "graph": "fork", "count": 5, "seed": 11,
               "n": [2, 4], "p": 3}
        a = small_spec(instances=(src,)).expand_instances()
        b = small_spec(instances=(src,)).expand_instances()
        assert a == b
        assert len(a) == 5
        assert len({iid for iid, _ in a}) == 5

    def test_typoed_source_field_rejected(self):
        # "works_high" is a typo for "work_high": must fail loudly, not
        # silently run a different experiment
        with pytest.raises(ReproError, match="works_high"):
            small_spec(instances=(
                {"type": "random", "graph": "pipeline", "count": 2,
                 "seed": 1, "works_high": 9},
            )).expand_instances()
        with pytest.raises(ReproError, match="nam"):
            small_spec(instances=(
                {"type": "scenario", "nam": "scatter-gather"},
            )).expand_instances()

    def test_random_source_requires_seed(self):
        with pytest.raises(ReproError):
            small_spec(
                instances=({"type": "random", "graph": "pipeline"},)
            ).expand_instances()

    def test_scenario_source(self):
        spec = small_spec(
            instances=({"type": "scenario", "name": "scatter-gather"},)
        )
        [(iid, doc)] = spec.expand_instances()
        assert iid == "scatter-gather"
        assert doc["kind"] == "instance"
        assert doc["application"]["kind"] == "fork-join"

    def test_unknown_source_type(self):
        with pytest.raises(ReproError):
            small_spec(instances=({"type": "warp"},)).expand_instances()

    def test_duplicate_instance_ids_disambiguated(self):
        src = {"type": "scenario", "name": "scatter-gather"}
        ids = [iid for iid, _ in
               small_spec(instances=(src, src)).expand_instances()]
        assert len(set(ids)) == 2

    def test_grid_order_and_indices(self):
        spec = small_spec(
            objectives=("period", "latency"),
            solvers=({"name": "a"}, {"name": "b", "mode": "random"}),
        )
        tasks = spec.tasks()
        assert [t.index for t in tasks] == list(range(4))
        assert [(t.objective, t.solver["name"]) for t in tasks] == [
            ("period", "a"), ("period", "b"),
            ("latency", "a"), ("latency", "b"),
        ]


class TestTaskKeys:
    def task(self, **overrides):
        tasks = small_spec(**overrides).tasks()
        return tasks[0]

    def test_key_stable_across_processes(self):
        # pure function of content: recomputing gives the same hex digest
        t = self.task()
        assert t.key == self.task().key
        assert len(t.key) == 64

    def test_key_ignores_solver_name_and_irrelevant_knobs(self):
        base = self.task()
        renamed = self.task(solvers=({"name": "zzz"},))
        assert base.key == renamed.key
        # 'samples' cannot affect an auto solve
        assert canonical_solver_dict({"name": "a", "samples": 9}) == \
            canonical_solver_dict({"name": "b", "samples": 4})

    def test_key_changes_with_result_relevant_fields(self):
        base = self.task()
        variants = [
            self.task(objectives=("latency",)),
            self.task(objectives=({"objective": "period",
                                   "period_bound": None,
                                   "latency_bound": 9.0},)),
            self.task(solvers=({"name": "auto", "exact_fallback": True},)),
            self.task(solvers=({"name": "auto", "mode": "random"},)),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == 5

    def test_key_normalizes_int_float_documents(self):
        int_doc = {"kind": "pipeline", "works": [3, 5, 2]}
        int_plat = {"kind": "platform", "speeds": [2, 1]}
        a = self.task()
        b = self.task(instances=(
            {"type": "explicit", "application": int_doc,
             "platform": int_plat, "id": "one"},
        ))
        assert a.key == b.key

    def test_key_distinguishes_speed_permutations(self):
        # a cached mapping's processor indices must match the instance it
        # is served for, so permuted platforms get distinct keys (value-
        # level identity is instance_digest's job, not the cache key's)
        from repro.serialization import instance_digest

        plat2 = {"kind": "platform", "speeds": [1.0, 2.0]}
        a = self.task()
        b = self.task(instances=(
            {"type": "explicit", "application": PIPE, "platform": plat2,
             "id": "one"},
        ))
        assert a.key != b.key
        assert instance_digest(a.instance) == instance_digest(b.instance)

    def test_budget_knobs_key_exact_modes_only(self):
        base = self.task()
        budgeted = self.task(solvers=({"name": "auto", "max_nodes": 2000},))
        tighter = self.task(solvers=({"name": "auto", "max_nodes": 1000},))
        timed = self.task(solvers=({"name": "auto", "max_seconds": 1.5},))
        assert len({base.key, budgeted.key, tighter.key, timed.key}) == 4
        # budgets cannot affect heuristic/random solves, so they don't key
        assert canonical_solver_dict(
            {"name": "a", "mode": "random", "max_nodes": 2000}
        ) == canonical_solver_dict({"name": "b", "mode": "random"})

    def test_unset_budget_keys_are_byte_identical_to_pre_budget(self):
        # None budget knobs must not appear in the canonical dict at all:
        # every cache row written before budgets existed stays reachable
        assert canonical_solver_dict({"name": "a"}) == \
            canonical_solver_dict(
                {"name": "a", "max_seconds": None, "max_nodes": None}
            )
        assert "max_nodes" not in canonical_solver_dict({"name": "a"})

    def test_budget_validation_at_spec_parse_time(self):
        with pytest.raises(ReproError, match="max_nodes"):
            SolverConfig.from_dict({"name": "bad", "max_nodes": 0})
        with pytest.raises(ReproError, match="max_seconds"):
            SolverConfig.from_dict({"name": "bad", "max_seconds": -1.0})
        cfg = SolverConfig.from_dict(
            {"name": "ok", "max_seconds": 2.0, "max_nodes": 500}
        )
        assert cfg.budget().to_dict() == \
            {"max_seconds": 2.0, "max_nodes": 500}
        assert SolverConfig.from_dict({"name": "ok"}).budget() is None


class TestGoldenKeys:
    """Pinned cache keys: adding the milp engine must not move any.

    These hex digests were recorded before the milp engine landed (the
    canonical solver dict for bnb / enumerate / auto is untouched by it).
    If one of these assertions ever fails, a change has silently
    invalidated every cached campaign row of that solver column —
    deliberate key-scheme migrations must bump them *knowingly*.
    """

    GOLDEN = {
        ("exact", "bnb"):
            "50825c07fda94c08a238c1e0b7aa5e8ca42a9362abed671f3d56e4bbdfdfd775",
        ("exact", "enumerate"):
            "ea5d0272c662642998211ab3e63cd71de5910898b120923b47a64b7115fa8d4d",
        ("auto", None):
            "b8daa37c2c9c3f8344c90108e245e3b55a0e778e85ffe1903b6f6ea3845af301",
    }

    def key(self, mode, engine):
        solver = {"name": "s", "mode": mode}
        if engine is not None:
            solver["engine"] = engine
        spec = small_spec(solvers=(solver,))
        return spec.tasks()[0].key

    def test_combinatorial_keys_byte_identical(self):
        for (mode, engine), digest in self.GOLDEN.items():
            assert self.key(mode, engine) == digest, (
                f"cache key for mode={mode} engine={engine} moved"
            )

    def test_milp_key_is_new_and_round_trips(self):
        # selecting the milp engine gets its own key (never aliases a
        # combinatorial row) and the config survives a document round-trip
        milp_key = self.key("exact", "milp")
        assert milp_key not in set(self.GOLDEN.values())
        assert len(milp_key) == 64
        cfg = SolverConfig.from_dict(
            {"name": "m", "mode": "exact", "engine": "milp"}
        )
        assert SolverConfig.from_dict(cfg.to_dict()) == cfg
        assert canonical_solver_dict(cfg.to_dict())["engine"] == "milp"
        # recomputing from an equivalent fresh document is stable
        assert self.key("exact", "milp") == milp_key
