"""Tests for the chains-to-chains substrate."""

import itertools
import random

import pytest

from repro.chains import (
    chains_to_chains_dp,
    chains_to_chains_probe,
    greedy_partition,
    heterogeneous_chains_dp,
    interval_sums,
    probe_feasible,
)
from repro.core import ReproError


def exhaustive_chains(works, p):
    """Reference: try every boundary placement."""
    n = len(works)
    best = float("inf")
    for q in range(1, min(n, p) + 1):
        for cuts in itertools.combinations(range(1, n), q - 1):
            bounds = [*cuts, n]
            start, bottleneck = 0, 0.0
            for end in bounds:
                bottleneck = max(bottleneck, sum(works[start:end]))
                start = end
            best = min(best, bottleneck)
    return best


class TestIntervalSums:
    def test_simple(self):
        sums = interval_sums([1.0, 2.0, 3.0])
        assert sums == [1.0, 2.0, 3.0, 5.0, 6.0]

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            interval_sums([1.0, 0.0])


class TestProbe:
    def test_feasible_boundaries(self):
        assert probe_feasible([2, 2, 2, 2], 2, 4.0) == (2, 4)
        assert probe_feasible([2, 2, 2, 2], 2, 3.9) is None
        assert probe_feasible([5, 1], 2, 4.0) is None  # single item too big

    def test_respects_interval_count(self):
        assert probe_feasible([3, 3, 3], 2, 3.0) is None
        assert probe_feasible([3, 3, 3], 3, 3.0) == (1, 2, 3)


class TestExactness:
    @pytest.mark.parametrize("algorithm", [chains_to_chains_dp, chains_to_chains_probe])
    def test_matches_exhaustive(self, algorithm):
        rng = random.Random(5)
        for _ in range(25):
            n = rng.randint(1, 8)
            p = rng.randint(1, 5)
            works = [float(rng.randint(1, 9)) for _ in range(n)]
            want = exhaustive_chains(works, p)
            result = algorithm(works, p)
            assert result.bottleneck == pytest.approx(want), (works, p)
            # boundaries must realize the claimed bottleneck
            realized = max(
                sum(works[a:b]) for a, b in result.intervals
            )
            assert realized == pytest.approx(result.bottleneck)

    def test_dp_and_probe_agree(self):
        rng = random.Random(6)
        for _ in range(20):
            n = rng.randint(1, 12)
            p = rng.randint(1, 6)
            works = [float(rng.randint(1, 20)) for _ in range(n)]
            a = chains_to_chains_dp(works, p).bottleneck
            b = chains_to_chains_probe(works, p).bottleneck
            assert a == pytest.approx(b)


class TestGreedy:
    def test_never_better_than_exact(self):
        rng = random.Random(7)
        for _ in range(20):
            n = rng.randint(1, 10)
            p = rng.randint(1, 5)
            works = [float(rng.randint(1, 9)) for _ in range(n)]
            exact_value = chains_to_chains_dp(works, p).bottleneck
            greedy_value = greedy_partition(works, p).bottleneck
            assert greedy_value >= exact_value - 1e-9

    def test_valid_partition(self):
        result = greedy_partition([1.0] * 7, 3)
        assert result.boundaries[-1] == 7


class TestHeterogeneousChains:
    def test_fixed_order_known_case(self):
        # works (4, 4), speeds (4, 1): both on p1 -> 2; split -> max(1, 4)
        result = heterogeneous_chains_dp([4.0, 4.0], [4.0, 1.0])
        assert result.bottleneck == pytest.approx(2.0)

    def test_empty_intervals_allowed(self):
        # slow processor first: skipping it is optimal
        result = heterogeneous_chains_dp([4.0, 4.0], [1.0, 4.0])
        assert result.bottleneck == pytest.approx(2.0)

    def test_matches_exhaustive_fixed_order(self):
        rng = random.Random(8)
        for _ in range(15):
            n = rng.randint(1, 6)
            p = rng.randint(1, 4)
            works = [float(rng.randint(1, 9)) for _ in range(n)]
            speeds = [float(rng.randint(1, 4)) for _ in range(p)]
            # exhaustive: place n works into p ordered (possibly empty) bins
            best = float("inf")
            for cuts in itertools.combinations_with_replacement(range(n + 1), p - 1):
                bounds = [0, *cuts, n]
                value = 0.0
                for j in range(p):
                    segment = works[bounds[j]:bounds[j + 1]]
                    if segment:
                        value = max(value, sum(segment) / speeds[j])
                best = min(best, value)
            got = heterogeneous_chains_dp(works, speeds).bottleneck
            assert got == pytest.approx(best), (works, speeds)

    def test_rejects_bad_speed(self):
        with pytest.raises(ReproError):
            heterogeneous_chains_dp([1.0], [0.0])
