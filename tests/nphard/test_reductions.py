"""End-to-end tests of the five NP-hardness reductions.

For each theorem: the gadget builds, the YES witness mapping prices exactly
at the threshold, the decision procedure agrees with the source problem's
ground truth (on YES and NO instances), and the back-mapping recovers a
valid partition/matching.
"""

import random

import pytest

from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective
from repro.core import ReproError, evaluate
from repro.nphard import (
    N3DMInstance,
    Thm5Reduction,
    Thm9Reduction,
    Thm12Reduction,
    Thm13Reduction,
    Thm15Reduction,
    TwoPartitionInstance,
    random_n3dm_yes,
    solve_n3dm,
    solve_two_partition,
)

# hand-picked instances: YES with distinct values < S/2, and a NO sibling
YES_INST = TwoPartitionInstance((1, 2, 3, 4, 5, 7))   # S=22, e.g. {4,7} v {1,2,3,5}
NO_INST = TwoPartitionInstance((1, 2, 3, 4, 5, 8))    # S=23 odd -> NO
NO_EVEN = TwoPartitionInstance((1, 2, 3, 4, 6, 16))   # S=32, 16 = S/2 violates


class TestThm5:
    def test_yes_witness_prices_exactly(self):
        subset = solve_two_partition(YES_INST)
        red = Thm5Reduction(YES_INST)
        mapping = red.yes_mapping(subset)
        period, latency = evaluate(mapping)
        assert latency == pytest.approx(red.latency_threshold)
        assert period <= red.period_threshold + 1e-9

    def test_decision_yes(self):
        red = Thm5Reduction(YES_INST)
        assert red.schedule_meets_bound(Objective.LATENCY)
        assert red.schedule_meets_bound(Objective.PERIOD)

    def test_decision_no(self):
        red = Thm5Reduction(NO_INST)
        assert not red.schedule_meets_bound(Objective.LATENCY)
        assert not red.schedule_meets_bound(Objective.PERIOD)

    def test_extraction(self):
        subset = solve_two_partition(YES_INST)
        red = Thm5Reduction(YES_INST)
        extracted = red.extract_partition(red.yes_mapping(subset))
        assert extracted is not None
        assert sum(YES_INST.values[i] for i in extracted) * 2 == YES_INST.total

    def test_engine_knob_agrees(self):
        # bnb (default) and the flat-enumeration oracle decide identically
        for inst in (YES_INST, NO_INST):
            red = Thm5Reduction(inst)
            for objective in (Objective.PERIOD, Objective.LATENCY):
                assert red.schedule_meets_bound(objective) == \
                    red.schedule_meets_bound(objective, engine="enumerate")

    def test_bnb_engine_reaches_past_enumeration_sizes(self):
        # m=8 processors: hopeless for flat enumeration, fine for bnb
        inst = TwoPartitionInstance((3, 5, 6, 9, 10, 11, 12, 16))  # S=72
        red = Thm5Reduction(inst)
        want = inst.is_yes()
        assert red.schedule_meets_bound(Objective.LATENCY) == want
        assert red.schedule_meets_bound(Objective.PERIOD) == want

    def test_side_condition_enforcement(self):
        with pytest.raises(ReproError):
            Thm5Reduction(NO_EVEN)  # one value equals S/2
        with pytest.raises(ReproError):
            Thm5Reduction(TwoPartitionInstance((2, 2, 4)))  # duplicates

    def test_optimal_latency_from_brute_force_is_2_iff_yes(self):
        for inst, expect in ((YES_INST, True), (NO_INST, False)):
            red = Thm5Reduction(inst)
            best = bf.optimal(red.spec, Objective.LATENCY)
            assert (best.latency <= 2.0 + 1e-9) == expect


class TestThm13:
    def test_decision_matches_ground_truth(self):
        assert Thm13Reduction(YES_INST).schedule_meets_bound(Objective.LATENCY)
        assert not Thm13Reduction(NO_INST).schedule_meets_bound(Objective.LATENCY)

    def test_yes_witness(self):
        subset = solve_two_partition(YES_INST)
        red = Thm13Reduction(YES_INST)
        mapping = red.yes_mapping(subset)
        period, latency = evaluate(mapping)
        assert latency == pytest.approx(2.0)
        assert period <= 1.0 + 1e-9
        assert red.extract_partition(mapping) is not None


class TestThm12:
    def test_yes(self):
        inst = TwoPartitionInstance((3, 1, 2, 2))
        red = Thm12Reduction(inst)
        assert red.schedule_meets_bound()
        subset = solve_two_partition(inst)
        mapping = red.yes_mapping(subset)
        _, latency = evaluate(mapping)
        assert latency == pytest.approx(red.latency_threshold)
        assert red.extract_partition(mapping) is not None

    def test_no(self):
        inst = TwoPartitionInstance((3, 1, 1))
        assert not Thm12Reduction(inst).schedule_meets_bound()

    def test_agrees_with_brute_force(self):
        rng = random.Random(13)
        from repro.nphard import random_two_partition

        for _ in range(8):
            inst = random_two_partition(rng, rng.randint(3, 5), 9)
            red = Thm12Reduction(inst)
            best = bf.optimal(red.spec(False), Objective.LATENCY)
            want = best.latency <= red.latency_threshold * (1 + 1e-9)
            assert red.schedule_meets_bound() == want == inst.is_yes()


class TestThm15:
    def test_yes(self):
        inst = TwoPartitionInstance((3, 1, 2, 2))
        red = Thm15Reduction(inst)
        assert red.schedule_meets_bound()
        subset = solve_two_partition(inst)
        mapping = red.yes_mapping(subset)
        period, _ = evaluate(mapping)
        assert period <= red.period_threshold + 1e-9
        assert red.extract_partition(mapping) is not None

    def test_no(self):
        assert not Thm15Reduction(TwoPartitionInstance((3, 1, 1))).schedule_meets_bound()

    def test_replicate_all_gives_period_3(self):
        # the proof's observation: whole-fork replication yields period 3
        inst = TwoPartitionInstance((2, 2))
        red = Thm15Reduction(inst)
        from repro.core import AssignmentKind, ForkMapping, GroupAssignment

        mapping = ForkMapping(
            application=red.application,
            platform=red.platform,
            groups=(
                GroupAssignment(
                    stages=tuple(range(inst.m + 2)),
                    processors=(0, 1),
                    kind=AssignmentKind.REPLICATED,
                ),
            ),
        )
        period, _ = evaluate(mapping)
        assert period == pytest.approx(3.0)

    def test_agrees_with_brute_force(self):
        rng = random.Random(14)
        from repro.nphard import random_two_partition

        for _ in range(8):
            inst = random_two_partition(rng, rng.randint(3, 5), 9)
            red = Thm15Reduction(inst)
            best = bf.optimal(red.spec, Objective.PERIOD)
            want = best.period <= 1.0 + 1e-9
            assert red.schedule_meets_bound() == want == inst.is_yes()


class TestThm9:
    def test_gadget_shape(self):
        inst = N3DMInstance(xs=(3, 1), ys=(1, 2), zs=(2, 3), M=6)
        red = Thm9Reduction(inst)
        app, plat = red.application, red.platform
        assert app.n == (inst.M + 3) * inst.m
        assert plat.p == 3 * inst.m
        # constants per the proof
        assert red.R == 20
        assert red.B == 12
        assert red.C == 600
        assert red.D == 144000

    def test_yes_witness_prices_at_period_1(self):
        inst = N3DMInstance(xs=(3, 1), ys=(1, 2), zs=(2, 3), M=6)
        red = Thm9Reduction(inst)
        s1, s2 = solve_n3dm(inst)
        mapping = red.yes_mapping(s1, s2)
        period, _ = evaluate(mapping)
        assert period == pytest.approx(1.0)

    def test_extraction_roundtrip(self):
        rng = random.Random(15)
        inst = random_n3dm_yes(rng, 3)
        red = Thm9Reduction(inst)
        s1, s2 = solve_n3dm(inst)
        mapping = red.yes_mapping(s1, s2)
        extracted = red.extract_matching(mapping)
        assert extracted is not None
        e1, e2 = extracted
        for i in range(inst.m):
            assert inst.xs[i] + inst.ys[e1[i]] + inst.zs[e2[i]] == inst.M

    def test_decision_matches_n3dm(self):
        yes = N3DMInstance(xs=(3, 1), ys=(1, 2), zs=(2, 3), M=6)
        assert Thm9Reduction(yes).schedule_meets_bound()
        # sum-preserving perturbation that kills the matching
        no = N3DMInstance(xs=(4, 2), ys=(1, 2), zs=(2, 3), M=7)
        if not no.is_yes():
            assert not Thm9Reduction(no).schedule_meets_bound()

    def test_rejects_violating_side_conditions(self):
        bad = N3DMInstance(xs=(5, 1), ys=(1, 2), zs=(2, 3), M=6)  # sum != mM
        with pytest.raises(ReproError):
            Thm9Reduction(bad)
