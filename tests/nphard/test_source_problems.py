"""Tests for the 2-PARTITION and N3DM source problems."""

import itertools
import random

import pytest

from repro.core import ReproError
from repro.nphard import (
    N3DMInstance,
    TwoPartitionInstance,
    best_balanced_split,
    random_n3dm_yes,
    random_two_partition,
    random_two_partition_yes,
    solve_n3dm,
    solve_two_partition,
)


def brute_two_partition(values):
    total = sum(values)
    if total % 2:
        return None
    for r in range(len(values) + 1):
        for subset in itertools.combinations(range(len(values)), r):
            if sum(values[i] for i in subset) * 2 == total:
                return frozenset(subset)
    return None


class TestTwoPartition:
    def test_known_yes(self):
        inst = TwoPartitionInstance((3, 1, 1, 2, 2, 1))
        subset = solve_two_partition(inst)
        assert subset is not None
        assert sum(inst.values[i] for i in subset) == inst.half

    def test_known_no_odd_total(self):
        assert solve_two_partition(TwoPartitionInstance((1, 1, 1))) is None

    def test_known_no_even_total(self):
        assert solve_two_partition(TwoPartitionInstance((2, 4, 16))) is None

    def test_matches_brute_force(self):
        rng = random.Random(9)
        for _ in range(30):
            values = tuple(rng.randint(1, 15) for _ in range(rng.randint(1, 8)))
            inst = TwoPartitionInstance(values)
            got = solve_two_partition(inst)
            want = brute_two_partition(values)
            assert (got is None) == (want is None)
            if got is not None:
                assert sum(values[i] for i in got) * 2 == inst.total

    def test_best_balanced_split(self):
        inst = TwoPartitionInstance((5, 4, 3))  # S=12, best split 7/5 -> 7
        subset, makespan = best_balanced_split(inst)
        assert makespan == 7
        side = sum(inst.values[i] for i in subset)
        assert max(side, inst.total - side) == 7

    def test_best_balanced_split_yes_instance(self):
        inst = TwoPartitionInstance((2, 2, 4))
        _, makespan = best_balanced_split(inst)
        assert makespan == inst.half

    def test_generators(self):
        rng = random.Random(10)
        for _ in range(10):
            yes = random_two_partition_yes(rng, 5)
            assert yes.is_yes()
            any_inst = random_two_partition(rng, 5)
            assert any_inst.m == 5

    def test_rejects_bad_values(self):
        with pytest.raises(ReproError):
            TwoPartitionInstance((1, 0))
        with pytest.raises(ReproError):
            TwoPartitionInstance(())
        with pytest.raises(ReproError):
            TwoPartitionInstance((1.5,))  # type: ignore[arg-type]


def brute_n3dm(inst):
    m = inst.m
    for s1 in itertools.permutations(range(m)):
        for s2 in itertools.permutations(range(m)):
            if all(
                inst.xs[i] + inst.ys[s1[i]] + inst.zs[s2[i]] == inst.M
                for i in range(m)
            ):
                return True
    return False


class TestN3DM:
    def test_known_yes(self):
        inst = N3DMInstance(xs=(3, 1), ys=(1, 2), zs=(2, 3), M=6)
        result = solve_n3dm(inst)
        assert result is not None
        s1, s2 = result
        for i in range(2):
            assert inst.xs[i] + inst.ys[s1[i]] + inst.zs[s2[i]] == 6

    def test_known_no(self):
        inst = N3DMInstance(xs=(4, 1), ys=(1, 2), zs=(2, 3), M=6)
        assert solve_n3dm(inst) is None

    def test_matches_brute_force(self):
        rng = random.Random(11)
        for _ in range(20):
            m = rng.randint(1, 3)
            M = rng.randint(6, 12)
            inst = N3DMInstance(
                xs=tuple(rng.randint(1, M - 2) for _ in range(m)),
                ys=tuple(rng.randint(1, M - 2) for _ in range(m)),
                zs=tuple(rng.randint(1, M - 2) for _ in range(m)),
                M=M,
            )
            assert (solve_n3dm(inst) is not None) == brute_n3dm(inst)

    def test_generator_side_conditions(self):
        rng = random.Random(12)
        for m in (1, 2, 4, 6):
            inst = random_n3dm_yes(rng, m)
            assert inst.satisfies_side_conditions()
            assert inst.is_yes()

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ReproError):
            N3DMInstance(xs=(1,), ys=(1, 2), zs=(1,), M=5)
