"""Tests for composite workflows (chains of pipeline/fork kernels)."""

import random

import pytest

import repro
from repro.composite import CompositeWorkflow, map_composite
from repro.core import InvalidApplicationError, ReproError, validate


def demo_workflow():
    return CompositeWorkflow.of(
        repro.PipelineApplication.homogeneous(4, 3.0),
        repro.ForkApplication.homogeneous(6, 2.0, 4.0),
        repro.PipelineApplication.homogeneous(2, 5.0),
    )


class TestWorkflowModel:
    def test_structure(self):
        wf = demo_workflow()
        assert wf.num_kernels == 3
        assert wf.kernel_works == (12.0, 26.0, 10.0)
        assert wf.total_work == 48.0
        assert "pipeline(4) >> fork(6) >> pipeline(2)" == wf.describe()

    def test_forkjoin_kernel(self):
        wf = CompositeWorkflow.of(
            repro.ForkJoinApplication.homogeneous(3, 1.0, 2.0, 3.0)
        )
        assert "fork-join(3)" in wf.describe()

    def test_rejects_empty(self):
        with pytest.raises(InvalidApplicationError):
            CompositeWorkflow(kernels=())

    def test_rejects_bad_kernel(self):
        with pytest.raises(InvalidApplicationError):
            CompositeWorkflow(kernels=("nope",))  # type: ignore[arg-type]


class TestMapper:
    def test_basic_mapping(self):
        wf = demo_workflow()
        platform = repro.Platform.homogeneous(8, 1.0)
        sol = map_composite(wf, platform)
        assert len(sol.plans) == 3
        # disjoint processor blocks covering a subset of the platform
        used = [u for plan in sol.plans for u in plan.processors]
        assert len(used) == len(set(used)) == 8
        # every per-kernel mapping is valid
        for plan in sol.plans:
            validate(plan.solution.mapping, allow_data_parallel=True)
        # macro-pipeline metrics
        assert sol.period == pytest.approx(
            max(p.solution.period for p in sol.plans)
        )
        assert sol.latency == pytest.approx(
            sum(p.solution.latency for p in sol.plans)
        )

    def test_period_capacity_bound(self):
        wf = demo_workflow()
        platform = repro.Platform.heterogeneous([4, 3, 2, 2, 1, 1, 1])
        sol = map_composite(wf, platform)
        # no allocation can beat giving each kernel the whole platform
        for plan, kernel in zip(sol.plans, wf.kernels):
            assert plan.solution.period >= (
                kernel.total_work / platform.total_speed - 1e-9
            )

    def test_refinement_beats_or_matches_proportional(self):
        # a deliberately unbalanced chain: tiny kernel + heavy kernel
        wf = CompositeWorkflow.of(
            repro.PipelineApplication.homogeneous(1, 1.0),
            repro.PipelineApplication.homogeneous(6, 10.0),
        )
        platform = repro.Platform.homogeneous(6, 1.0)
        sol = map_composite(wf, platform)
        # the bottleneck is the heavy kernel; refinement should push
        # processors toward it (tiny kernel keeps exactly 1)
        assert len(sol.plans[0].processors) == 1
        assert len(sol.plans[1].processors) == 5

    def test_np_hard_kernel_routes(self):
        wf = CompositeWorkflow.of(
            repro.PipelineApplication.from_works([9, 2, 7]),  # het kernel
            repro.ForkApplication.homogeneous(4, 1.0, 2.0),
        )
        platform = repro.Platform.heterogeneous([3, 2, 2, 1, 1])
        sol = map_composite(wf, platform, rng=random.Random(1))
        routes = {plan.route for plan in sol.plans}
        assert routes <= {"poly", "exact", "heuristic"}
        # the heterogeneous pipeline kernel cannot take the poly route
        assert sol.plans[0].route in ("exact", "heuristic")

    def test_needs_one_processor_per_kernel(self):
        wf = demo_workflow()
        with pytest.raises(ReproError):
            map_composite(wf, repro.Platform.homogeneous(2, 1.0))

    def test_remapped_processor_indices_are_original(self):
        wf = demo_workflow()
        platform = repro.Platform.heterogeneous([5, 4, 3, 2, 1, 1, 1, 1])
        sol = map_composite(wf, platform)
        for plan in sol.plans:
            for group in plan.solution.mapping.groups:
                assert set(group.processors) <= set(plan.processors)

    def test_describe(self):
        wf = demo_workflow()
        sol = map_composite(wf, repro.Platform.homogeneous(8, 1.0))
        text = sol.describe()
        assert "composite period" in text
        assert text.count("kernel") == 3
