"""Round-trip tests for JSON serialization."""

import random

import pytest

import repro
from repro.core import ReproError, evaluate
from repro.heuristics import random_fork_mapping, random_pipeline_mapping
from repro.serialization import (
    application_from_dict,
    application_to_dict,
    canonical_instance_dict,
    canonical_json,
    content_hash,
    dumps,
    instance_digest,
    loads,
    mapping_from_dict,
    mapping_to_dict,
    platform_from_dict,
    platform_to_dict,
    spec_from_dict,
    spec_to_dict,
)


class TestApplications:
    def test_pipeline_roundtrip(self):
        app = repro.PipelineApplication.from_works(
            [3, 5, 2], data_sizes=[1, 2, 3, 4], dp_overheads=[0.5, 0, 1.0]
        )
        back = application_from_dict(application_to_dict(app))
        assert back == app

    def test_plain_pipeline_omits_empty_fields(self):
        app = repro.PipelineApplication.from_works([3, 5])
        doc = application_to_dict(app)
        assert "data_sizes" not in doc and "dp_overheads" not in doc
        assert application_from_dict(doc) == app

    def test_fork_roundtrip(self):
        app = repro.ForkApplication.from_works(2.0, [1, 4, 2])
        assert application_from_dict(application_to_dict(app)) == app

    def test_forkjoin_roundtrip(self):
        app = repro.ForkJoinApplication.from_works(2.0, [1, 4], 3.0)
        assert application_from_dict(application_to_dict(app)) == app

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            application_from_dict({"kind": "dag"})


class TestPlatforms:
    def test_roundtrip(self):
        plat = repro.Platform.heterogeneous([3, 1, 2])
        assert platform_from_dict(platform_to_dict(plat)) == plat

    def test_bandwidth_roundtrip(self):
        plat = repro.Platform.homogeneous(3, 2.0, bandwidth=4.0)
        back = platform_from_dict(platform_to_dict(plat))
        assert back.speeds == plat.speeds
        assert back.interconnect.link(0, 1) == 4.0


class TestMappings:
    def test_random_mapping_roundtrips_preserve_costs(self):
        rng = random.Random(57)
        for _ in range(10):
            p = rng.randint(2, 5)
            plat = repro.Platform.heterogeneous(
                [rng.randint(1, 4) for _ in range(p)]
            )
            if rng.random() < 0.5:
                app = repro.PipelineApplication.from_works(
                    [rng.randint(1, 9) for _ in range(rng.randint(1, 4))]
                )
                sol = random_pipeline_mapping(app, plat, rng, True)
            else:
                app = repro.ForkApplication.from_works(
                    rng.randint(1, 5),
                    [rng.randint(1, 9) for _ in range(rng.randint(1, 4))],
                )
                sol = random_fork_mapping(app, plat, rng, True)
            back = mapping_from_dict(mapping_to_dict(sol.mapping))
            assert evaluate(back) == pytest.approx(evaluate(sol.mapping))
            assert back == sol.mapping

    def test_text_roundtrip(self):
        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        plat = repro.Platform.homogeneous(3, 1.0)
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=True)
        sol = repro.solve(spec, repro.Objective.LATENCY)
        text = dumps(sol.mapping)
        back = loads(text)
        assert evaluate(back) == pytest.approx((sol.period, sol.latency))

    def test_loads_dispatch(self):
        assert loads(dumps(repro.Platform.homogeneous(2))) == \
            repro.Platform.homogeneous(2)
        app = repro.ForkApplication.homogeneous(2)
        assert loads(dumps(app)) == app


def _sample_applications():
    return {
        "pipeline": repro.PipelineApplication.from_works(
            [3, 5, 2], data_sizes=[1, 2, 3, 4], dp_overheads=[0.5, 0, 1.0]
        ),
        "fork": repro.ForkApplication.from_works(2.0, [1, 4, 2]),
        "fork-join": repro.ForkJoinApplication.from_works(2.0, [1, 4], 3.0),
    }


class TestEveryKindRoundTrips:
    """One document kind, one round-trip, for every ``kind`` value."""

    @pytest.mark.parametrize("kind", ["pipeline", "fork", "fork-join"])
    def test_application_kinds(self, kind):
        app = _sample_applications()[kind]
        doc = application_to_dict(app)
        assert doc["kind"] == kind
        assert application_from_dict(doc) == app

    @pytest.mark.parametrize("bandwidth", [None, 4.0])
    def test_platform_kind(self, bandwidth):
        plat = (
            repro.Platform.heterogeneous([3, 1, 2])
            if bandwidth is None
            else repro.Platform.homogeneous(3, 2.0, bandwidth=bandwidth)
        )
        doc = platform_to_dict(plat)
        assert doc["kind"] == "platform"
        assert ("bandwidth" in doc) == (bandwidth is not None)
        back = platform_from_dict(doc)
        assert back.speeds == plat.speeds
        if bandwidth is not None:
            assert back.interconnect.link(0, 1) == bandwidth

    def test_nonuniform_interconnect_rejected(self):
        from repro.core.platform import Interconnect

        inter = Interconnect.uniform(2, 4.0)
        rows = [list(r) for r in inter.bandwidth]
        rows[0][1] = 8.0
        plat = repro.Platform.heterogeneous(
            [1.0, 2.0],
            interconnect=Interconnect(
                bandwidth=tuple(tuple(r) for r in rows),
                in_bandwidths=inter.in_bandwidths,
                out_bandwidths=inter.out_bandwidths,
            ),
        )
        with pytest.raises(ReproError):
            platform_to_dict(plat)

    @pytest.mark.parametrize("kind", ["pipeline", "fork", "fork-join"])
    def test_instance_kind(self, kind):
        spec = repro.ProblemSpec(
            _sample_applications()[kind],
            repro.Platform.heterogeneous([2, 1]),
            allow_data_parallel=(kind == "pipeline"),
        )
        doc = spec_to_dict(spec)
        assert doc["kind"] == "instance"
        assert spec_from_dict(doc) == spec
        assert loads(dumps(spec.application))  # applications still dispatch

    def test_instance_loads_dispatch(self):
        import json

        spec = repro.ProblemSpec(
            repro.PipelineApplication.from_works([1, 2]),
            repro.Platform.homogeneous(2),
        )
        assert loads(json.dumps(spec_to_dict(spec))) == spec

    def test_wrong_kind_errors(self):
        with pytest.raises(ReproError):
            spec_from_dict({"kind": "platform"})
        with pytest.raises(ReproError):
            platform_from_dict({"kind": "instance"})
        with pytest.raises(ReproError):
            mapping_from_dict({"kind": "instance"})


class TestCanonicalHash:
    def spec_doc(self, works=(3, 5, 2), speeds=(1, 3, 2), dp=True):
        return {
            "kind": "instance",
            "application": {"kind": "pipeline", "works": list(works)},
            "platform": {"kind": "platform", "speeds": list(speeds)},
            "allow_data_parallel": dp,
        }

    def test_canonical_json_is_deterministic(self):
        assert canonical_json({"b": 1, "a": [1.5, 2]}) == \
            canonical_json({"a": [1.5, 2], "b": 1})
        assert content_hash({"a": 1}) == content_hash({"a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_permuted_speeds_same_hash(self):
        assert instance_digest(self.spec_doc(speeds=(1, 3, 2))) == \
            instance_digest(self.spec_doc(speeds=(3, 2, 1)))

    def test_permuted_branches_same_hash(self):
        a = {"kind": "fork", "root_work": 2, "branch_works": [1, 4, 2]}
        b = {"kind": "fork", "root_work": 2.0, "branch_works": [4.0, 2, 1]}
        assert instance_digest(a) == instance_digest(b)

    def test_int_float_equivalent_construction_same_hash(self):
        assert instance_digest(self.spec_doc(works=(3, 5, 2))) == \
            instance_digest(self.spec_doc(works=(3.0, 5.0, 2.0)))

    def test_pipeline_stage_order_matters(self):
        assert instance_digest(self.spec_doc(works=(3, 5, 2))) != \
            instance_digest(self.spec_doc(works=(2, 5, 3)))

    def test_any_field_change_changes_hash(self):
        base = instance_digest(self.spec_doc())
        assert base != instance_digest(self.spec_doc(works=(3, 5, 2.5)))
        assert base != instance_digest(self.spec_doc(speeds=(1, 3, 2.5)))
        assert base != instance_digest(self.spec_doc(dp=False))

    def test_equivalent_model_constructions_same_hash(self):
        # built via the model classes vs hand-written doc: same digest
        spec = repro.ProblemSpec(
            repro.PipelineApplication.from_works([3, 5, 2]),
            repro.Platform.heterogeneous([2, 3, 1]),
            allow_data_parallel=True,
        )
        assert instance_digest(spec_to_dict(spec)) == \
            instance_digest(self.spec_doc())

    def test_canonical_dict_drops_empty_optionals(self):
        doc = {"kind": "pipeline", "works": [1, 2],
               "data_sizes": [0, 0, 0], "dp_overheads": [0, 0]}
        canon = canonical_instance_dict(doc)
        assert "data_sizes" not in canon and "dp_overheads" not in canon
