"""Round-trip tests for JSON serialization."""

import random

import pytest

import repro
from repro.core import ReproError, evaluate
from repro.heuristics import random_fork_mapping, random_pipeline_mapping
from repro.serialization import (
    application_from_dict,
    application_to_dict,
    dumps,
    loads,
    mapping_from_dict,
    mapping_to_dict,
    platform_from_dict,
    platform_to_dict,
)


class TestApplications:
    def test_pipeline_roundtrip(self):
        app = repro.PipelineApplication.from_works(
            [3, 5, 2], data_sizes=[1, 2, 3, 4], dp_overheads=[0.5, 0, 1.0]
        )
        back = application_from_dict(application_to_dict(app))
        assert back == app

    def test_plain_pipeline_omits_empty_fields(self):
        app = repro.PipelineApplication.from_works([3, 5])
        doc = application_to_dict(app)
        assert "data_sizes" not in doc and "dp_overheads" not in doc
        assert application_from_dict(doc) == app

    def test_fork_roundtrip(self):
        app = repro.ForkApplication.from_works(2.0, [1, 4, 2])
        assert application_from_dict(application_to_dict(app)) == app

    def test_forkjoin_roundtrip(self):
        app = repro.ForkJoinApplication.from_works(2.0, [1, 4], 3.0)
        assert application_from_dict(application_to_dict(app)) == app

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            application_from_dict({"kind": "dag"})


class TestPlatforms:
    def test_roundtrip(self):
        plat = repro.Platform.heterogeneous([3, 1, 2])
        assert platform_from_dict(platform_to_dict(plat)) == plat

    def test_bandwidth_roundtrip(self):
        plat = repro.Platform.homogeneous(3, 2.0, bandwidth=4.0)
        back = platform_from_dict(platform_to_dict(plat))
        assert back.speeds == plat.speeds
        assert back.interconnect.link(0, 1) == 4.0


class TestMappings:
    def test_random_mapping_roundtrips_preserve_costs(self):
        rng = random.Random(57)
        for _ in range(10):
            p = rng.randint(2, 5)
            plat = repro.Platform.heterogeneous(
                [rng.randint(1, 4) for _ in range(p)]
            )
            if rng.random() < 0.5:
                app = repro.PipelineApplication.from_works(
                    [rng.randint(1, 9) for _ in range(rng.randint(1, 4))]
                )
                sol = random_pipeline_mapping(app, plat, rng, True)
            else:
                app = repro.ForkApplication.from_works(
                    rng.randint(1, 5),
                    [rng.randint(1, 9) for _ in range(rng.randint(1, 4))],
                )
                sol = random_fork_mapping(app, plat, rng, True)
            back = mapping_from_dict(mapping_to_dict(sol.mapping))
            assert evaluate(back) == pytest.approx(evaluate(sol.mapping))
            assert back == sol.mapping

    def test_text_roundtrip(self):
        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        plat = repro.Platform.homogeneous(3, 1.0)
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=True)
        sol = repro.solve(spec, repro.Objective.LATENCY)
        text = dumps(sol.mapping)
        back = loads(text)
        assert evaluate(back) == pytest.approx((sol.period, sol.latency))

    def test_loads_dispatch(self):
        assert loads(dumps(repro.Platform.homogeneous(2))) == \
            repro.Platform.homogeneous(2)
        app = repro.ForkApplication.homogeneous(2)
        assert loads(dumps(app)) == app
