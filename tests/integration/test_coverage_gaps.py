"""Targeted tests for dispatch branches and edge paths not covered
elsewhere: fork-join bi-criteria routing, demand-driven fork simulation,
Pareto with exact fallback, local-search kind flips, Solution helpers.
"""

import random

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec, Solution
from repro.analysis import pareto_front
from repro.core import AssignmentKind
from repro.heuristics import improve_mapping, random_fork_mapping
from repro.simulation import DispatchPolicy, simulate


class TestRegistryForkJoinDispatch:
    def test_forkjoin_bicriteria_hom_platform(self):
        app = repro.ForkJoinApplication.homogeneous(3, 1.0, 2.0, 3.0)
        plat = repro.Platform.homogeneous(3, 1.0)
        spec = ProblemSpec(app, plat, allow_data_parallel=True)
        base = repro.solve(spec, Objective.PERIOD).period
        sol = repro.solve(spec, Objective.LATENCY, period_bound=base * 1.5)
        want = bf.optimal(
            spec, Objective.LATENCY, period_bound=base * 1.5
        ).latency
        assert sol.latency == pytest.approx(want)

    def test_forkjoin_period_given_latency_het(self):
        app = repro.ForkJoinApplication.homogeneous(2, 1.0, 2.0, 2.0)
        plat = repro.Platform.heterogeneous([1.0, 2.0])
        spec = ProblemSpec(app, plat, allow_data_parallel=False)
        L = repro.solve(spec, Objective.LATENCY).latency * 1.4
        sol = repro.solve(spec, Objective.PERIOD, latency_bound=L)
        want = bf.optimal(spec, Objective.PERIOD, latency_bound=L).period
        assert sol.period == pytest.approx(want)

    def test_forkjoin_np_hard_latency_exact_fallback(self):
        app = repro.ForkJoinApplication.from_works(1.0, [1.0, 5.0], 1.0)
        plat = repro.Platform.homogeneous(2, 1.0)
        spec = ProblemSpec(app, plat, allow_data_parallel=False)
        with pytest.raises(repro.NPHardError):
            repro.solve(spec, Objective.LATENCY)
        sol = repro.solve(spec, Objective.LATENCY, exact_fallback=True)
        want = bf.optimal(spec, Objective.LATENCY).latency
        assert sol.latency == pytest.approx(want)


class TestDemandDrivenFork:
    def test_demand_driven_fork_runs_and_reorders(self):
        rng = random.Random(55)
        app = repro.ForkApplication.from_works(2.0, [12.0, 12.0])
        plat = repro.Platform.heterogeneous([3.0, 1.0, 1.0])
        sol = random_fork_mapping(app, plat, rng, allow_data_parallel=False)
        res = simulate(
            sol.mapping, num_data_sets=300,
            policy=DispatchPolicy.DEMAND_DRIVEN,
        )
        assert res.num_data_sets == 300
        # demand-driven throughput never loses to round-robin
        rr = simulate(sol.mapping, num_data_sets=300)
        assert res.measured_period <= rr.measured_period + 1e-6


class TestParetoExactFallback:
    def test_np_hard_front_tiny(self):
        app = repro.PipelineApplication.from_works([5, 2, 3])
        plat = repro.Platform.heterogeneous([2.0, 1.0])
        spec = ProblemSpec(app, plat, allow_data_parallel=False)
        front = pareto_front(spec, num_points=6, exact_fallback=True)
        assert front
        for a, b in zip(front, front[1:]):
            assert a.period <= b.period + 1e-9
            assert a.latency >= b.latency - 1e-9


class TestLocalSearchKindFlips:
    def test_flip_to_data_parallel_improves_latency(self):
        # seed with a replicated singleton; dp flip is the only way down
        app = repro.PipelineApplication.from_works([12.0])
        plat = repro.Platform.homogeneous(2, 1.0)
        from repro.core import GroupAssignment, PipelineMapping

        seed_mapping = PipelineMapping(
            application=app, platform=plat,
            groups=(GroupAssignment(stages=(1,), processors=(0, 1),
                                    kind=AssignmentKind.REPLICATED),),
        )
        seed = Solution.from_mapping(seed_mapping)
        improved = improve_mapping(
            seed, Objective.LATENCY, allow_data_parallel=True
        )
        assert improved.latency == pytest.approx(6.0)
        assert improved.mapping.groups[0].kind is AssignmentKind.DATA_PARALLEL

    def test_no_flip_when_dp_not_allowed(self):
        app = repro.PipelineApplication.from_works([12.0])
        plat = repro.Platform.homogeneous(2, 1.0)
        from repro.core import GroupAssignment, PipelineMapping

        seed = Solution.from_mapping(PipelineMapping(
            application=app, platform=plat,
            groups=(GroupAssignment(stages=(1,), processors=(0, 1),
                                    kind=AssignmentKind.REPLICATED),),
        ))
        improved = improve_mapping(
            seed, Objective.LATENCY, allow_data_parallel=False
        )
        assert improved.latency == pytest.approx(12.0)


class TestSolutionHelpers:
    def test_objective_value(self):
        app = repro.PipelineApplication.from_works([4.0])
        plat = repro.Platform.homogeneous(1, 1.0)
        spec = ProblemSpec(app, plat, False)
        sol = repro.solve(spec, Objective.PERIOD)
        assert sol.objective_value(Objective.PERIOD) == sol.period
        assert sol.objective_value(Objective.LATENCY) == sol.latency
        assert "period" in sol.describe()

    def test_spec_describe(self):
        app = repro.ForkApplication.homogeneous(2)
        spec = ProblemSpec(app, repro.Platform.homogeneous(2), True)
        text = spec.describe()
        assert "fork" in text and "with data-parallelism" in text


class TestLemma3Structure:
    """The Theorem 7 optimum is achieved by speed-sorted processor blocks —
    verify the returned mappings have that structural form."""

    def test_blocks_are_speed_intervals(self):
        rng = random.Random(56)
        from repro.algorithms import pipeline_het_platform as het

        for _ in range(10):
            n, p = rng.randint(2, 6), rng.randint(2, 6)
            app = repro.PipelineApplication.homogeneous(n, rng.randint(1, 5))
            speeds = [rng.randint(1, 6) for _ in range(p)]
            plat = repro.Platform.heterogeneous(speeds)
            sol = het.min_period_homogeneous(app, plat)
            # group speed ranges must not interleave
            ranges = sorted(
                (min(plat.subset_speeds(g.processors)),
                 max(plat.subset_speeds(g.processors)))
                for g in sol.mapping.groups
            )
            for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
                assert hi1 <= lo2 + 1e-9 or lo1 == lo2
