"""End-to-end flows through the public API, as a downstream user would."""

import pytest

import repro
from repro.analysis import pareto_front
from repro.generators import get_scenario
from repro.simulation import simulate


class TestQuickstartFlow:
    def test_readme_flow(self):
        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        platform = repro.Platform.homogeneous(3)
        spec = repro.ProblemSpec(app, platform, allow_data_parallel=True)
        solution = repro.solve(spec, repro.Objective.LATENCY)
        assert solution.latency == pytest.approx(17.0)
        assert "data-parallel" in solution.mapping.describe()

    def test_classify_then_solve(self):
        app = repro.ForkApplication.homogeneous(8, 2.0, 5.0)
        platform = repro.Platform.heterogeneous([1, 1, 2, 2, 4])
        spec = repro.ProblemSpec(app, platform, allow_data_parallel=False)
        entry = repro.classify(spec, repro.Objective.PERIOD)
        assert entry.is_polynomial
        sol = repro.solve(spec, repro.Objective.PERIOD)
        # solution is internally consistent
        period, latency = repro.evaluate(sol.mapping)
        assert period == pytest.approx(sol.period)
        assert latency == pytest.approx(sol.latency)

    def test_np_hard_flow_with_heuristic(self):
        from repro.heuristics import improve_mapping, pipeline_period_sweep

        app = repro.PipelineApplication.from_works([9, 2, 7, 3, 5])
        platform = repro.Platform.heterogeneous([3, 2, 2, 1])
        spec = repro.ProblemSpec(app, platform, allow_data_parallel=False)
        with pytest.raises(repro.NPHardError):
            repro.solve(spec, repro.Objective.PERIOD)
        seed = pipeline_period_sweep(app, platform)
        improved = improve_mapping(seed, repro.Objective.PERIOD)
        exact = repro.solve(spec, repro.Objective.PERIOD, exact_fallback=True)
        assert improved.period >= exact.period - 1e-9


class TestScenarioFlows:
    def test_image_pipeline_solve_and_simulate(self):
        s = get_scenario("image-pipeline")
        spec = repro.ProblemSpec(s.application, s.platform, s.allow_data_parallel)
        entry = repro.classify(spec, repro.Objective.PERIOD)
        # het pipeline + het platform + dp -> NP-hard; heuristic route
        assert not entry.is_polynomial
        from repro.heuristics import pipeline_period_sweep

        sol = pipeline_period_sweep(s.application, s.platform)
        result = simulate(sol.mapping, num_data_sets=300)
        assert result.measured_period == pytest.approx(sol.period, rel=0.05)

    def test_master_slave_fork_solve(self):
        s = get_scenario("master-slave-fork")
        spec = repro.ProblemSpec(s.application, s.platform, s.allow_data_parallel)
        sol = repro.solve(spec, repro.Objective.PERIOD)
        # aggregate capacity bound
        bound = s.application.total_work / s.platform.total_speed
        assert sol.period >= bound - 1e-9

    def test_scatter_gather_bicriteria(self):
        s = get_scenario("scatter-gather")
        spec = repro.ProblemSpec(s.application, s.platform, s.allow_data_parallel)
        best_period = repro.solve(spec, repro.Objective.PERIOD)
        sol = repro.solve(
            spec, repro.Objective.LATENCY, period_bound=best_period.period * 1.5
        )
        assert sol.period <= best_period.period * 1.5 * (1 + 1e-9)


class TestParetoFlow:
    def test_pareto_and_simulate_each_point(self):
        app = repro.ForkApplication.homogeneous(6, 2.0, 4.0)
        plat = repro.Platform.heterogeneous([1.0, 2.0, 2.0, 3.0])
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=False)
        front = pareto_front(spec, num_points=8)
        assert front
        for sol in front:
            res = simulate(sol.mapping, num_data_sets=300)
            assert res.measured_period == pytest.approx(sol.period, rel=0.05)
            assert res.max_latency <= sol.latency + 1e-6
