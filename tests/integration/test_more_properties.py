"""Additional hypothesis properties: serialization, comm model, composites."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.algorithms.comm_aware import min_period_comm
from repro.chains import chains_to_chains_dp
from repro.core import evaluate
from repro.heuristics import random_fork_mapping, random_pipeline_mapping
from repro.serialization import loads, dumps

works_lists = st.lists(st.integers(1, 15), min_size=1, max_size=5)
sizes_lists = st.lists(st.integers(0, 8), min_size=2, max_size=6)
seeds = st.integers(0, 10_000)


@settings(max_examples=40, deadline=None)
@given(works=works_lists, speeds=st.lists(st.integers(1, 4), min_size=1,
                                          max_size=4), seed=seeds)
def test_serialization_preserves_costs(works, speeds, seed):
    rng = random.Random(seed)
    plat = repro.Platform.heterogeneous([float(s) for s in speeds])
    if seed % 2:
        app = repro.PipelineApplication.from_works([float(w) for w in works])
        sol = random_pipeline_mapping(app, plat, rng, True)
    else:
        app = repro.ForkApplication.from_works(
            float(works[0]), [float(w) for w in works]
        )
        sol = random_fork_mapping(app, plat, rng, True)
    back = loads(dumps(sol.mapping))
    period, latency = evaluate(back)
    assert abs(period - sol.period) <= 1e-9 * max(1.0, sol.period)
    assert abs(latency - sol.latency) <= 1e-9 * max(1.0, sol.latency)


@settings(max_examples=40, deadline=None)
@given(works=works_lists, p=st.integers(1, 4), b=st.integers(1, 8))
def test_comm_period_bounded_by_chains(works, p, b):
    """With data sizes, the comm-aware optimum is at least the
    chains-to-chains optimum (communication only adds cost) and collapses
    to it when sizes are zero."""
    fworks = [float(w) for w in works]
    n = len(fworks)
    app_zero = repro.PipelineApplication.from_works(fworks)
    app_comm = repro.PipelineApplication.from_works(
        fworks, data_sizes=[1.0] * (n + 1)
    )
    plat = repro.Platform.homogeneous(p, 1.0, bandwidth=float(b))
    chains = chains_to_chains_dp(fworks, p).bottleneck
    zero = min_period_comm(app_zero, plat).period
    comm = min_period_comm(app_comm, plat).period
    assert abs(zero - chains) <= 1e-9 * max(1.0, chains)
    assert comm >= chains - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    n1=st.integers(1, 3), n2=st.integers(1, 3),
    w1=st.integers(1, 5), w2=st.integers(1, 5),
    speeds=st.lists(st.integers(1, 4), min_size=2, max_size=6),
)
def test_composite_period_dominates_kernels(n1, n2, w1, w2, speeds):
    """The composite period is at least each kernel's whole-platform
    optimum (disjoint blocks can only be weaker than the full platform)."""
    from repro.composite import CompositeWorkflow, map_composite

    wf = CompositeWorkflow.of(
        repro.PipelineApplication.homogeneous(n1, float(w1)),
        repro.PipelineApplication.homogeneous(n2, float(w2)),
    )
    plat = repro.Platform.heterogeneous([float(s) for s in speeds])
    sol = map_composite(wf, plat)
    for kernel in wf.kernels:
        spec = repro.ProblemSpec(kernel, plat, False)
        best = repro.solve(spec, repro.Objective.PERIOD).period
        assert sol.period >= best - 1e-9
