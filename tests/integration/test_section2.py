"""Integration test: the complete Section 2 worked example.

Every number the paper derives is checked — both the priced mappings it
exhibits and the claimed optima.  Where exhaustive search contradicts the
paper's optimality claims (heterogeneous platform: period 5 and latency
12.8 claimed optimal; 4.5 and 8.5 are achievable under the paper's own
formulas), the test pins the *verified* optimum and the erratum is recorded
in EXPERIMENTS.md.
"""

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec

APP = repro.PipelineApplication.from_works([14, 4, 2, 4])


class TestHomogeneousPlatform:
    """p = 3 identical unit-speed processors."""

    def setup_method(self):
        self.plat = repro.Platform.homogeneous(3, 1.0)

    def test_min_period_no_replication_is_14(self):
        # restricted to single-processor intervals = chains-to-chains
        from repro.chains import chains_to_chains_dp

        assert chains_to_chains_dp(list(APP.works), 3).bottleneck == 14.0

    def test_min_period_with_replication_is_8(self):
        spec = ProblemSpec(APP, self.plat, allow_data_parallel=False)
        assert repro.solve(spec, Objective.PERIOD).period == pytest.approx(8.0)
        assert bf.optimal(spec, Objective.PERIOD).period == pytest.approx(8.0)

    def test_latency_without_dp_always_24(self):
        spec = ProblemSpec(APP, self.plat, allow_data_parallel=False)
        assert repro.solve(spec, Objective.LATENCY).latency == pytest.approx(24.0)

    def test_min_latency_with_dp_is_17(self):
        spec = ProblemSpec(APP, self.plat, allow_data_parallel=True)
        assert repro.solve(spec, Objective.LATENCY).latency == pytest.approx(17.0)
        assert bf.optimal(spec, Objective.LATENCY).latency == pytest.approx(17.0)

    def test_four_processors_exhibited_mapping_period_7(self):
        """The paper's illustration (replicate S1 on two processors and
        S2-S4 on two others) prices at max(7, 5) = 7; the *optimum* with
        four processors is replicate-all at 24/4 = 6 (Theorem 1)."""
        from tests.conftest import pipeline_mapping

        plat4 = repro.Platform.homogeneous(4, 1.0)
        m = pipeline_mapping(
            APP, plat4, [([1], [0, 1]), ([2, 3, 4], [2, 3])]
        )
        assert repro.pipeline_period(m) == pytest.approx(7.0)
        spec = ProblemSpec(APP, plat4, allow_data_parallel=False)
        assert repro.solve(spec, Objective.PERIOD).period == pytest.approx(6.0)


class TestHeterogeneousPlatform:
    """speeds (2, 2, 1, 1)."""

    def setup_method(self):
        self.plat = repro.Platform.heterogeneous([2.0, 2.0, 1.0, 1.0])

    def test_paper_mapping_period_5(self):
        """The mapping the paper exhibits prices exactly as printed."""
        from tests.conftest import pipeline_mapping
        from repro.core import AssignmentKind as K

        m = pipeline_mapping(
            APP, self.plat,
            [([1], [0, 1]), ([2, 3, 4], [2, 3])],
            kinds=[K.DATA_PARALLEL, K.REPLICATED],
        )
        assert repro.pipeline_period(m) == pytest.approx(5.0)
        assert repro.pipeline_latency(m) == pytest.approx(13.5)

    def test_paper_mapping_latency_12_8(self):
        from tests.conftest import pipeline_mapping
        from repro.core import AssignmentKind as K

        m = pipeline_mapping(
            APP, self.plat,
            [([1], [0, 1, 2]), ([2, 3, 4], [3])],
            kinds=[K.DATA_PARALLEL, K.REPLICATED],
        )
        assert repro.pipeline_latency(m) == pytest.approx(12.8)

    def test_verified_optimal_period_is_4_5_not_5(self):
        """Erratum: exhaustive search beats the paper's claimed optimum."""
        spec = ProblemSpec(APP, self.plat, allow_data_parallel=True)
        best = bf.optimal(spec, Objective.PERIOD)
        assert best.period == pytest.approx(4.5)

    def test_verified_optimal_latency_is_8_5_not_12_8(self):
        spec = ProblemSpec(APP, self.plat, allow_data_parallel=True)
        best = bf.optimal(spec, Objective.LATENCY)
        assert best.latency == pytest.approx(8.5)

    def test_replicate_all_period_6(self):
        from tests.conftest import pipeline_mapping

        m = pipeline_mapping(APP, self.plat, [([1, 2, 3, 4], [0, 1, 2, 3])])
        assert repro.pipeline_period(m) == pytest.approx(6.0)
