"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTable1Command:
    def test_render(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "Homogeneous platforms" in text
        assert "NP-hard (**)" in text


class TestSolveCommand:
    def test_pipeline_hom(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "14,4,2,4",
            "--speeds", "1,1,1", "--objective", "period",
        )
        assert code == 0
        assert "period=8" in text

    def test_pipeline_dp_latency(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "14,4,2,4",
            "--speeds", "1,1,1", "--data-parallel", "--objective", "latency",
        )
        assert code == 0
        assert "latency=17" in text

    def test_fork(self):
        code, text = run_cli(
            "solve", "--graph", "fork", "--root-work", "2",
            "--works", "5,5,5", "--speeds", "1,2,4", "--objective", "period",
        )
        assert code == 0
        assert "Thm 14" in text

    def test_forkjoin(self):
        code, text = run_cli(
            "solve", "--graph", "forkjoin", "--root-work", "2",
            "--works", "3,3", "--join-work", "4", "--speeds", "2,1",
            "--objective", "latency",
        )
        assert code == 0
        assert "solution" in text

    def test_np_hard_refusal(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "9,2,7",
            "--speeds", "3,1", "--objective", "period",
        )
        assert code == 2
        assert "NP-hard" in text

    def test_np_hard_exact(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "9,2,7",
            "--speeds", "3,1", "--objective", "period", "--exact",
        )
        assert code == 0
        assert "solution" in text

    def test_np_hard_heuristic(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "9,2,7,3,5,1,8",
            "--speeds", "3,1,2,2", "--objective", "period", "--heuristic",
        )
        assert code == 0
        assert "portfolio" in text

    def test_bicriteria(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "14,4,2,4",
            "--speeds", "1,1,1", "--data-parallel", "--objective", "latency",
            "--period-bound", "10",
        )
        assert code == 0
        assert "latency=17" in text

    def test_bad_numbers(self):
        with pytest.raises(SystemExit):
            run_cli("solve", "--graph", "pipeline", "--works", "a,b",
                    "--speeds", "1")

    def test_file_input(self, tmp_path):
        import json

        path = tmp_path / "instance.json"
        path.write_text(json.dumps({"kind": "pipeline", "works": [14, 4, 2, 4]}))
        code, text = run_cli(
            "solve", "--file", str(path), "--speeds", "1,1,1",
            "--objective", "period",
        )
        assert code == 0
        assert "period=8" in text

    def test_missing_works(self):
        code, text = run_cli("solve", "--speeds", "1,1")
        assert code == 2
        assert "provide --works or --file" in text


class TestScenarioCommand:
    def test_known(self):
        code, text = run_cli("scenario", "master-slave-fork",
                             "--objective", "period")
        assert code == 0
        assert "master-slave" in text

    def test_unknown(self):
        code, text = run_cli("scenario", "nope")
        assert code == 2
        assert "error" in text


class TestSimulateCommand:
    def test_pipeline(self):
        # homogeneous pipeline -> the polynomial Theorem 7 route
        code, text = run_cli(
            "simulate", "--graph", "pipeline", "--works", "6,6,6",
            "--speeds", "2,1", "--objective", "period", "--data-sets", "200",
        )
        assert code == 0
        assert "measured period" in text
        assert "order inversions" in text

    def test_np_hard_instance_with_exact(self):
        code, text = run_cli(
            "simulate", "--graph", "pipeline", "--works", "6,2,8",
            "--speeds", "2,1", "--objective", "period", "--exact",
            "--data-sets", "200",
        )
        assert code == 0
        assert "measured period" in text
